"""Calibration constants for the UniFabric simulator.

Every timing number in the simulator traces back to this module, which
in turn traces back to the paper (Table 2 and the quantitative claims in
sections 3 and 4).  Times are in nanoseconds unless the name says
otherwise; sizes are in bytes.

The CPU memory-level-parallelism (MLP) figures are *fitted* so that the
simulated throughput of a single core reproduces the MOPS column of
Table 2 given the latency column (throughput = MLP / latency).  The fit
is documented row by row in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses

CACHELINE_BYTES = 64

# --------------------------------------------------------------------------
# Table 2: cacheline (64B) read/write performance on the Omega testbed.
# Latencies are the paper's numbers; MLP values are fitted.
# --------------------------------------------------------------------------

L1_READ_NS = 5.4
L1_WRITE_NS = 5.4
L2_READ_NS = 13.6
L2_WRITE_NS = 12.5
LOCAL_MEM_READ_NS = 111.7
LOCAL_MEM_WRITE_NS = 119.3
REMOTE_MEM_READ_NS = 1575.3
REMOTE_MEM_WRITE_NS = 1613.3

# Paper MOPS targets (Table 2), used by benchmarks for comparison only.
PAPER_MOPS = {
    ("l1", "read"): 357.4,
    ("l1", "write"): 355.4,
    ("l2", "read"): 143.4,
    ("l2", "write"): 154.5,
    ("local", "read"): 29.4,
    ("local", "write"): 16.9,
    ("remote", "read"): 2.5,
    ("remote", "write"): 2.5,
}

# Fitted memory-level parallelism per hierarchy level: the number of
# 64B operations a single core keeps in flight at that level.
# MLP = paper_MOPS * latency_ns / 1000.
MLP = {
    ("l1", "read"): 357.4 * L1_READ_NS / 1e3,       # ~1.93
    ("l1", "write"): 355.4 * L1_WRITE_NS / 1e3,      # ~1.92
    ("l2", "read"): 143.4 * L2_READ_NS / 1e3,        # ~1.95
    ("l2", "write"): 154.5 * L2_WRITE_NS / 1e3,      # ~1.93
    ("local", "read"): 29.4 * LOCAL_MEM_READ_NS / 1e3,    # ~3.28
    ("local", "write"): 16.9 * LOCAL_MEM_WRITE_NS / 1e3,  # ~2.02
    ("remote", "read"): 2.5 * REMOTE_MEM_READ_NS / 1e3,   # ~3.94
    ("remote", "write"): 2.5 * REMOTE_MEM_WRITE_NS / 1e3,  # ~4.03
}

# --------------------------------------------------------------------------
# CXL Flex Bus physical layer (section 2.1).
# --------------------------------------------------------------------------

LINK_GT_PER_S = 64.0           # max 64 GT/s per lane
FLIT_BYTES_SMALL = 68          # 68B flit mode
FLIT_BYTES_LARGE = 256         # 256B flit mode
LANE_WIDTHS = (4, 8, 16)       # x4 / x8 / x16 bifurcation
PHYS_ENCODING_OVERHEAD = 0.0   # PAM4/FLIT mode: negligible line coding tax

# --------------------------------------------------------------------------
# Switch / link-layer targets (sections 3 and 4).
# --------------------------------------------------------------------------

SWITCH_PORT_LATENCY_NS = 90.0       # "<100ns non-blocking switch latency"
SWITCH_PORT_BANDWIDTH_GBPS = 512.0  # FabreX per-port figure
LINK_PROPAGATION_NS = 5.0           # cable + SerDes per hop, one way
UNLOADED_FLIT_RTT_TARGET_NS = 200.0  # 64B flit end-to-end RTT, unloaded
PCIE_INTERFERENCE_TARGET_NS = 600.0  # added one-way latency, concurrent 64B

# Link-layer credit-based flow control defaults.
DEFAULT_LINK_CREDITS = 32            # per-VC flit credits at each hop
CREDIT_UPDATE_INTERVAL_NS = 50.0     # piggyback/update cadence
CREDIT_RAMP_FACTOR = 2.0             # exponential ramp-up multiplier
CREDIT_RAMP_INTERVAL_NS = 500.0      # vanilla CFC re-allocation period
CONTROL_LANE_FRACTION = 0.02         # DP#4 dedicated-lane bandwidth share

# --------------------------------------------------------------------------
# Adapter / device processing overheads.
# --------------------------------------------------------------------------

FHA_PROCESSING_NS = 20.0    # host adapter: channel request -> flit
FEA_PROCESSING_NS = 25.0    # endpoint adapter: flit -> device primitive
FAM_ACCESS_NS = 80.0        # generic device service time (tests/benches)

# FAM media latency, calibrated so that the full simulated path
# (LLC miss -> FHA -> link -> switch -> link -> FEA -> media and back)
# reproduces Table 2's remote read/write latencies (~1575/1613 ns).
# The calibration residual is documented in EXPERIMENTS.md.
FAM_MEDIA_READ_NS = 1279.4
FAM_MEDIA_WRITE_NS = 1317.4
DMA_SETUP_NS = 350.0        # comm-fabric baseline: descriptor + doorbell
DMA_INTERRUPT_NS = 600.0    # comm-fabric baseline: completion interrupt
NIC_STACK_NS = 1200.0       # comm-fabric baseline: per-message stack tax

# --------------------------------------------------------------------------
# Cache geometry defaults (host hierarchy).
# --------------------------------------------------------------------------

L1_SIZE_BYTES = 32 * 1024
L1_ASSOC = 8
L2_SIZE_BYTES = 1024 * 1024
L2_ASSOC = 16
LLC_SIZE_BYTES = 32 * 1024 * 1024
LLC_ASSOC = 16
LLC_HIT_NS = 40.0
VICTIM_BUFFER_ENTRIES = 8

# --------------------------------------------------------------------------
# DRAM device model.
# --------------------------------------------------------------------------

DRAM_BANKS = 16
DRAM_ROW_BYTES = 8 * 1024
DRAM_ROW_HIT_NS = 15.0
DRAM_ROW_MISS_NS = 45.0
DRAM_BUS_NS_PER_CACHELINE = 3.2


@dataclasses.dataclass(frozen=True)
class LinkParams:
    """Parameters of one fabric link (one direction)."""

    lanes: int = 16
    gt_per_s: float = LINK_GT_PER_S
    flit_bytes: int = FLIT_BYTES_SMALL
    propagation_ns: float = LINK_PROPAGATION_NS
    credits: int = DEFAULT_LINK_CREDITS

    @property
    def bytes_per_ns(self) -> float:
        """Raw payload bandwidth of the link in bytes per nanosecond."""
        # GT/s per lane == gigabits per second per lane for PAM-less NRZ
        # at FLIT mode granularity; we fold encoding overhead into the
        # constant rather than modelling 128b/130b explicitly.
        bits_per_ns = self.lanes * self.gt_per_s
        return bits_per_ns / 8.0 * (1.0 - PHYS_ENCODING_OVERHEAD)

    def serialization_ns(self, nbytes: int) -> float:
        """Time to push ``nbytes`` onto the wire."""
        return nbytes / self.bytes_per_ns


def flit_count(payload_bytes: int, flit_bytes: int = FLIT_BYTES_SMALL) -> int:
    """Number of flits needed to carry ``payload_bytes`` of payload.

    A 68B flit carries one 64B cacheline plus header/CRC; a 256B flit
    carries 3 cachelines worth of slots plus header.  We model payload
    capacity as flit size minus a 4-byte header per 64 bytes of payload.
    """
    if payload_bytes <= 0:
        return 1
    if flit_bytes == FLIT_BYTES_SMALL:
        payload_per_flit = CACHELINE_BYTES
    else:
        payload_per_flit = 3 * CACHELINE_BYTES
    return -(-payload_bytes // payload_per_flit)
