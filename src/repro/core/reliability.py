"""Resource-frugal fault tolerance for passive failure domains.

Section 3, difference #5: FAM/FAA chassis "stay in different power
domains and can fail separately", their controllers have "little
computing resources for failure handling", and "the fault-tolerant
scheme should be resource-frugal and impact application performance
little".  The paper points at Carbink's recipe for RDMA far memory:
outsource management to a central memory manager and protect data with
erasure coding plus remote compaction.

This module ports that recipe onto the memory fabric:

* :class:`ProtectedRegion` — a logical region striped over several FAM
  chassis as ``k`` data shards + ``m`` parity shards (``m = 1`` is
  RAID-5-style XOR parity; ``k = 1, m >= 1`` degenerates to
  replication).  Reads hit one data shard; writes update the shard and
  its parity (the frugal part: the *host* computes parity deltas, the
  passive devices just store);
* :class:`CentralMemoryManager` — the control-plane singleton: tracks
  chassis health, fails regions over to degraded mode on a chassis
  loss, drives reconstruction onto a spare, and keeps shard placement
  balanced;
* degraded reads reconstruct the lost shard from the survivors
  (``k`` reads instead of one — visible as a latency cliff until
  reconstruction completes).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Generator, List, Optional, Set

from .. import params
from ..sim import Environment, Event

__all__ = ["ShardState", "Shard", "ProtectedRegion",
           "CentralMemoryManager", "ReliabilityError"]


class ReliabilityError(Exception):
    """Data loss or misconfiguration the scheme cannot mask."""


class ShardState(enum.Enum):
    HEALTHY = "healthy"
    LOST = "lost"                  # its chassis failed
    REBUILDING = "rebuilding"      # reconstruction in progress


@dataclasses.dataclass
class Shard:
    """One stripe shard resident on one FAM chassis."""

    index: int                     # position in the stripe
    chassis: str                   # FAM chassis name
    base: int                      # host address of the shard
    is_parity: bool
    state: ShardState = ShardState.HEALTHY


class ProtectedRegion:
    """One erasure-coded far-memory region owned by one host.

    The region presents a flat logical byte range of
    ``k * shard_bytes``; logical offset ``o`` lives in data shard
    ``o // shard_bytes``.  With ``m = 1`` parity the region survives
    any single chassis failure.
    """

    def __init__(self, env: Environment, host, name: str,
                 data_shards: List[Shard], parity_shards: List[Shard],
                 shard_bytes: int,
                 parity_compute_ns: float = 30.0) -> None:
        if not data_shards:
            raise ReliabilityError("need at least one data shard")
        if shard_bytes <= 0:
            raise ValueError("shard_bytes must be positive")
        chassis = [s.chassis for s in data_shards + parity_shards]
        if len(set(chassis)) != len(chassis):
            raise ReliabilityError(
                "shards of one stripe must sit on distinct chassis "
                "(a shared failure domain defeats the code)")
        self.env = env
        self.host = host
        self.name = name
        self.data_shards = list(data_shards)
        self.parity_shards = list(parity_shards)
        self.shard_bytes = shard_bytes
        self.parity_compute_ns = parity_compute_ns
        self.reads = 0
        self.degraded_reads = 0
        self.writes = 0

    # -- geometry -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.data_shards) * self.shard_bytes

    @property
    def fault_tolerance(self) -> int:
        return len(self.parity_shards)

    def _locate(self, offset: int, nbytes: int) -> Shard:
        if not 0 <= offset < self.size:
            raise ReliabilityError(
                f"offset {offset:#x} outside region of {self.size} bytes")
        shard = self.data_shards[offset // self.shard_bytes]
        if (offset % self.shard_bytes) + nbytes > self.shard_bytes:
            raise ReliabilityError("access crosses a shard boundary")
        return shard

    def lost_shards(self) -> List[Shard]:
        return [s for s in self.data_shards + self.parity_shards
                if s.state is not ShardState.HEALTHY]

    def survivors(self, excluding: Shard) -> List[Shard]:
        return [s for s in self.data_shards + self.parity_shards
                if s is not excluding and s.state is ShardState.HEALTHY]

    # -- data path -----------------------------------------------------------

    def read(self, offset: int,
             nbytes: int = params.CACHELINE_BYTES
             ) -> Generator[Event, None, str]:
        """Read; returns "fast" or "degraded" depending on the path."""
        shard = self._locate(offset, nbytes)
        within = offset % self.shard_bytes
        self.reads += 1
        if shard.state is ShardState.HEALTHY:
            yield from self.host.mem.access(shard.base + within, False,
                                            nbytes)
            return "fast"
        # Degraded: reconstruct from every healthy shard in the stripe.
        survivors = self.survivors(excluding=shard)
        if len(survivors) < len(self.data_shards):
            raise ReliabilityError(
                f"{self.name}: {len(self.lost_shards())} shards lost, "
                f"code tolerates {self.fault_tolerance}")
        self.degraded_reads += 1
        fetches = [self.env.process(
            self._fetch(s.base + within, nbytes)) for s in survivors]
        yield self.env.all_of(fetches)
        yield self.env.timeout(self.parity_compute_ns)
        return "degraded"

    def _fetch(self, addr: int,
               nbytes: int) -> Generator[Event, None, None]:
        yield from self.host.mem.access(addr, False, nbytes)

    def write(self, offset: int,
              nbytes: int = params.CACHELINE_BYTES
              ) -> Generator[Event, None, None]:
        """Write-through with parity delta updates (read-modify-write)."""
        shard = self._locate(offset, nbytes)
        within = offset % self.shard_bytes
        self.writes += 1
        if shard.state is ShardState.HEALTHY:
            # Read old data (for the delta), write new data.
            yield from self.host.mem.access(shard.base + within, False,
                                            nbytes)
            yield from self.host.mem.access(shard.base + within, True,
                                            nbytes)
        for parity in self.parity_shards:
            if parity.state is not ShardState.HEALTHY:
                continue
            yield self.env.timeout(self.parity_compute_ns)
            yield from self.host.mem.access(parity.base + within, False,
                                            nbytes)
            yield from self.host.mem.access(parity.base + within, True,
                                            nbytes)


class CentralMemoryManager:
    """The Carbink-style control plane over protected regions.

    Resource-frugal by construction: the manager holds only metadata;
    data-path work (parity math, reconstruction traffic) runs on hosts,
    never on the passive device controllers.
    """

    def __init__(self, env: Environment,
                 reconstruct_chunk: int = 4096) -> None:
        self.env = env
        self.reconstruct_chunk = reconstruct_chunk
        self._regions: Dict[str, ProtectedRegion] = {}
        self._chassis_health: Dict[str, bool] = {}
        self._spares: Dict[str, List[int]] = {}   # chassis -> free bases
        self.failovers = 0
        self.reconstructions = 0

    # -- registration ------------------------------------------------------

    def register_chassis(self, name: str,
                         spare_bases: Optional[List[int]] = None) -> None:
        if name in self._chassis_health:
            raise ValueError(f"chassis {name!r} already registered")
        self._chassis_health[name] = True
        self._spares[name] = list(spare_bases or [])

    def create_region(self, host, name: str,
                      placements: List[tuple],
                      shard_bytes: int,
                      parity: int = 1) -> ProtectedRegion:
        """Create a region from (chassis, host_base) placements.

        The last ``parity`` placements become parity shards.
        """
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if parity < 0 or parity >= len(placements):
            raise ReliabilityError(
                f"need 0 <= parity < shards, got {parity} of "
                f"{len(placements)}")
        for chassis, _ in placements:
            if chassis not in self._chassis_health:
                raise ReliabilityError(f"unknown chassis {chassis!r}")
        data = [Shard(index=i, chassis=c, base=b, is_parity=False)
                for i, (c, b) in enumerate(placements[:len(placements)
                                                      - parity])]
        parity_shards = [Shard(index=i, chassis=c, base=b, is_parity=True)
                         for i, (c, b) in enumerate(
                             placements[len(placements) - parity:])]
        region = ProtectedRegion(self.env, host, name, data,
                                 parity_shards, shard_bytes)
        self._regions[name] = region
        return region

    def region(self, name: str) -> ProtectedRegion:
        return self._regions[name]

    # -- failure handling --------------------------------------------------

    def chassis_failed(self, chassis: str) -> List[str]:
        """Mark a chassis dead; returns the regions that lost shards."""
        if chassis not in self._chassis_health:
            raise ReliabilityError(f"unknown chassis {chassis!r}")
        self._chassis_health[chassis] = False
        affected = []
        for region in self._regions.values():
            for shard in region.data_shards + region.parity_shards:
                if shard.chassis == chassis \
                        and shard.state is ShardState.HEALTHY:
                    shard.state = ShardState.LOST
                    affected.append(region.name)
                    self.failovers += 1
        return sorted(set(affected))

    def healthy_chassis(self) -> Set[str]:
        return {c for c, ok in self._chassis_health.items() if ok}

    def reconstruct(self, region_name: str
                    ) -> Generator[Event, None, int]:
        """Rebuild every lost shard of a region onto spare capacity.

        Returns the number of shards rebuilt.  The rebuild streams
        ``reconstruct_chunk`` at a time: read that chunk from every
        survivor, recompute, write to the spare — all host-driven.
        """
        region = self._regions[region_name]
        rebuilt = 0
        for shard in region.lost_shards():
            spare = self._find_spare(region)
            if spare is None:
                raise ReliabilityError(
                    f"no spare capacity to rebuild {region_name}")
            spare_chassis, spare_base = spare
            shard.state = ShardState.REBUILDING
            offset = 0
            while offset < region.shard_bytes:
                chunk = min(self.reconstruct_chunk,
                            region.shard_bytes - offset)
                fetches = [self.env.process(region._fetch(
                    s.base + offset, chunk))
                    for s in region.survivors(excluding=shard)]
                yield self.env.all_of(fetches)
                yield self.env.timeout(region.parity_compute_ns)
                yield from region.host.mem.access(spare_base + offset,
                                                  True, chunk)
                offset += chunk
            shard.chassis = spare_chassis
            shard.base = spare_base
            shard.state = ShardState.HEALTHY
            rebuilt += 1
            self.reconstructions += 1
        return rebuilt

    def _find_spare(self, region: ProtectedRegion) -> Optional[tuple]:
        used = {s.chassis for s in region.data_shards
                + region.parity_shards
                if s.state is ShardState.HEALTHY}
        for chassis in sorted(self.healthy_chassis() - used):
            if self._spares.get(chassis):
                return chassis, self._spares[chassis].pop()
        return None

    def describe(self) -> str:
        lines = [f"central memory manager: {len(self._regions)} regions, "
                 f"chassis {sorted(self._chassis_health)}"]
        for name, region in self._regions.items():
            states = [f"{s.chassis}:{s.state.value}"
                      f"{'(P)' if s.is_parity else ''}"
                      for s in region.data_shards + region.parity_shards]
            lines.append(f"  {name}: {', '.join(states)}")
        return "\n".join(lines)
