"""The split task runtime: execution, failure injection, recovery (DP#3).

Modelled after the paper's "split runtime execution architecture —
learned from the tasklet and top-half/bottom-half interrupt
architecture of the OS kernel": the *top half* (dispatch, recovery
policy) runs on the host; the *bottom half* (the ops) runs against host
memory, the fabric, and FAAs.

Failure injection models the passive failure domains of section 3:
devices fail independently of hosts and have no resources for their
own fault tolerance, so recovery must come from the execution model:

* ``recovery="idempotent"`` — replay only the interrupted region
  (correct because regions contain no clobber anti-dependences);
* ``recovery="restart"`` — the baseline: replay the whole task.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generator, Optional

from ..fabric.flit import Channel, Packet, PacketKind
from ..sim import Environment, Event, SimRng
from .idempotent import IdempotentRegion, IdempotentTask
from .taskir import Op, OpKind, Task

__all__ = ["FailureInjector", "TaskResult", "TaskRuntime", "InjectedFailure"]


class InjectedFailure(Exception):
    """A simulated passive-domain failure during op execution."""


class FailureInjector:
    """Bernoulli per-op failures with a deterministic stream."""

    def __init__(self, rate: float = 0.0,
                 rng: Optional[SimRng] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or SimRng(0)
        self.injected = 0

    def fires(self) -> bool:
        if self.rate and self.rng.bernoulli(self.rate):
            self.injected += 1
            return True
        return False


@dataclasses.dataclass
class TaskResult:
    """What one task execution cost."""

    name: str
    completion_ns: float
    useful_ops: int
    replayed_ops: int
    failures: int

    @property
    def total_ops(self) -> int:
        return self.useful_ops + self.replayed_ops

    @property
    def waste_fraction(self) -> float:
        total = self.total_ops
        return self.replayed_ops / total if total else 0.0


class TaskRuntime:
    """Executes (idempotent) tasks for one host over the cluster."""

    def __init__(self, env: Environment, host,
                 injector: Optional[FailureInjector] = None,
                 recovery: str = "idempotent",
                 faa_ids: Optional[Dict[str, int]] = None,
                 dispatch_ns: float = 30.0) -> None:
        if recovery not in ("idempotent", "restart"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        self.env = env
        self.host = host
        self.injector = injector or FailureInjector()
        self.recovery = recovery
        self.faa_ids = dict(faa_ids or {})
        self.dispatch_ns = dispatch_ns
        self.tasks_completed = 0

    # -- execution -----------------------------------------------------------

    def execute(self, task) -> Generator[Event, None, TaskResult]:
        """Run a task to completion, recovering from injected failures."""
        idem = task if isinstance(task, IdempotentTask) \
            else IdempotentTask(task)
        start = self.env.now
        useful = 0
        replayed = 0
        failures = 0
        if self.recovery == "idempotent":
            for region in idem.regions:
                done, lost, fails = yield from self._run_region(region)
                useful += done
                replayed += lost
                failures += fails
        else:
            whole = IdempotentRegion(index=0, start=0,
                                     ops=tuple(idem.task.ops))
            done, lost, fails = yield from self._run_region(whole)
            useful += done
            replayed += lost
            failures += fails
        self.tasks_completed += 1
        return TaskResult(name=idem.name,
                          completion_ns=self.env.now - start,
                          useful_ops=useful, replayed_ops=replayed,
                          failures=failures)

    def _run_region(self, region: IdempotentRegion
                    ) -> Generator[Event, None, tuple]:
        """Execute one region, replaying it until it completes."""
        replayed = 0
        failures = 0
        while True:
            yield self.env.timeout(self.dispatch_ns)  # top-half dispatch
            completed = 0
            failed = False
            for op in region.ops:
                if self.injector.fires():
                    failures += 1
                    replayed += completed
                    failed = True
                    break
                yield from self._run_op(op)
                completed += 1
            if not failed:
                return len(region.ops), replayed, failures

    def _run_op(self, op: Op) -> Generator[Event, None, None]:
        if op.kind is OpKind.READ:
            yield from self.host.mem.access(op.addr, False, op.nbytes)
        elif op.kind is OpKind.WRITE:
            yield from self.host.mem.access(op.addr, True, op.nbytes)
        elif op.kind is OpKind.COMPUTE:
            yield self.env.timeout(op.duration_ns)
        elif op.kind is OpKind.CALL:
            yield from self._call_accelerator(op)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind}")

    def _call_accelerator(self, op: Op) -> Generator[Event, None, None]:
        if not self.faa_ids:
            # No FAA attached: model the call as local compute.
            yield self.env.timeout(op.duration_ns)
            return
        target = op.accelerator or next(iter(self.faa_ids))
        dst = self.faa_ids[target]
        packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                        src=self.host.port.port_id, dst=dst, nbytes=64,
                        meta={"kernel": op.kernel})
        yield from self.host.port.request(packet)
