"""Idempotence analysis: cut tasks into re-executable regions (DP#3).

The key idea (de Kruijf & Sankaralingam's idempotent processors, which
the paper extends to composable infrastructures): a code region is
idempotent iff it contains no *clobber anti-dependence* — a write to a
location whose **live-in** value an earlier op in the region read.
Such a region can be re-executed from its start any number of times
without changing the outcome, which is exactly the recovery story FCC
wants for passive failure domains: no checkpoints, just replay.

``find_regions`` performs the greedy maximal cut: scan ops tracking the
live-in read set; when a write would clobber a live-in, end the region
*before* that write.  Writes make their lines region-local, so
subsequent reads of them are not live-ins.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set

from .taskir import Op, OpKind, Task

__all__ = ["IdempotentRegion", "IdempotentTask", "find_regions",
           "is_idempotent"]


@dataclasses.dataclass(frozen=True)
class IdempotentRegion:
    """A contiguous slice of a task that may be replayed safely."""

    index: int
    start: int            # index of first op within the task
    ops: tuple            # the ops themselves

    def __len__(self) -> int:
        return len(self.ops)


def is_idempotent(ops) -> bool:
    """True iff the op sequence has no clobber anti-dependence."""
    live_in_reads: Set[int] = set()
    written: Set[int] = set()
    for op in ops:
        lines = op.lines()
        if op.kind is OpKind.READ:
            live_in_reads |= (lines - written)
        elif op.kind is OpKind.WRITE:
            if lines & live_in_reads:
                return False
            written |= lines
    return True


def find_regions(task: Task) -> List[IdempotentRegion]:
    """Greedy maximal idempotent-region cut of a task."""
    regions: List[IdempotentRegion] = []
    current: List[Op] = []
    start = 0
    live_in_reads: Set[int] = set()
    written: Set[int] = set()

    def emit(next_start: int) -> None:
        nonlocal current, start, live_in_reads, written
        if current:
            regions.append(IdempotentRegion(index=len(regions),
                                            start=start,
                                            ops=tuple(current)))
        current = []
        start = next_start
        live_in_reads = set()
        written = set()

    for position, op in enumerate(task.ops):
        lines = op.lines()
        if op.kind is OpKind.WRITE and lines & live_in_reads:
            # This write clobbers a live-in: cut before it.
            emit(position)
        current.append(op)
        if op.kind is OpKind.READ:
            live_in_reads |= (lines - written)
        elif op.kind is OpKind.WRITE:
            written |= lines
    emit(len(task.ops))
    return regions


class IdempotentTask:
    """A task packaged with its region decomposition."""

    def __init__(self, task: Task) -> None:
        self.task = task
        self.regions = find_regions(task)
        for region in self.regions:
            assert is_idempotent(region.ops), \
                f"region {region.index} of {task.name!r} is not idempotent"

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def region_count(self) -> int:
        return len(self.regions)

    @property
    def max_replay_ops(self) -> int:
        """Worst-case ops re-executed by one failure (largest region)."""
        return max((len(r) for r in self.regions), default=0)

    def __repr__(self) -> str:
        return (f"<IdempotentTask {self.name!r}: {len(self.task)} ops in "
                f"{self.region_count} regions>")
