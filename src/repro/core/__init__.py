"""The FCC core: the paper's four design principles plus UniFabric.

* DP#1 — :mod:`repro.core.etrans` / :mod:`repro.core.movement`: data
  movement as a managed service (elastic transactions, migration
  agents, the central orchestrator, software prefetching);
* DP#2 — :mod:`repro.core.heap`: the host-assisted node-type-conscious
  unified heap with smart pointers and temperature-driven migration;
* DP#3 — :mod:`repro.core.taskir` / :mod:`repro.core.idempotent` /
  :mod:`repro.core.runtime` / :mod:`repro.core.functions`: idempotent
  tasks and hardware cooperative scalable functions;
* DP#4 — :mod:`repro.core.arbiter`: the fabric central arbitrator over
  dedicated lanes;
* :mod:`repro.core.unifabric` ties them together.
"""

from .arbiter import ArbiterClient, ArbiterError, FabricArbiter
from .futures import DistributedFuture, FutureExecutor, gather
from .memkind import (
    MEMKIND_DEFAULT,
    MEMKIND_FABRIC,
    MEMKIND_FABRIC_COHERENT,
    MEMKIND_FABRIC_NONCOHERENT,
    MEMKIND_LOCAL,
    MemkindAllocator,
    MemoryKind,
)
from .replication import NodeReplicatedObject, ReplicaHandle
from .reliability import (
    CentralMemoryManager,
    ProtectedRegion,
    ReliabilityError,
    Shard,
    ShardState,
)
from .etrans import (
    ElasticTransactionEngine,
    ETrans,
    ETransHandle,
    OWNERSHIP_MODES,
)
from .functions import (
    FunctionChassis,
    FunctionContext,
    HandlerResult,
    Message,
    ScalableFunction,
    migrate_function,
)
from .heap import (
    AccessProfiler,
    FreeList,
    HeapError,
    HeapObject,
    HeapRuntime,
    MemoryBin,
    SmartPointer,
    UnifiedHeap,
)
from .idempotent import IdempotentRegion, IdempotentTask, find_regions, is_idempotent
from .movement import MigrationAgent, MovementOrchestrator, SequentialPrefetcher
from .runtime import FailureInjector, InjectedFailure, TaskResult, TaskRuntime
from .taskir import Op, OpKind, Task
from .unifabric import UniFabric

__all__ = [
    "ArbiterClient",
    "ArbiterError",
    "FabricArbiter",
    "DistributedFuture",
    "FutureExecutor",
    "gather",
    "MEMKIND_DEFAULT",
    "MEMKIND_FABRIC",
    "MEMKIND_FABRIC_COHERENT",
    "MEMKIND_FABRIC_NONCOHERENT",
    "MEMKIND_LOCAL",
    "MemkindAllocator",
    "MemoryKind",
    "NodeReplicatedObject",
    "ReplicaHandle",
    "CentralMemoryManager",
    "ProtectedRegion",
    "ReliabilityError",
    "Shard",
    "ShardState",
    "ElasticTransactionEngine",
    "ETrans",
    "ETransHandle",
    "OWNERSHIP_MODES",
    "FunctionChassis",
    "FunctionContext",
    "migrate_function",
    "HandlerResult",
    "Message",
    "ScalableFunction",
    "AccessProfiler",
    "FreeList",
    "HeapError",
    "HeapObject",
    "HeapRuntime",
    "MemoryBin",
    "SmartPointer",
    "UnifiedHeap",
    "IdempotentRegion",
    "IdempotentTask",
    "find_regions",
    "is_idempotent",
    "MigrationAgent",
    "MovementOrchestrator",
    "SequentialPrefetcher",
    "FailureInjector",
    "InjectedFailure",
    "TaskResult",
    "TaskRuntime",
    "Op",
    "OpKind",
    "Task",
    "UniFabric",
]
