"""Hardware cooperative scalable functions (the second DP#3 abstraction).

Extends SR-IOV-style scalable functions with an *active execution
context*, as the paper proposes: each function owns (1) a
domain-specific processing core (its serial execution loop), (2) a list
of message handlers in the actor style, and (3) an execution
coordination sublayer encoding how it interacts with co-located
functions — the whole design "resembles the TAM and active messages".

:class:`FunctionChassis` is the hardware template FAAs inherit: it
fronts a set of :class:`ScalableFunction` instances behind one FEA,
delivers fabric messages into their mailboxes, and provides the cheap
co-located message path.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..fabric.flit import Channel, Packet, PacketKind
from ..fabric.transaction import TransactionPort
from ..sim import Environment, Event, Store
from ..infra.adapters import FabricEndpointAdapter

__all__ = ["Message", "HandlerResult", "ScalableFunction",
           "FunctionChassis", "FunctionContext", "migrate_function"]

_message_ids = itertools.count()


@dataclasses.dataclass
class Message:
    """One actor message."""

    msg_type: str
    payload: Any = None
    src: str = ""                      # sending function ("" = fabric)
    reply_to: Optional[Event] = None   # fires with the handler result
    uid: int = dataclasses.field(default_factory=lambda: next(_message_ids))


@dataclasses.dataclass
class HandlerResult:
    """What a message handler returns.

    ``compute_ns`` is charged on the function's core; ``outgoing`` are
    messages routed through the coordination sublayer.
    """

    compute_ns: float = 0.0
    value: Any = None
    outgoing: List[Tuple[str, Message]] = dataclasses.field(
        default_factory=list)


#: handler signature: (state, message) -> HandlerResult
Handler = Callable[[Dict[str, Any], Message], HandlerResult]


class ScalableFunction:
    """One function: a serial core, private state, message handlers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state: Dict[str, Any] = {}
        self._handlers: Dict[str, Handler] = {}
        self.mailbox: Optional[Store] = None   # attached by the chassis
        self.messages_handled = 0
        self.busy_ns = 0.0

    def on(self, msg_type: str, handler: Handler) -> "ScalableFunction":
        if msg_type in self._handlers:
            raise ValueError(f"{self.name}: handler for {msg_type!r} "
                             "already installed")
        self._handlers[msg_type] = handler
        return self

    def handler_for(self, msg_type: str) -> Optional[Handler]:
        return self._handlers.get(msg_type)

    def handled_types(self) -> List[str]:
        return sorted(self._handlers)


class FunctionChassis:
    """The FAA hardware template hosting cooperative functions."""

    def __init__(self, env: Environment, port: TransactionPort,
                 functions: List[ScalableFunction],
                 coordination_ns: float = 15.0,
                 name: str = "fnchassis") -> None:
        if not functions:
            raise ValueError("need at least one function")
        self.env = env
        self.name = name
        self.coordination_ns = coordination_ns
        self.functions: Dict[str, ScalableFunction] = {}
        self.local_messages = 0
        self.fabric_messages = 0
        for function in functions:
            if function.name in self.functions:
                raise ValueError(f"duplicate function {function.name!r}")
            function.mailbox = Store(env)
            self.functions[function.name] = function
            env.process(self._core(function),
                        name=f"{name}.{function.name}", daemon=True)
        self.fea = FabricEndpointAdapter(env, port, self._from_fabric,
                                         concurrency=len(functions),
                                         name=f"{name}.fea")
        self.port = port

    # -- fabric-facing -------------------------------------------------------

    def _from_fabric(self, request: Packet
                     ) -> Generator[Event, None, Optional[Packet]]:
        """Deliver a fabric packet into a function mailbox."""
        target = request.meta.get("function")
        function = self.functions.get(target)
        response = request.make_response()
        if function is None:
            response.meta["fault"] = True
            response.meta["error"] = f"no function {target!r}"
            yield self.env.timeout(0)
            return response
        self.fabric_messages += 1
        message = Message(msg_type=request.meta.get("msg_type", "call"),
                          payload=request.meta.get("payload"))
        if request.meta.get("await", True):
            message.reply_to = self.env.event()
            function.mailbox.put(message)
            try:
                result = yield message.reply_to
            except Exception as exc:
                response.meta["fault"] = True
                response.meta["error"] = str(exc)
            else:
                response.meta["result"] = result
        else:
            function.mailbox.put(message)
            response.meta["accepted"] = True
        return response

    # -- the coordination sublayer ----------------------------------------------

    def send_local(self, dst: str, message: Message
                   ) -> Generator[Event, None, None]:
        """Co-located function-to-function message (cheap path)."""
        function = self.functions.get(dst)
        if function is None:
            raise KeyError(f"{self.name}: no co-located function {dst!r}")
        yield self.env.timeout(self.coordination_ns)
        self.local_messages += 1
        function.mailbox.put(message)

    # -- per-function serial cores -------------------------------------------------

    def _core(self, function: ScalableFunction
              ) -> Generator[Event, None, None]:
        while True:
            message: Message = yield function.mailbox.get()
            handler = function.handler_for(message.msg_type)
            if handler is None:
                if message.reply_to is not None:
                    message.reply_to.fail(
                        KeyError(f"{function.name}: no handler for "
                                 f"{message.msg_type!r}"))
                continue
            result = handler(function.state, message)
            if result.compute_ns > 0:
                yield self.env.timeout(result.compute_ns)
                function.busy_ns += result.compute_ns
            function.messages_handled += 1
            for dst, outgoing in result.outgoing:
                yield from self.send_local(dst, outgoing)
            if message.reply_to is not None:
                message.reply_to.succeed(result.value)


@dataclasses.dataclass
class FunctionContext:
    """A checkpointed execution context, ready to ship over the fabric.

    Difference #4: "memory fabrics provide a lightweight and fast
    mechanism to create, checkpoint, and ship computing contexts".
    The context carries the function's private state, its undelivered
    mailbox, and an estimated wire size (state is a handful of
    cachelines, each pending message one more).
    """

    name: str
    state: Dict[str, Any]
    pending: List[Message]
    handlers: Dict[str, Handler]

    @property
    def wire_bytes(self) -> int:
        state_bytes = max(64, 64 * len(self.state))
        return state_bytes + 64 * len(self.pending)


class _CheckpointMixin:
    """Checkpoint/restore operations, mixed into FunctionChassis."""

    def checkpoint(self, name: str) -> FunctionContext:
        """Freeze a function: detach it and capture its context.

        The function stops receiving; its unprocessed messages travel
        with the context (no message is lost).  In-flight handler
        execution completes first in a real system; our cores are
        serial, so the mailbox snapshot is exact.
        """
        function = self.functions.pop(name, None)
        if function is None:
            raise KeyError(f"{self.name}: no function {name!r}")
        pending = list(function.mailbox.items)
        function.mailbox.items.clear()
        return FunctionContext(name=name, state=dict(function.state),
                               pending=pending,
                               handlers=dict(function._handlers))

    def restore(self, context: FunctionContext) -> ScalableFunction:
        """Instantiate a shipped context on this chassis."""
        if context.name in self.functions:
            raise ValueError(
                f"{self.name}: function {context.name!r} already here")
        function = ScalableFunction(context.name)
        function.state = dict(context.state)
        function._handlers = dict(context.handlers)
        function.mailbox = Store(self.env)
        for message in context.pending:
            function.mailbox.put(message)
        self.functions[context.name] = function
        self.env.process(self._core(function),
                         name=f"{self.name}.{context.name}", daemon=True)
        return function


# Mix the checkpoint operations into the chassis template.
FunctionChassis.checkpoint = _CheckpointMixin.checkpoint
FunctionChassis.restore = _CheckpointMixin.restore


def migrate_function(env: Environment, host_port: TransactionPort,
                     src: FunctionChassis, dst: FunctionChassis,
                     dst_id: int, name: str):
    """Ship a function's execution context src -> dst over the fabric.

    The host orchestrates (it owns the placement decision, as the
    paper's case study requires: "applications decide where the
    computation is performed and when it is moved"); the context rides
    as packet payload — plain fabric stores, no API remoting.

    Usage: ``fn = yield from migrate_function(...)``.
    """
    context = src.checkpoint(name)
    packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                    src=host_port.port_id, dst=dst_id,
                    nbytes=context.wire_bytes,
                    meta={"context_ship": True})
    # The destination FEA acks the context write; installation is a
    # metadata operation on the controller.
    yield from host_port.request(packet)
    function = dst.restore(context)
    return function
