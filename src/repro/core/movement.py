"""Data movement as a managed service (design principle #1).

Three cooperating pieces:

* :class:`MovementOrchestrator` — the central control-plane module: it
  owns per-host remote-bandwidth budgets (token buckets), records the
  rack-scale traffic matrix the paper says memory fabrics create, and
  hosts one migration agent per memory domain;
* :class:`MigrationAgent` — the executor for delegated transactions in
  one memory domain, draining a priority queue so urgent moves pass
  bulk ones;
* :class:`SequentialPrefetcher` — the SW-assisted sync-path
  optimization: detects strided access and preloads the working set
  into the host hierarchy so synchronous loads hit caches.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional, Tuple

from .. import params
from ..sim import Container, Environment, Event, PriorityStore
from ..telemetry import span
from ..telemetry.causal import QUEUEING
from .etrans import ETrans, ETransHandle, ElasticTransactionEngine, _finish

__all__ = ["MovementOrchestrator", "MigrationAgent", "SequentialPrefetcher"]


class MigrationAgent:
    """Executes delegated elastic transactions for one memory domain."""

    def __init__(self, env: Environment, engine: ElasticTransactionEngine,
                 name: str = "agent") -> None:
        self.env = env
        self.engine = engine
        self.name = name
        self._queue = PriorityStore(env)
        self._seq = itertools.count()
        self.executed = 0
        #: Per-transaction pacing delay (ns) inserted before service;
        #: 0.0 (the default) yields no timeout at all, so an unpaced
        #: agent schedules exactly the events it always did.  Set via
        #: :meth:`MovementOrchestrator.set_pacing` (the actuator path).
        self.pacing_ns = 0.0
        tel = env.telemetry
        self._causal = tel.causal if tel is not None else None
        if self._causal is not None:
            self._site_queue = f"movement.{name}.queue"
        env.process(self._worker(), name=f"{name}.worker", daemon=True)

    def enqueue(self, trans: ETrans,
                handle: Optional[ETransHandle]) -> None:
        if self._causal is not None:
            trace = trans.attributes.get("trace")
            if trace is not None:
                # Residency in the agent's priority queue; closed by
                # the worker when the transaction enters service.
                trans.attributes["_cspan"] = self._causal.begin(
                    trace, self.env.now, QUEUEING, self._site_queue)
        self._queue.put((trans.priority, next(self._seq), trans, handle))

    def backlog(self) -> int:
        return len(self._queue)

    def _worker(self) -> Generator[Event, None, None]:
        while True:
            _, _, trans, handle = yield self._queue.get()
            if self.pacing_ns > 0.0:
                yield self.env.timeout(self.pacing_ns)
            if self._causal is not None:
                open_span = trans.attributes.pop("_cspan", None)
                if open_span is not None:
                    self._causal.end(trans.attributes["trace"],
                                     self.env.now, open_span)
            with span(self.env, "movement.execute", track=self.name,
                      prio=trans.priority, nbytes=trans.total_src_bytes):
                yield from self.engine.execute(trans)
            self.executed += 1
            _finish(trans, handle)


class MovementOrchestrator:
    """The central movement service over one cluster."""

    def __init__(self, env: Environment,
                 remote_bw_bytes_per_us: Optional[float] = None,
                 burst_bytes: int = 64 * 1024) -> None:
        self.env = env
        self.remote_bw_bytes_per_us = remote_bw_bytes_per_us
        self.burst_bytes = burst_bytes
        self.pacing_ns = 0.0
        self._agents: Dict[str, MigrationAgent] = {}
        self._engines: Dict[str, ElasticTransactionEngine] = {}
        self._buckets: Dict[str, Container] = {}
        # (src region name, dst region name) -> bytes moved
        self.traffic_matrix: Dict[Tuple[str, str], int] = {}
        self.bytes_moved = 0
        self._tel = tel = env.telemetry
        if tel is not None:
            self._m_bytes_moved = tel.registry.counter("movement.bytes_moved")

    # -- registration ------------------------------------------------------

    def attach_host(self, host,
                    chunk_bytes: int = 4096) -> ElasticTransactionEngine:
        """Create the engine + agent for one host's memory domain."""
        if host.name in self._agents:
            raise ValueError(f"host {host.name!r} already attached")
        engine = ElasticTransactionEngine(self.env, host, self,
                                          chunk_bytes=chunk_bytes)
        self._engines[host.name] = engine
        agent = MigrationAgent(
            self.env, engine, name=f"{host.name}.agent")
        agent.pacing_ns = self.pacing_ns
        self._agents[host.name] = agent
        if self._tel is not None:
            self._tel.add_probe(f"movement.{host.name}.agent_backlog",
                                agent.backlog, track="movement")
        if self.remote_bw_bytes_per_us is not None:
            bucket = Container(self.env, capacity=self.burst_bytes,
                               init=self.burst_bytes)
            self._buckets[host.name] = bucket
            self.env.process(self._refill(bucket),
                             name=f"{host.name}.bw-refill", daemon=True)
        return engine

    def engine(self, host_name: str) -> ElasticTransactionEngine:
        return self._engines[host_name]

    def agent(self, host_name: str) -> MigrationAgent:
        return self._agents[host_name]

    # -- the control plane ----------------------------------------------------

    def enqueue(self, host, trans: ETrans,
                handle: Optional[ETransHandle]) -> None:
        self._agents[host.name].enqueue(trans, handle)

    def admit(self, host, nbytes: int) -> Generator[Event, None, None]:
        """Throttle: spend bandwidth tokens before a chunk may move."""
        bucket = self._buckets.get(host.name)
        if bucket is None:
            return
            yield  # pragma: no cover - keeps this a generator
        yield bucket.get(min(nbytes, self.burst_bytes))

    def account(self, host, src_addr: int, dst_addr: int,
                nbytes: int) -> None:
        """Record one chunk in the rack traffic matrix."""
        src_region = self._region_name(host, src_addr)
        dst_region = self._region_name(host, dst_addr)
        key = (src_region, dst_region)
        self.traffic_matrix[key] = self.traffic_matrix.get(key, 0) + nbytes
        self.bytes_moved += nbytes
        if self._tel is not None:
            self._m_bytes_moved.inc(nbytes, time=self.env.now)

    def _region_name(self, host, addr: int) -> str:
        try:
            return host.address_map.resolve(addr).name
        except KeyError:
            return "unmapped"

    def set_pacing(self, pacing_ns: float) -> None:
        """Fan a per-transaction pacing delay out to every agent.

        The closed-loop throttle: a feedback rule that sees movement
        saturating a window's link budget slows the agents instead of
        rejecting work.  ``0.0`` removes the pacing (and with it any
        extra timeout events).
        """
        if pacing_ns < 0:
            raise ValueError(f"pacing_ns must be >= 0, got {pacing_ns}")
        self.pacing_ns = pacing_ns
        for agent in self._agents.values():
            agent.pacing_ns = pacing_ns

    def set_remote_bw(self, bytes_per_us: float) -> None:
        """Retune the token-bucket refill rate on a throttled service.

        Only valid when the orchestrator was constructed with a
        bandwidth budget (buckets exist per attached host); the refill
        loops re-read the rate each quantum, so the new rate takes
        effect at the next 100 ns refill tick.
        """
        if bytes_per_us <= 0:
            raise ValueError(
                f"bytes_per_us must be > 0, got {bytes_per_us}")
        if not self._buckets:
            raise ValueError(
                "orchestrator has no bandwidth buckets to retune; "
                "construct it with remote_bw_bytes_per_us= to throttle")
        self.remote_bw_bytes_per_us = bytes_per_us

    def _refill(self, bucket: Container) -> Generator[Event, None, None]:
        quantum_ns = 100.0
        while True:
            yield self.env.timeout(quantum_ns)
            # Re-read the rate each quantum so set_remote_bw() acts at
            # the next tick rather than whatever rate start-up saw.
            per_quantum = self.remote_bw_bytes_per_us \
                * quantum_ns / 1000.0
            space = bucket.capacity - bucket.level
            if space > 0:
                yield bucket.put(min(per_quantum, space))

    def format_traffic_matrix(self) -> str:
        lines = ["traffic matrix (src region -> dst region, bytes):"]
        for (src, dst), nbytes in sorted(self.traffic_matrix.items()):
            lines.append(f"  {src:>16} -> {dst:<16} {nbytes:>12}")
        return "\n".join(lines)


class SequentialPrefetcher:
    """Stride-detecting software prefetcher over a host hierarchy.

    Call :meth:`observe` on the demand-access stream; once ``trigger``
    consecutive accesses with one stride are seen, the next ``depth``
    lines are fetched asynchronously so the synchronous path hits in
    cache (the paper's "preloading the application working set").
    """

    def __init__(self, env: Environment, host, depth: int = 8,
                 trigger: int = 3) -> None:
        if depth < 1 or trigger < 2:
            raise ValueError("depth must be >= 1 and trigger >= 2")
        self.env = env
        self.host = host
        self.depth = depth
        self.trigger = trigger
        self._last_addr: Optional[int] = None
        self._stride: Optional[int] = None
        self._run = 0
        self._issued_until: int = -1
        self.prefetches_issued = 0

    def observe(self, addr: int) -> None:
        if self._last_addr is not None:
            stride = addr - self._last_addr
            if stride != 0 and stride == self._stride:
                self._run += 1
            else:
                self._stride = stride if stride != 0 else None
                self._run = 1
        self._last_addr = addr
        if (self._stride is not None and self._run >= self.trigger
                and addr > self._issued_until - self.depth
                * abs(self._stride) // 2):
            self._launch(addr)

    def _launch(self, addr: int) -> None:
        for i in range(1, self.depth + 1):
            target = addr + i * self._stride
            if target < 0:
                break
            try:
                self.host.address_map.resolve(target)
            except KeyError:
                break
            self.prefetches_issued += 1
            self.env.process(self._prefetch(target),
                             name="prefetch")
        self._issued_until = addr + self.depth * self._stride

    def _prefetch(self, addr: int) -> Generator[Event, None, None]:
        yield from self.host.mem.access(addr, False)
