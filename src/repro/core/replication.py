"""Node replication over fabric memory (the DP#2 data-structure family).

Section 4: "node replication is a powerful technique that transparently
replicates data references across different NUMA regions ... which
would benefit fabric-attached CC-NUMA memory nodes", and section 5
promises "a list of new data structures specially optimized for
certain fabric-attached memory nodes".  This module delivers that
structure: an NR-style replicated object for read-mostly sharing
across hosts.

Design (following Black-box Concurrent Data Structures / NrOS):

* the *authoritative state* is an **operation log** living in
  fabric-attached memory (one heap object, appended under a log lock);
* each host keeps a **local replica** plus a cursor into the log;
* reads replay any unseen log entries into the local replica (usually
  zero — one cheap remote tail check), then answer from local memory;
* writes append to the shared log (one remote write) and apply locally.

Against direct shared access, readers trade a ~64 B remote tail probe
for full remote round trips on every operation — a large win when the
read/write ratio is high, which the DP#2 benchmark family quantifies.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Generator, List, Optional

from .. import params
from ..sim import Environment, Event, Resource
from .heap import SmartPointer, UnifiedHeap

__all__ = ["NodeReplicatedObject", "ReplicaHandle"]

#: apply signature: (replica_state, operation) -> None (mutates state)
ApplyFn = Callable[[Dict[str, Any], Any], None]

LOG_ENTRY_BYTES = params.CACHELINE_BYTES


@dataclasses.dataclass
class _Replica:
    host_name: str
    state: Dict[str, Any]
    cursor: int = 0           # log entries already applied
    local_obj: Optional[SmartPointer] = None


class ReplicaHandle:
    """One host's view of a :class:`NodeReplicatedObject`."""

    def __init__(self, parent: "NodeReplicatedObject",
                 replica: _Replica, heap: UnifiedHeap) -> None:
        self._parent = parent
        self._replica = replica
        self._heap = heap

    def read(self, reader: Callable[[Dict[str, Any]], Any]
             ) -> Generator[Event, None, Any]:
        """Catch up on the log, then answer from the local replica."""
        yield from self._parent._catch_up(self._replica, self._heap)
        # The local replica access itself (one local line).
        if self._replica.local_obj is not None:
            yield from self._replica.local_obj.read(0)
        return reader(self._replica.state)

    def write(self, operation: Any) -> Generator[Event, None, None]:
        """Append to the shared log and apply locally."""
        yield from self._parent._append(self._replica, self._heap,
                                        operation)


class NodeReplicatedObject:
    """An operation-log-replicated object shared by several hosts."""

    def __init__(self, env: Environment, apply_fn: ApplyFn,
                 initial_state: Optional[Dict[str, Any]] = None,
                 log_capacity: int = 4096,
                 name: str = "nr-object") -> None:
        if log_capacity < 1:
            raise ValueError("log_capacity must be >= 1")
        self.env = env
        self.apply_fn = apply_fn
        self.name = name
        self.log_capacity = log_capacity
        self._initial_state = dict(initial_state or {})
        self._log: List[Any] = []
        self._log_obj: Optional[SmartPointer] = None
        self._log_addr: Optional[int] = None
        self._log_lock = Resource(env)
        self._replicas: Dict[str, _Replica] = {}
        self.log_appends = 0
        self.entries_replayed = 0

    # -- registration ------------------------------------------------------

    def attach(self, heap: UnifiedHeap,
               shared_tier: str) -> ReplicaHandle:
        """Register one host's replica; the first call places the log.

        ``heap`` is that host's unified heap; the log object is
        allocated once, from the first host's heap, on the shared tier
        (a CC-NUMA or expander node visible to every host at the same
        offsets — the standard symmetric-mapping assumption).
        """
        host_name = heap.host.name
        if host_name in self._replicas:
            raise ValueError(f"host {host_name!r} already attached")
        if self._log_obj is None:
            self._log_obj = heap.allocate(
                self.log_capacity * LOG_ENTRY_BYTES,
                prefer_tier=shared_tier, pinned=True)
            # Symmetric mapping: every host sees the shared node at the
            # same host-physical offset (the default cluster layout).
            self._log_addr = heap.object_of(self._log_obj).addr
        replica = _Replica(host_name=host_name,
                           state=dict(self._initial_state))
        replica.local_obj = heap.allocate(
            max(LOG_ENTRY_BYTES, 64), prefer_tier="local", pinned=True)
        self._replicas[host_name] = replica
        return ReplicaHandle(self, replica, heap)

    @property
    def log_length(self) -> int:
        return len(self._log)

    # -- log machinery ----------------------------------------------------------

    def _append(self, replica: _Replica, heap: UnifiedHeap,
                operation: Any) -> Generator[Event, None, None]:
        with self._log_lock.request() as grant:
            yield grant
            yield from self._catch_up(replica, heap, locked=True)
            if len(self._log) >= self.log_capacity:
                raise RuntimeError(
                    f"{self.name}: log full "
                    f"({self.log_capacity} entries; GC not modelled)")
            offset = len(self._log) * LOG_ENTRY_BYTES
            # The remote append: one uncached cacheline store.
            yield from self._log_access(heap, offset, True)
            self._log.append(operation)
            self.log_appends += 1
            self.apply_fn(replica.state, operation)
            replica.cursor = len(self._log)

    def _catch_up(self, replica: _Replica, heap: UnifiedHeap,
                  locked: bool = False) -> Generator[Event, None, None]:
        """Replay unseen log entries into the replica."""
        # The tail probe: one uncached remote read of the log head.
        # Uncached (volatile) access is what makes a freshly appended
        # tail visible — a write-back cached probe could go stale.
        yield from self._log_access(heap, 0, False)
        while replica.cursor < len(self._log):
            offset = replica.cursor * LOG_ENTRY_BYTES
            yield from self._log_access(heap, offset, False)
            self.apply_fn(replica.state, self._log[replica.cursor])
            replica.cursor += 1
            self.entries_replayed += 1

    def _log_access(self, heap: UnifiedHeap, offset: int,
                    is_write: bool) -> Generator[Event, None, None]:
        """One uncached fabric access to the shared log."""
        addr = self._log_addr + offset
        region = heap.host.address_map.resolve(addr)
        yield from region.backend(addr - region.start,
                                  LOG_ENTRY_BYTES, is_write)
