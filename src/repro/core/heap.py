"""The host-assisted, node-type-conscious unified heap (DP#2).

UniFabric "instantiates memory regions/segments from different
fabric-attached memory nodes as a series of various-sized memory bins,
and then uses a heap manager for object allocation and reclamation"
(section 4).  Under the hood a runtime system profiles object access
characteristics and migrates objects across memory nodes by
temperature; developers only ever hold backward-compatible
smart pointers, so migration is transparent.

Pieces:

* :class:`FreeList` — a first-fit allocator with coalescing, one per bin;
* :class:`MemoryBin` — a segment of one memory node (a *tier*);
* :class:`UnifiedHeap` — allocation/reclamation + the object table that
  makes smart pointers stable across migration;
* :class:`SmartPointer` — the application-facing handle;
* :class:`AccessProfiler` — per-object temperature with periodic decay;
* :class:`HeapRuntime` — the migration policy loop (promote hot remote
  objects into local memory, demote cold local ones to make room),
  executing moves as delegated elastic transactions.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Generator, List, Optional, Tuple

from .. import params
from ..sim import Environment, Event, Resource
from ..telemetry import span
from ..telemetry.causal import QUEUEING
from .etrans import ETrans

__all__ = ["FreeList", "MemoryBin", "HeapObject", "SmartPointer",
           "AccessProfiler", "UnifiedHeap", "HeapRuntime", "HeapError"]


class HeapError(Exception):
    """Allocation/reclamation misuse or exhaustion."""


class FreeList:
    """First-fit allocator with address-ordered coalescing."""

    def __init__(self, start: int, size: int,
                 align: int = params.CACHELINE_BYTES) -> None:
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        if align <= 0 or (align & (align - 1)):
            raise ValueError(f"align must be a power of two, got {align}")
        self.start = start
        self.size = size
        self.align = align
        self._free: List[Tuple[int, int]] = [(start, size)]  # (addr, size)
        self.allocated_bytes = 0

    def _round(self, nbytes: int) -> int:
        return -(-nbytes // self.align) * self.align

    def allocate(self, nbytes: int) -> int:
        """Return the address of a block or raise :class:`HeapError`."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        need = self._round(nbytes)
        for index, (addr, size) in enumerate(self._free):
            if size >= need:
                if size == need:
                    self._free.pop(index)
                else:
                    self._free[index] = (addr + need, size - need)
                self.allocated_bytes += need
                return addr
        raise HeapError(f"no block of {need} bytes free "
                        f"({self.free_bytes} fragmented bytes left)")

    def free(self, addr: int, nbytes: int) -> None:
        """Release a block; coalesces with neighbours."""
        need = self._round(nbytes)
        if not self.start <= addr < self.start + self.size:
            raise HeapError(f"address {addr:#x} outside this free list")
        for existing_addr, existing_size in self._free:
            if addr < existing_addr + existing_size \
                    and existing_addr < addr + need:
                raise HeapError(f"double free at {addr:#x}")
        self._free.append((addr, need))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for block_addr, block_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == block_addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + block_size)
            else:
                merged.append((block_addr, block_size))
        self._free = merged
        self.allocated_bytes -= need

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)


@dataclasses.dataclass
class MemoryBin:
    """A segment of one memory node, exposed to the heap as a tier."""

    name: str
    tier: str                 # "local", "cpuless-numa", "cc-numa", ...
    freelist: FreeList
    is_remote: bool

    @property
    def free_bytes(self) -> int:
        return self.freelist.free_bytes


_oids = itertools.count()


@dataclasses.dataclass
class HeapObject:
    """Heap-internal record; applications hold SmartPointers instead."""

    oid: int
    size: int
    bin: MemoryBin
    addr: int
    pinned: bool = False
    migrations: int = 0


class SmartPointer:
    """A stable handle to a heap object; survives migration.

    ``read``/``write`` are process-style generators charging the real
    access cost of wherever the object currently lives.
    """

    def __init__(self, heap: "UnifiedHeap", oid: int) -> None:
        self._heap = heap
        self.oid = oid

    @property
    def valid(self) -> bool:
        return self.oid in self._heap._objects

    @property
    def tier(self) -> str:
        return self._heap._lookup(self.oid).bin.tier

    @property
    def size(self) -> int:
        return self._heap._lookup(self.oid).size

    def read(self, offset: int = 0,
             nbytes: int = params.CACHELINE_BYTES
             ) -> Generator[Event, None, None]:
        yield from self._heap.access(self.oid, offset, nbytes, False)

    def write(self, offset: int = 0,
              nbytes: int = params.CACHELINE_BYTES
              ) -> Generator[Event, None, None]:
        yield from self._heap.access(self.oid, offset, nbytes, True)

    def __repr__(self) -> str:
        where = self.tier if self.valid else "freed"
        return f"<SmartPointer oid={self.oid} {where}>"


class AccessProfiler:
    """Per-object temperature: access counts with periodic decay."""

    def __init__(self, env: Environment, epoch_ns: float = 10_000.0,
                 decay: float = 0.5) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.env = env
        self.epoch_ns = epoch_ns
        self.decay = decay
        self._temperature: Dict[int, float] = {}
        env.process(self._decay_loop(), name="profiler.decay", daemon=True)

    def record(self, oid: int, weight: float = 1.0) -> None:
        self._temperature[oid] = self._temperature.get(oid, 0.0) + weight

    def temperature(self, oid: int) -> float:
        return self._temperature.get(oid, 0.0)

    def forget(self, oid: int) -> None:
        self._temperature.pop(oid, None)

    def _decay_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.env.timeout(self.epoch_ns)
            for oid in list(self._temperature):
                cooled = self._temperature[oid] * self.decay
                if cooled < 0.01:
                    del self._temperature[oid]
                else:
                    self._temperature[oid] = cooled


class UnifiedHeap:
    """Object allocation over bins carved from every memory node."""

    def __init__(self, env: Environment, host, engine,
                 profiler: Optional[AccessProfiler] = None) -> None:
        self.env = env
        self.host = host
        self.engine = engine
        self.profiler = profiler or AccessProfiler(env)
        self.bins: Dict[str, MemoryBin] = {}
        self._objects: Dict[int, HeapObject] = {}
        self._locks: Dict[int, Resource] = {}
        self.allocations = 0
        self.failed_allocations = 0
        # Telemetry: per-bin placement mix is probed by the sampler;
        # access/migration counts update on the data path behind one
        # is-None branch.
        self._tel = tel = env.telemetry
        if tel is not None:
            registry = tel.registry
            self._m_allocations = registry.counter("heap.allocations")
            self._m_accesses = registry.counter("heap.accesses")
            self._m_migrations = registry.counter("heap.migrations")
        # Causal tracing: heap accesses and migrations are transaction
        # roots (sampled); the context then rides down through the
        # memory hierarchy into the fabric.
        self._causal = tel.causal if tel is not None else None

    # -- bins -----------------------------------------------------------------

    def add_bin(self, name: str, start: int, size: int, tier: str,
                is_remote: bool) -> MemoryBin:
        if name in self.bins:
            raise HeapError(f"bin {name!r} already exists")
        memory_bin = MemoryBin(name=name, tier=tier,
                               freelist=FreeList(start, size),
                               is_remote=is_remote)
        self.bins[name] = memory_bin
        if self._tel is not None:
            # The placement mix: bytes resident per bin over time.
            self._tel.add_probe(f"heap.bin.{name}.allocated_bytes",
                                lambda b=memory_bin:
                                b.freelist.allocated_bytes,
                                track="heap")
        return memory_bin

    def bins_by_preference(self, prefer_tier: Optional[str]) -> List[MemoryBin]:
        """Preferred tier first, then local, then remote bins."""
        ordered = sorted(self.bins.values(),
                         key=lambda b: (b.tier != prefer_tier, b.is_remote,
                                        b.name))
        return ordered

    # -- allocation --------------------------------------------------------------

    def allocate(self, size: int,
                 prefer_tier: Optional[str] = None,
                 pinned: bool = False) -> SmartPointer:
        for memory_bin in self.bins_by_preference(prefer_tier):
            try:
                addr = memory_bin.freelist.allocate(size)
            except HeapError:
                continue
            oid = next(_oids)
            self._objects[oid] = HeapObject(oid=oid, size=size,
                                            bin=memory_bin, addr=addr,
                                            pinned=pinned)
            self._locks[oid] = Resource(self.env)
            self.allocations += 1
            if self._tel is not None:
                self._m_allocations.inc(time=self.env.now)
            return SmartPointer(self, oid)
        self.failed_allocations += 1
        raise HeapError(f"no bin can hold {size} bytes")

    def free(self, pointer: SmartPointer) -> None:
        obj = self._lookup(pointer.oid)
        obj.bin.freelist.free(obj.addr, obj.size)
        del self._objects[obj.oid]
        del self._locks[obj.oid]
        self.profiler.forget(obj.oid)

    def _lookup(self, oid: int) -> HeapObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise HeapError(f"object {oid} is not live") from None

    def object_of(self, pointer: SmartPointer) -> HeapObject:
        return self._lookup(pointer.oid)

    def live_objects(self) -> List[HeapObject]:
        return list(self._objects.values())

    # -- access ---------------------------------------------------------------

    def access(self, oid: int, offset: int, nbytes: int,
               is_write: bool) -> Generator[Event, None, None]:
        obj = self._lookup(oid)
        if offset < 0 or offset + nbytes > obj.size:
            raise HeapError(
                f"access [{offset}, {offset + nbytes}) outside object "
                f"of {obj.size} bytes")
        if self._tel is not None:
            self._m_accesses.inc(time=self.env.now)
        causal = self._causal
        context = causal.sample_root() if causal is not None else None
        if context is not None:
            causal.txn_begin(context, self.env.now,
                             "heap.write" if is_write else "heap.read",
                             f"heap:{obj.bin.name}")
        with self._locks[oid].request() as grant:
            if context is not None:
                causal.wait(context, grant, QUEUEING, "heap.lock")
            yield grant
            self.profiler.record(oid)
            yield from self.host.mem.access(obj.addr + offset, is_write,
                                            nbytes, trace=context)
        if context is not None:
            causal.txn_end(context, self.env.now)

    # -- migration -------------------------------------------------------------

    def migrate(self, oid: int,
                target_bin: MemoryBin) -> Generator[Event, None, bool]:
        """Move one object; returns False if it could not move."""
        obj = self._lookup(oid)
        if obj.pinned or obj.bin is target_bin:
            return False
        try:
            new_addr = target_bin.freelist.allocate(obj.size)
        except HeapError:
            return False
        causal = self._causal
        context = causal.sample_root() if causal is not None else None
        if context is not None:
            causal.txn_begin(context, self.env.now, "heap.migrate",
                             f"heap:{obj.bin.name}->{target_bin.name}")
        with span(self.env, "heap.migrate", track="heap", oid=oid,
                  nbytes=obj.size, dst=target_bin.name):
            with self._locks[oid].request() as grant:
                if context is not None:
                    causal.wait(context, grant, QUEUEING, "heap.lock")
                yield grant
                attributes = {"reason": "heap-migration"}
                if context is not None:
                    attributes["trace"] = context
                trans = ETrans(src_list=[(obj.addr, obj.size)],
                               dst_list=[(new_addr, obj.size)],
                               immediate=True, ownership="caller",
                               attributes=attributes)
                handle = self.engine.submit(trans)
                yield handle.wait()
                obj.bin.freelist.free(obj.addr, obj.size)
                obj.bin = target_bin
                obj.addr = new_addr
                obj.migrations += 1
            if self._tel is not None:
                self._m_migrations.inc(time=self.env.now)
        if context is not None:
            causal.txn_end(context, self.env.now)
        return True


class HeapRuntime:
    """The periodic promote/demote policy loop over a unified heap."""

    def __init__(self, env: Environment, heap: UnifiedHeap,
                 local_bin: str,
                 interval_ns: float = 20_000.0,
                 promote_threshold: float = 4.0,
                 demote_threshold: float = 0.5) -> None:
        if promote_threshold <= demote_threshold:
            raise ValueError("promote threshold must exceed demote")
        self.env = env
        self.heap = heap
        self.local_bin_name = local_bin
        self.interval_ns = interval_ns
        self.promote_threshold = promote_threshold
        self.demote_threshold = demote_threshold
        self.promotions = 0
        self.demotions = 0
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.env.process(self._loop(), name="heap-runtime", daemon=True)

    def reconfigure(self, interval_ns: Optional[float] = None,
                    promote_threshold: Optional[float] = None,
                    demote_threshold: Optional[float] = None) -> None:
        """Retune the policy loop mid-run (the actuator path).

        Omitted fields keep their current values; the merged result
        must satisfy the same invariants as ``__init__``.  The running
        loop re-reads ``interval_ns`` each wakeup, so a new cadence
        takes effect after the next pass without restarting it.
        """
        interval = self.interval_ns if interval_ns is None else interval_ns
        promote = self.promote_threshold if promote_threshold is None \
            else promote_threshold
        demote = self.demote_threshold if demote_threshold is None \
            else demote_threshold
        if interval <= 0:
            raise ValueError(f"interval_ns must be > 0, got {interval}")
        if promote <= demote:
            raise ValueError("promote threshold must exceed demote")
        self.interval_ns = interval
        self.promote_threshold = promote
        self.demote_threshold = demote

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.env.timeout(self.interval_ns)
            yield from self.rebalance_once()

    def rebalance_once(self) -> Generator[Event, None, None]:
        """One promote/demote pass."""
        with span(self.env, "heap.rebalance", track="heap"):
            local = self.heap.bins[self.local_bin_name]
            temperature = self.heap.profiler.temperature
            hot_remote = sorted(
                (obj for obj in self.heap.live_objects()
                 if obj.bin is not local and not obj.pinned
                 and temperature(obj.oid) >= self.promote_threshold),
                key=lambda o: -temperature(o.oid))
            for obj in hot_remote:
                if local.freelist.largest_free_block() < obj.size:
                    yield from self._make_room(local, obj.size)
                moved = yield from self.heap.migrate(obj.oid, local)
                if moved:
                    self.promotions += 1

    def _make_room(self, local: MemoryBin,
                   needed: int) -> Generator[Event, None, None]:
        temperature = self.heap.profiler.temperature
        cold_local = sorted(
            (obj for obj in self.heap.live_objects()
             if obj.bin is local and not obj.pinned
             and temperature(obj.oid) <= self.demote_threshold),
            key=lambda o: temperature(o.oid))
        for victim in cold_local:
            if local.freelist.largest_free_block() >= needed:
                return
            target = next(
                (b for b in self.heap.bins.values()
                 if b is not local
                 and b.freelist.largest_free_block() >= victim.size),
                None)
            if target is None:
                return
            moved = yield from self.heap.migrate(victim.oid, target)
            if moved:
                self.demotions += 1
