"""Elastic transactions: the UniFabric data-movement primitive (DP#1).

Section 5's sketch: ``eTrans(src_addr_list, dst_addr_list,
immediate_bit, attributes, ownership)``.  The elastic transaction
decouples the *initiator* (whoever wants the data moved) from the
*executor* (whoever actually issues the loads/stores):

* ``immediate=True`` — executed synchronously by the initiating core,
  for latency-sensitive movement tightly coupled to execution;
* ``immediate=False`` — delegated to a migration agent in the same
  memory domain and orchestrated by the central movement service
  (:mod:`repro.core.movement`), which enforces control-plane policies
  such as remote-bandwidth throttling.

``ownership`` captures how completion is handled (the paper points at
distributed futures): ``"caller"`` gets a waitable handle, ``"agent"``
fires an optional callback, ``"silent"`` is fire-and-forget.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from .. import params
from ..sim import Environment, Event

__all__ = ["Extent", "ETrans", "ETransHandle", "ElasticTransactionEngine",
           "OWNERSHIP_MODES"]

OWNERSHIP_MODES = ("caller", "agent", "silent")

#: (address, nbytes) — addresses are host-physical for the owning host.
Extent = Tuple[int, int]

_etrans_ids = itertools.count()


@dataclasses.dataclass
class ETrans:
    """One elastic transaction."""

    src_list: Sequence[Extent]
    dst_list: Sequence[Extent]
    immediate: bool = False
    attributes: dict = dataclasses.field(default_factory=dict)
    ownership: str = "caller"
    callback: Optional[Callable[["ETrans"], None]] = None
    uid: int = dataclasses.field(default_factory=lambda: next(_etrans_ids))
    submitted_ns: float = 0.0
    completed_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.ownership not in OWNERSHIP_MODES:
            raise ValueError(f"ownership must be one of {OWNERSHIP_MODES}, "
                             f"got {self.ownership!r}")
        if not self.src_list or not self.dst_list:
            raise ValueError("src_list and dst_list must be non-empty")
        if self.total_src_bytes != self.total_dst_bytes:
            raise ValueError(
                f"source bytes ({self.total_src_bytes}) != destination "
                f"bytes ({self.total_dst_bytes})")
        for addr, nbytes in list(self.src_list) + list(self.dst_list):
            if nbytes <= 0:
                raise ValueError(f"extent ({addr:#x}, {nbytes}) is empty")

    @property
    def total_src_bytes(self) -> int:
        return sum(n for _, n in self.src_list)

    @property
    def total_dst_bytes(self) -> int:
        return sum(n for _, n in self.dst_list)

    @property
    def priority(self) -> int:
        """Lower value = more urgent (used by the agent queue)."""
        return int(self.attributes.get("priority", 10))


class ETransHandle:
    """Completion handle returned to ``ownership="caller"`` initiators."""

    def __init__(self, env: Environment, trans: ETrans) -> None:
        self.env = env
        self.trans = trans
        self.done = env.event()

    def wait(self) -> Event:
        return self.done

    @property
    def completed(self) -> bool:
        return self.done.triggered

    @property
    def latency_ns(self) -> float:
        if not self.completed:
            raise RuntimeError("transaction still in flight")
        return self.trans.completed_ns - self.trans.submitted_ns


class ElasticTransactionEngine:
    """Per-host front end of the movement service.

    Owns the host's synchronous execution path and hands asynchronous
    transactions to the orchestrator's agent for this memory domain.
    """

    def __init__(self, env: Environment, host, orchestrator,
                 chunk_bytes: int = 4096) -> None:
        if chunk_bytes < params.CACHELINE_BYTES:
            raise ValueError("chunk must be at least one cacheline")
        self.env = env
        self.host = host
        self.orchestrator = orchestrator
        self.chunk_bytes = chunk_bytes
        self.immediate_count = 0
        self.delegated_count = 0

    def submit(self, trans: ETrans) -> Optional[ETransHandle]:
        """Submit; returns a handle iff ``ownership == "caller"``."""
        trans.submitted_ns = self.env.now
        handle = ETransHandle(self.env, trans) \
            if trans.ownership == "caller" else None
        if trans.immediate:
            self.immediate_count += 1
            self.env.process(self._execute_immediate(trans, handle),
                             name=f"etrans{trans.uid}.imm")
        else:
            self.delegated_count += 1
            self.orchestrator.enqueue(self.host, trans, handle)
        return handle

    def execute(self, trans: ETrans) -> Generator[Event, None, None]:
        """Synchronously run a transaction from this host (agent core).

        Copies extent by extent in ``chunk_bytes`` units: each chunk is
        a read of the source followed by a write of the destination,
        both through the host's memory hierarchy — so locality in
        either endpoint transparently accelerates the move.
        """
        trace = trans.attributes.get("trace")
        for (src, dst, nbytes) in _paired_extents(trans.src_list,
                                                  trans.dst_list):
            offset = 0
            while offset < nbytes:
                chunk = min(self.chunk_bytes, nbytes - offset)
                yield from self.orchestrator.admit(self.host, chunk)
                yield from self.host.mem.access(src + offset, False, chunk,
                                                trace=trace)
                yield from self.host.mem.access(dst + offset, True, chunk,
                                                trace=trace)
                self.orchestrator.account(self.host, src + offset,
                                          dst + offset, chunk)
                offset += chunk
        trans.completed_ns = self.env.now

    def _execute_immediate(self, trans: ETrans,
                           handle: Optional[ETransHandle]
                           ) -> Generator[Event, None, None]:
        yield from self.execute(trans)
        _finish(trans, handle)


def _paired_extents(src_list: Sequence[Extent], dst_list: Sequence[Extent]
                    ) -> List[Tuple[int, int, int]]:
    """Zip scattered source extents onto scattered destinations.

    Returns (src_addr, dst_addr, nbytes) runs covering both lists.
    """
    pairs = []
    src_iter = [(a, n) for a, n in src_list]
    dst_iter = [(a, n) for a, n in dst_list]
    si = di = 0
    src_addr, src_left = src_iter[0]
    dst_addr, dst_left = dst_iter[0]
    while True:
        run = min(src_left, dst_left)
        pairs.append((src_addr, dst_addr, run))
        src_addr += run
        dst_addr += run
        src_left -= run
        dst_left -= run
        if src_left == 0:
            si += 1
            if si >= len(src_iter):
                break
            src_addr, src_left = src_iter[si]
        if dst_left == 0:
            di += 1
            if di >= len(dst_iter):
                break
            dst_addr, dst_left = dst_iter[di]
    return pairs


def _finish(trans: ETrans, handle: Optional[ETransHandle]) -> None:
    if handle is not None:
        handle.done.succeed(trans)
    if trans.ownership == "agent" and trans.callback is not None:
        trans.callback(trans)
