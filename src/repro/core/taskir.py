"""A small task IR for the idempotent-task compilation framework (DP#3).

FCC needs "a new compilation framework to identify idempotent code
regions and encapsulate them as idempotent tasks".  Since there is no
real compiler front end here, programs are expressed in a minimal IR of
memory reads/writes, compute blocks, and accelerator calls — enough
structure for the idempotence analysis in
:mod:`repro.core.idempotent` to find clobber anti-dependences and cut
regions, and for the split runtime to execute and re-execute them.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, List, Optional

from .. import params

__all__ = ["OpKind", "Op", "Task"]


class OpKind(enum.Enum):
    READ = "read"          # load from a heap/host address
    WRITE = "write"        # store to a heap/host address
    COMPUTE = "compute"    # pure computation for duration_ns
    CALL = "call"          # invoke an FAA kernel (stateless)


@dataclasses.dataclass(frozen=True)
class Op:
    """One IR operation."""

    kind: OpKind
    addr: int = 0
    nbytes: int = params.CACHELINE_BYTES
    duration_ns: float = 0.0
    kernel: Optional[str] = None
    accelerator: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind in (OpKind.READ, OpKind.WRITE) and self.nbytes <= 0:
            raise ValueError("memory ops need nbytes > 0")
        if self.kind is OpKind.COMPUTE and self.duration_ns < 0:
            raise ValueError("compute duration must be >= 0")
        if self.kind is OpKind.CALL and not self.kernel:
            raise ValueError("call ops need a kernel name")

    def lines(self, line_bytes: int = params.CACHELINE_BYTES
              ) -> FrozenSet[int]:
        """The cache lines this op touches (empty for compute/call)."""
        if self.kind not in (OpKind.READ, OpKind.WRITE):
            return frozenset()
        first = self.addr // line_bytes
        last = (self.addr + self.nbytes - 1) // line_bytes
        return frozenset(range(first, last + 1))


class Task:
    """A straight-line program of IR ops, built fluently::

        task = (Task("checksum")
                .read(0x1000).read(0x1040)
                .compute(50.0)
                .write(0x2000))
    """

    def __init__(self, name: str, ops: Optional[List[Op]] = None) -> None:
        self.name = name
        self.ops: List[Op] = list(ops or [])

    # -- fluent builders -------------------------------------------------

    def read(self, addr: int,
             nbytes: int = params.CACHELINE_BYTES) -> "Task":
        self.ops.append(Op(OpKind.READ, addr=addr, nbytes=nbytes))
        return self

    def write(self, addr: int,
              nbytes: int = params.CACHELINE_BYTES) -> "Task":
        self.ops.append(Op(OpKind.WRITE, addr=addr, nbytes=nbytes))
        return self

    def compute(self, duration_ns: float) -> "Task":
        self.ops.append(Op(OpKind.COMPUTE, duration_ns=duration_ns))
        return self

    def call(self, kernel: str, accelerator: Optional[str] = None,
             duration_ns: float = 0.0) -> "Task":
        self.ops.append(Op(OpKind.CALL, kernel=kernel,
                           accelerator=accelerator,
                           duration_ns=duration_ns))
        return self

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def reads(self) -> List[Op]:
        return [op for op in self.ops if op.kind is OpKind.READ]

    def writes(self) -> List[Op]:
        return [op for op in self.ops if op.kind is OpKind.WRITE]

    def __repr__(self) -> str:
        return f"<Task {self.name!r}, {len(self.ops)} ops>"
