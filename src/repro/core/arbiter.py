"""The fabric central arbitrator (design principle #4).

An in-band centralized arbiter for bandwidth allocation, congestion
control, and flow scheduling, reachable over the *dedicated control
lanes* of the link layer (so arbiter traffic never queues behind data).
It exposes the programmable interface the paper asks for — query,
reserve, and reclaim credits — to the application layer via
:class:`ArbiterClient`, enabling compute-fabric co-design.

The arbiter manipulates two switch-side mechanisms:

* per-flow credit budgets at contended egress ports
  (:class:`~repro.pcie.credits.CreditDomain` with a
  :class:`~repro.pcie.credits.ReservationPolicy`), rebalanced
  immediately on reserve/reclaim instead of on a timer;
* flow priorities for :class:`~repro.pcie.arbitration.PriorityScheduler`
  egress ports: a reservation returns a priority level the client
  stamps into its packets' metadata.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..fabric.flit import Channel, Packet, PacketKind
from ..fabric.transaction import TransactionPort
from ..pcie.credits import CreditDomain, ReservationPolicy
from ..sim import Environment, Event
from ..telemetry import span

__all__ = ["FabricArbiter", "ArbiterClient", "ArbiterError"]


class ArbiterError(Exception):
    """A control-plane request the arbiter refused."""


class FabricArbiter:
    """The central arbiter service behind one fabric endpoint."""

    def __init__(self, env: Environment, port: TransactionPort,
                 name: str = "arbiter") -> None:
        self.env = env
        self.port = port
        self.name = name
        self._domains: Dict[str, CreditDomain] = {}
        self._policies: Dict[str, ReservationPolicy] = {}
        self._priorities: Dict[str, Dict[str, int]] = {}
        self._next_priority: Dict[str, int] = {}
        self.control_messages = 0
        port.serve(self._handle, concurrency=4)

    # -- domain registry (configuration time) ------------------------------

    def manage(self, key: str, domain: CreditDomain) -> None:
        """Take over a credit domain: swap in a reservation policy."""
        if key in self._domains:
            raise ValueError(f"domain {key!r} already managed")
        policy = ReservationPolicy()
        domain.policy = policy
        domain.rebalance_now()
        self._domains[key] = domain
        self._policies[key] = policy
        self._priorities[key] = {}
        self._next_priority[key] = 1
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            # Sanitized runs audit the domain under its arbiter name:
            # reserve/reclaim rebalance immediately, so every control
            # message doubles as a conservation checkpoint.
            sanitizer.register_credit_domain(
                domain, label=f"{self.name}/{key}")

    def managed_domains(self):
        return sorted(self._domains)

    # -- the in-band control protocol ------------------------------------------

    def _handle(self, request: Packet
                ) -> Generator[Event, None, Optional[Packet]]:
        with span(self.env, "arbiter.handle", track=self.name,
                  op=request.meta.get("op")):
            yield self.env.timeout(5.0)  # arbiter decision logic
            self.control_messages += 1
            response = request.make_response()
            if request.kind is not PacketKind.CTRL_REQ:
                response.meta["error"] = "not a control request"
                return response
            op = request.meta.get("op")
            try:
                response.meta.update(self._dispatch(op, request.meta))
            except (ArbiterError, KeyError) as exc:
                response.meta["error"] = str(exc)
            return response

    def _dispatch(self, op: Optional[str], meta: dict) -> dict:
        if op == "query":
            domain = self._domains[meta["domain"]]
            return {"grants": {flow: domain.granted(flow)
                               for flow in domain.flow_names()},
                    "budget": domain.budget}
        if op == "reserve":
            return self._reserve(meta["domain"], meta["flow"],
                                 int(meta["credits"]))
        if op == "reclaim":
            return self._reclaim(meta["domain"], meta["flow"])
        raise ArbiterError(f"unknown op {op!r}")

    def _reserve(self, key: str, flow: str, credits: int) -> dict:
        domain = self._domains[key]
        policy = self._policies[key]
        if credits < 1:
            raise ArbiterError(f"cannot reserve {credits} credits")
        committed = sum(policy.reservations.get(f, 0)
                        for f in policy.reservations if f != flow)
        if committed + credits > domain.budget:
            raise ArbiterError(
                f"budget exceeded: {committed} committed of "
                f"{domain.budget}, {credits} requested")
        if flow not in domain.flow_names():
            domain.register(flow)
        policy.reserve(flow, credits)
        domain.rebalance_now()
        priority = self._priorities[key].get(flow)
        if priority is None:
            priority = self._next_priority[key]
            self._next_priority[key] += 1
            self._priorities[key][flow] = priority
        return {"granted": credits, "prio": priority}

    def _reclaim(self, key: str, flow: str) -> dict:
        domain = self._domains[key]
        policy = self._policies[key]
        policy.reclaim(flow)
        self._priorities[key].pop(flow, None)
        domain.rebalance_now()
        return {"reclaimed": True}


class ArbiterClient:
    """Host-side stub: query/reserve/reclaim over the control lane."""

    def __init__(self, env: Environment, port: TransactionPort,
                 arbiter_id: int) -> None:
        self.env = env
        self.port = port
        self.arbiter_id = arbiter_id

    def _call(self, meta: dict) -> Generator[Event, None, dict]:
        packet = Packet(kind=PacketKind.CTRL_REQ, channel=Channel.CONTROL,
                        src=self.port.port_id, dst=self.arbiter_id,
                        nbytes=0, meta=meta)
        response = yield from self.port.request(packet)
        if "error" in response.meta:
            raise ArbiterError(response.meta["error"])
        return response.meta

    def query(self, domain: str) -> Generator[Event, None, dict]:
        return (yield from self._call({"op": "query", "domain": domain}))

    def reserve(self, domain: str, flow: str,
                credits: int) -> Generator[Event, None, dict]:
        """Reserve credits; returns {'granted': n, 'prio': p}.

        Stamp ``p`` into ``packet.meta['prio']`` on subsequent data
        packets to ride the reservation through priority-scheduled
        egress ports.
        """
        return (yield from self._call({"op": "reserve", "domain": domain,
                                       "flow": flow, "credits": credits}))

    def reclaim(self, domain: str,
                flow: str) -> Generator[Event, None, dict]:
        return (yield from self._call({"op": "reclaim", "domain": domain,
                                       "flow": flow}))
