"""A memkind-style allocation API over the unified heap.

Section 5: "UniFabric will extend the existing MemKind library to
incorporate different kinds of memory nodes and expose an active
heap.  One can reuse existing data structures and port unmodified
applications using compatible programming interfaces."

This module is that compatibility veneer: the classic
``kind_malloc`` / ``kind_free`` shape, with *kinds* mapping onto
unified-heap tiers.  Ported code keeps its allocation call sites; the
active heap underneath still profiles and migrates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from .heap import HeapError, SmartPointer, UnifiedHeap

__all__ = ["MemoryKind", "MemkindAllocator",
           "MEMKIND_DEFAULT", "MEMKIND_LOCAL", "MEMKIND_FABRIC",
           "MEMKIND_FABRIC_COHERENT", "MEMKIND_FABRIC_NONCOHERENT"]


@dataclasses.dataclass(frozen=True)
class MemoryKind:
    """A named allocation policy (the memkind ``kind``)."""

    name: str
    prefer_tier: Optional[str]     # unified-heap tier, None = any
    pinned: bool = False           # exempt from migration

    def __repr__(self) -> str:
        return f"<MemoryKind {self.name}>"


#: The stock kinds.  ``MEMKIND_DEFAULT`` lets the active heap place
#: (and later migrate) freely; the others pin the initial tier choice.
MEMKIND_DEFAULT = MemoryKind("memkind_default", prefer_tier=None)
MEMKIND_LOCAL = MemoryKind("memkind_local", prefer_tier="local")
MEMKIND_FABRIC = MemoryKind("memkind_fabric",
                            prefer_tier="cpuless-numa")
MEMKIND_FABRIC_COHERENT = MemoryKind("memkind_fabric_coherent",
                                     prefer_tier="cc-numa")
MEMKIND_FABRIC_NONCOHERENT = MemoryKind("memkind_fabric_noncoherent",
                                        prefer_tier="noncc-numa")


class MemkindAllocator:
    """``kind_malloc``/``kind_free`` over a :class:`UnifiedHeap`."""

    def __init__(self, heap: UnifiedHeap) -> None:
        self.heap = heap
        self._kinds: Dict[str, MemoryKind] = {}
        self._allocated: Dict[int, str] = {}   # oid -> kind name
        for kind in (MEMKIND_DEFAULT, MEMKIND_LOCAL, MEMKIND_FABRIC,
                     MEMKIND_FABRIC_COHERENT,
                     MEMKIND_FABRIC_NONCOHERENT):
            self._kinds[kind.name] = kind
        self.bytes_by_kind: Dict[str, int] = {}

    # -- kind registry -----------------------------------------------------

    def create_kind(self, name: str, prefer_tier: Optional[str],
                    pinned: bool = False) -> MemoryKind:
        """Register a custom kind (memkind's PMEM-style user kinds)."""
        if name in self._kinds:
            raise ValueError(f"kind {name!r} already exists")
        kind = MemoryKind(name, prefer_tier=prefer_tier, pinned=pinned)
        self._kinds[name] = kind
        return kind

    def kinds(self) -> List[MemoryKind]:
        return list(self._kinds.values())

    # -- the classic API ----------------------------------------------------

    def kind_malloc(self, kind: MemoryKind, size: int) -> SmartPointer:
        """Allocate ``size`` bytes under ``kind``'s placement policy."""
        if kind.name not in self._kinds:
            raise ValueError(f"unregistered kind {kind!r}")
        pointer = self.heap.allocate(size, prefer_tier=kind.prefer_tier,
                                     pinned=kind.pinned)
        self._allocated[pointer.oid] = kind.name
        self.bytes_by_kind[kind.name] = \
            self.bytes_by_kind.get(kind.name, 0) + pointer.size
        return pointer

    def kind_calloc(self, kind: MemoryKind, count: int,
                    size: int) -> SmartPointer:
        return self.kind_malloc(kind, count * size)

    def kind_free(self, kind: Optional[MemoryKind],
                  pointer: SmartPointer) -> None:
        """Free; ``kind=None`` auto-detects (memkind_free(NULL, p))."""
        recorded = self._allocated.pop(pointer.oid, None)
        if recorded is None:
            raise HeapError(f"pointer {pointer!r} not from this allocator")
        if kind is not None and kind.name != recorded:
            raise HeapError(
                f"kind mismatch: allocated as {recorded!r}, freed as "
                f"{kind.name!r}")
        self.bytes_by_kind[recorded] -= pointer.size
        self.heap.free(pointer)

    def detect_kind(self, pointer: SmartPointer) -> MemoryKind:
        """memkind_detect_kind: which kind owns this allocation."""
        name = self._allocated.get(pointer.oid)
        if name is None:
            raise HeapError(f"pointer {pointer!r} not from this allocator")
        return self._kinds[name]

    def usable_size(self, pointer: SmartPointer) -> int:
        return pointer.size

    def stats(self) -> Dict[str, int]:
        return {name: nbytes for name, nbytes
                in sorted(self.bytes_by_kind.items()) if nbytes}
