"""Distributed futures with ownership (the DP#4 programming abstraction).

The paper: "FCC would incorporate a programmable interface with the
control lane ... and expose it to the application layer via some
programming abstraction (such as distributed futures), enabling
compute-fabric co-design" — citing the Ownership system (NSDI '21).

The key Ownership idea carried over: every future has a single *owner*
(the submitting executor), which holds the completion metadata and is
responsible for resolving it; values flow between executors only when
a dependent actually needs them.

Futures compose over anything the runtime can execute: plain
generators, chained callbacks, and fan-in joins.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, List, Optional

from ..sim import Environment, Event

__all__ = ["DistributedFuture", "FutureExecutor", "gather"]

_future_ids = itertools.count()


class DistributedFuture:
    """A single-assignment value owned by one executor."""

    def __init__(self, env: Environment, owner: str) -> None:
        self.env = env
        self.owner = owner
        self.uid = next(_future_ids)
        self._event = env.event()
        # Defuse: a rejection with no waiter yet is a *deferred* error
        # (surfaced by .value / .wait), not an unhandled simulation
        # failure.  The no-op callback marks the event as observed.
        self._event.callbacks.append(lambda _event: None)

    # -- completion (owner side) -------------------------------------------

    def resolve(self, value: Any = None) -> None:
        self._event.succeed(value)

    def reject(self, error: BaseException) -> None:
        self._event.fail(error)

    # -- consumption ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._event.triggered

    @property
    def value(self) -> Any:
        if not self.done:
            raise RuntimeError(f"future {self.uid} not resolved yet")
        if not self._event.ok:
            raise self._event.value
        return self._event.value

    def wait(self) -> Event:
        """Yieldable: ``value = yield future.wait()``."""
        return self._event

    def then(self, fn: Callable[[Any], Any],
             executor: Optional["FutureExecutor"] = None
             ) -> "DistributedFuture":
        """Chain a transformation; returns the downstream future.

        The continuation runs on ``executor`` (default: the owner's),
        so ownership transfers exactly as in the Ownership model: the
        caller of ``then`` owns the derived future.
        """
        target = executor or self._home
        if target is None:
            raise RuntimeError("future has no executor to chain on")
        downstream = DistributedFuture(self.env, owner=target.name)
        downstream._home = target

        def continuation() -> Generator[Event, None, None]:
            try:
                upstream_value = yield self._event
                result = fn(upstream_value)
                if isinstance(result, DistributedFuture):
                    result = yield result.wait()
                downstream.resolve(result)
            except Exception as error:   # propagate rejection downstream
                downstream.reject(error)

        self.env.process(continuation(),
                         name=f"future{downstream.uid}.then")
        return downstream

    _home: Optional["FutureExecutor"] = None

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<DistributedFuture {self.uid} owner={self.owner} {state}>"


class FutureExecutor:
    """Submits work and owns the futures it creates."""

    def __init__(self, env: Environment, name: str = "executor") -> None:
        self.env = env
        self.name = name
        self.submitted = 0

    def submit(self, work: Generator[Event, None, Any]
               ) -> DistributedFuture:
        """Run a generator as a process; the future resolves with its
        return value (or rejects with its exception)."""
        future = DistributedFuture(self.env, owner=self.name)
        future._home = self
        self.submitted += 1

        def runner() -> Generator[Event, None, None]:
            process = self.env.process(work,
                                       name=f"future{future.uid}.work")
            try:
                value = yield process
            except Exception as error:
                future.reject(error)
            else:
                future.resolve(value)

        self.env.process(runner(), name=f"future{future.uid}.own")
        return future

    def value(self, constant: Any) -> DistributedFuture:
        """An already-resolved future."""
        future = DistributedFuture(self.env, owner=self.name)
        future._home = self
        future.resolve(constant)
        return future


def gather(env: Environment,
           futures: List[DistributedFuture]) -> DistributedFuture:
    """Fan-in: resolves with the list of values, in submission order."""
    owner = futures[0].owner if futures else "gather"
    joined = DistributedFuture(env, owner=owner)
    if futures:
        joined._home = futures[0]._home

    def joiner() -> Generator[Event, None, None]:
        values = []
        try:
            for future in futures:
                values.append((yield future.wait()))
        except Exception as error:
            joined.reject(error)
        else:
            joined.resolve(values)

    env.process(joiner(), name=f"future{joined.uid}.gather")
    return joined
