"""UniFabric: the intermediate system stack of section 5, assembled.

One object wires the four design principles over a built cluster:

1. the elastic transaction engine + movement orchestrator (DP#1);
2. a unified heap per host with profiling and migration (DP#2);
3. the idempotent-task runtime factory (DP#3) — scalable functions are
   attached per-FAA via :class:`~repro.core.functions.FunctionChassis`;
4. optionally, a fabric central arbiter on dedicated control lanes
   (DP#4), with per-host clients.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..infra.cluster import Cluster
from ..pcie.switch import PortRole
from ..sim import Environment
from .arbiter import ArbiterClient, FabricArbiter
from .etrans import ElasticTransactionEngine
from .heap import AccessProfiler, HeapRuntime, UnifiedHeap
from .movement import MovementOrchestrator, SequentialPrefetcher
from .runtime import FailureInjector, TaskRuntime

__all__ = ["UniFabric"]


class UniFabric:
    """The distributed runtime layered over a composable cluster."""

    def __init__(self, env: Environment, cluster: Cluster,
                 remote_bw_bytes_per_us: Optional[float] = None,
                 local_heap_bytes: int = 64 << 20,
                 local_heap_offset: int = 16 << 20,
                 with_arbiter: bool = False,
                 heap_interval_ns: float = 20_000.0) -> None:
        self.env = env
        self.cluster = cluster
        self.orchestrator = MovementOrchestrator(
            env, remote_bw_bytes_per_us=remote_bw_bytes_per_us)
        self._engines: Dict[str, ElasticTransactionEngine] = {}
        self._heaps: Dict[str, UnifiedHeap] = {}
        self._heap_runtimes: Dict[str, HeapRuntime] = {}
        self.arbiter: Optional[FabricArbiter] = None
        self._arbiter_clients: Dict[str, ArbiterClient] = {}

        for host in cluster.hosts.values():
            engine = self.orchestrator.attach_host(host)
            self._engines[host.name] = engine
            heap = UnifiedHeap(env, host, engine,
                               profiler=AccessProfiler(env))
            local_name = f"{host.name}.local"
            heap.add_bin(local_name, start=local_heap_offset,
                         size=local_heap_bytes, tier="local",
                         is_remote=False)
            for fam_name, fam in cluster.fams.items():
                region = host.remote_region(fam_name)
                tier = fam.modules[0].kind.value
                heap.add_bin(fam_name, start=region.start,
                             size=min(region.size, fam.capacity_bytes),
                             tier=tier, is_remote=True)
            self._heaps[host.name] = heap
            runtime = HeapRuntime(env, heap, local_bin=local_name,
                                  interval_ns=heap_interval_ns)
            self._heap_runtimes[host.name] = runtime

        if with_arbiter:
            self._install_arbiter()

    # -- arbiter ------------------------------------------------------------

    def _install_arbiter(self) -> None:
        topology = self.cluster.topology
        topology.add_endpoint("arbiter")
        port = topology.connect_endpoint("sw0", "arbiter",
                                         role=PortRole.DOWNSTREAM,
                                         control_lane=True)
        self.cluster.manager.configure()
        self.arbiter = FabricArbiter(self.env, port)
        arbiter_id = topology.endpoints["arbiter"].global_id
        for host in self.cluster.hosts.values():
            self._arbiter_clients[host.name] = ArbiterClient(
                self.env, host.port, arbiter_id)

    def arbiter_client(self, host_name: str = "host0") -> ArbiterClient:
        if self.arbiter is None:
            raise RuntimeError("UniFabric built without an arbiter "
                               "(pass with_arbiter=True)")
        return self._arbiter_clients[host_name]

    # -- per-host services -------------------------------------------------------

    def engine(self, host_name: str = "host0") -> ElasticTransactionEngine:
        return self._engines[host_name]

    def heap(self, host_name: str = "host0") -> UnifiedHeap:
        return self._heaps[host_name]

    def heap_runtime(self, host_name: str = "host0") -> HeapRuntime:
        return self._heap_runtimes[host_name]

    def start_heap_runtimes(self) -> None:
        for runtime in self._heap_runtimes.values():
            runtime.start()

    def task_runtime(self, host_name: str = "host0",
                     recovery: str = "idempotent",
                     injector: Optional[FailureInjector] = None
                     ) -> TaskRuntime:
        host = self.cluster.hosts[host_name]
        faa_ids = {name: self.cluster.endpoint_id(name)
                   for name in self.cluster.faas}
        return TaskRuntime(self.env, host, injector=injector,
                           recovery=recovery, faa_ids=faa_ids)

    def prefetcher(self, host_name: str = "host0",
                   depth: int = 8) -> SequentialPrefetcher:
        host = self.cluster.hosts[host_name]
        return SequentialPrefetcher(self.env, host, depth=depth)

    def describe(self) -> str:
        lines = ["UniFabric runtime",
                 f"  hosts: {sorted(self._heaps)}",
                 f"  arbiter: {'yes' if self.arbiter else 'no'}",
                 f"  bytes moved: {self.orchestrator.bytes_moved}"]
        for name, heap in self._heaps.items():
            bins = ", ".join(f"{b.name}({b.tier})"
                             for b in heap.bins.values())
            lines.append(f"  {name} heap bins: {bins}")
        return "\n".join(lines)
