"""Set-associative cache model with LRU replacement and a victim buffer.

The host-side caching structure matters to the paper in two ways:
(1) it transparently accelerates memory-fabric accesses (difference #1),
and (2) its victim buffer generates the write-back traffic that makes
fabric writes visible to the application only as back-pressure.

The model is tag-only (no data is stored — the simulator moves latency,
not bytes) but otherwise behaves like hardware: write-back,
write-allocate, per-set LRU, and a finite victim buffer whose overflow
stalls the allocating access.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import params

__all__ = ["CacheConfig", "SetAssociativeCache", "AccessResult", "VictimBuffer"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = params.CACHELINE_BYTES
    read_ns: float = 1.0
    write_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ValueError("size and associativity must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})")
        if not _is_pow2(self.num_sets):
            raise ValueError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclasses.dataclass
class AccessResult:
    """Outcome of a cache lookup-and-fill."""

    hit: bool
    evicted_dirty_line: Optional[int] = None   # line address written back


class SetAssociativeCache:
    """Tag array with per-set LRU, write-back + write-allocate.

    Supports *way partitioning* (the DP#1 optimization: "partitioning
    the cache based on memory access analyses"): a named class of
    accesses can be capped to a number of ways per set, so a streaming
    class cannot thrash the rest of the cache.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # set index -> OrderedDict {tag: (dirty, way_class)}; LRU first.
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(config.num_sets)]
        self._partitions: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def set_partition(self, way_class: str, ways: int) -> None:
        """Cap ``way_class`` to ``ways`` ways of every set."""
        if not 1 <= ways <= self.config.assoc:
            raise ValueError(
                f"ways must be in [1, {self.config.assoc}], got {ways}")
        self._partitions[way_class] = ways

    # -- address helpers ---------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def _line_addr(self, set_index: int, tag: int) -> int:
        return ((tag * self.config.num_sets) + set_index) \
            * self.config.line_bytes

    # -- operations -----------------------------------------------------------

    def access(self, addr: int, is_write: bool,
               way_class: Optional[str] = None) -> AccessResult:
        """Look up ``addr``; on miss, allocate (possibly evicting).

        ``way_class`` names the partition this access belongs to; when
        the class is at its way quota in the set, the victim is the
        class's own LRU line instead of the global one.
        """
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if tag in ways:
            self.hits += 1
            dirty, existing_class = ways[tag]
            ways.move_to_end(tag)
            ways[tag] = (dirty or is_write, existing_class)
            return AccessResult(hit=True)
        self.misses += 1
        evicted = self._make_room(set_index, way_class)
        ways[tag] = (is_write, way_class)
        return AccessResult(hit=False, evicted_dirty_line=evicted)

    def _make_room(self, set_index: int,
                   way_class: Optional[str]) -> Optional[int]:
        """Evict if needed; returns the dirty victim's line address."""
        ways = self._sets[set_index]
        victim_tag = None
        quota = self._partitions.get(way_class) if way_class else None
        if quota is not None:
            class_tags = [t for t, (_, c) in ways.items()
                          if c == way_class]
            if len(class_tags) >= quota:
                victim_tag = class_tags[0]   # class LRU (dict order)
        if victim_tag is None and len(ways) >= self.config.assoc:
            victim_tag = next(iter(ways))    # global LRU
        if victim_tag is None:
            return None
        victim_dirty, _ = ways.pop(victim_tag)
        if victim_dirty:
            self.writebacks += 1
            return self._line_addr(set_index, victim_tag)
        return None

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update)."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    def invalidate(self, addr: int) -> bool:
        """Drop a line (snoop-invalidate); returns True if it was dirty."""
        set_index, tag = self._locate(addr)
        entry = self._sets[set_index].pop(tag, None)
        return bool(entry and entry[0])

    def flush_all(self) -> List[int]:
        """Drop everything; returns the dirty line addresses."""
        dirty = []
        for set_index, ways in enumerate(self._sets):
            for tag, (is_dirty, _) in ways.items():
                if is_dirty:
                    dirty.append(self._line_addr(set_index, tag))
            ways.clear()
        self.writebacks += len(dirty)
        return dirty

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)


class VictimBuffer:
    """A small FIFO of dirty lines awaiting write-back.

    ``push`` returns the line that must be drained *now* if the buffer
    is full (the caller stalls on that write), else ``None``.
    """

    def __init__(self, entries: int = params.VICTIM_BUFFER_ENTRIES) -> None:
        if entries < 1:
            raise ValueError(f"entries must be >= 1, got {entries}")
        self.entries = entries
        self._lines: List[int] = []
        self.overflows = 0

    def push(self, line_addr: int) -> Optional[int]:
        if len(self._lines) >= self.entries:
            self.overflows += 1
            drained = self._lines.pop(0)
            self._lines.append(line_addr)
            return drained
        self._lines.append(line_addr)
        return None

    def drain_one(self) -> Optional[int]:
        return self._lines.pop(0) if self._lines else None

    def __len__(self) -> int:
        return len(self._lines)
