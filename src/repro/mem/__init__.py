"""Memory devices and hierarchy: caches, DRAM, the four node types.

Implements section 3's difference #2 — the "eclectic memory nodes" a
memory fabric brings back: the CPU-less NUMA expander, the CC-NUMA node
with directory coherence, the non-CC NUMA node, and the COMA attraction
memory — plus the host-side cache hierarchy that transparently
accelerates them (difference #1).
"""

from .cache import AccessResult, CacheConfig, SetAssociativeCache, VictimBuffer
from .coherence import (
    CoherenceError,
    Directory,
    DirectoryEntry,
    LineState,
    SnoopAction,
)
from .coma import ComaCluster, ComaError, ComaStats
from .dram import DramDevice
from .hierarchy import AddressMap, HostMemorySystem, Region, default_cache_configs
from .nodes import (
    AccessFault,
    CcNumaNode,
    CpulessExpander,
    MemoryNode,
    NodeKind,
    NonCcNumaNode,
)

__all__ = [
    "AccessResult",
    "CacheConfig",
    "SetAssociativeCache",
    "VictimBuffer",
    "CoherenceError",
    "Directory",
    "DirectoryEntry",
    "LineState",
    "SnoopAction",
    "ComaCluster",
    "ComaError",
    "ComaStats",
    "DramDevice",
    "AddressMap",
    "HostMemorySystem",
    "Region",
    "default_cache_configs",
    "AccessFault",
    "CcNumaNode",
    "CpulessExpander",
    "MemoryNode",
    "NodeKind",
    "NonCcNumaNode",
]
