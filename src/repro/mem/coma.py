"""Cache-Only Memory Architecture (COMA) attraction-memory model.

The fourth memory-node flavour of section 3: DDM-style nodes where all
memory is a large cache ("attraction memory", AM) and data migrates or
replicates toward its users under a hierarchical directory.

The cluster model captures COMA's defining behaviours:

* **attraction** — a hit in the local AM is cheap; a miss fetches the
  line from a holder node across the fabric and *keeps a copy*;
* **migration vs. replication** — writes migrate the (single) master
  copy and invalidate replicas; reads replicate;
* **last-copy preservation** — evicting the only copy of a line forces
  a relocation to another node with spare AM capacity (memory is
  cache-only: there is no home DRAM to fall back to);
* a **hierarchical directory** that answers "who holds this line?" at
  a modelled lookup cost.

Inter-node transfer costs are modelled as parameters rather than routed
through the flit-level fabric (see DESIGN.md non-goals): the COMA
experiments compare node-type behaviour, not switch microarchitecture.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, List, Optional, Set

from .. import params
from ..sim import Environment, Event

__all__ = ["ComaCluster", "ComaStats", "ComaError"]


class ComaError(Exception):
    """Raised when the cluster cannot honour COMA semantics (AM full)."""


class ComaStats:
    """Counters for one cluster."""

    def __init__(self) -> None:
        self.hits = 0
        self.remote_fetches = 0
        self.migrations = 0
        self.replications = 0
        self.relocations = 0
        self.invalidations = 0
        self.cold_injections = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ComaCluster:
    """``nodes`` attraction memories under one hierarchical directory."""

    def __init__(self, env: Environment, nodes: int,
                 am_capacity_lines: int,
                 line_bytes: int = params.CACHELINE_BYTES,
                 local_ns: float = params.LOCAL_MEM_READ_NS,
                 hop_ns: float = 400.0,
                 directory_ns: float = 120.0,
                 name: str = "coma") -> None:
        if nodes < 1:
            raise ValueError(f"need at least one node, got {nodes}")
        if am_capacity_lines < 2:
            raise ValueError("attraction memory must hold >= 2 lines")
        self.env = env
        self.name = name
        self.num_nodes = nodes
        self.am_capacity_lines = am_capacity_lines
        self.line_bytes = line_bytes
        self.local_ns = local_ns
        self.hop_ns = hop_ns
        self.directory_ns = directory_ns
        # per node: OrderedDict {line: is_master_copy}; LRU at front
        self._am: List[OrderedDict] = [OrderedDict() for _ in range(nodes)]
        self._holders: Dict[int, Set[int]] = {}
        self._master: Dict[int, int] = {}
        self.stats = ComaStats()

    # -- helpers -----------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def holders_of(self, addr: int) -> Set[int]:
        return set(self._holders.get(self._line(addr), set()))

    def master_of(self, addr: int) -> Optional[int]:
        return self._master.get(self._line(addr))

    def occupancy(self, node: int) -> int:
        return len(self._am[node])

    # -- the access path -------------------------------------------------------

    def access(self, node: int, addr: int,
               is_write: bool = False) -> Generator[Event, None, float]:
        """One access from ``node``; returns the latency charged."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        start = self.env.now
        line = self._line(addr)
        am = self._am[node]

        if line in am:
            am.move_to_end(line)
            self.stats.hits += 1
            if is_write:
                yield from self._take_mastership(node, line)
            yield self.env.timeout(self.local_ns)
            return self.env.now - start

        holders = self._holders.get(line)
        if not holders:
            # Cold line: inject at the accessing node.
            self.stats.cold_injections += 1
            yield self.env.timeout(self.directory_ns)
            yield from self._install(node, line, master=True)
            yield self.env.timeout(self.local_ns)
            return self.env.now - start

        # Remote fetch: directory lookup + one hop to a holder.
        self.stats.remote_fetches += 1
        yield self.env.timeout(self.directory_ns + self.hop_ns)
        if is_write:
            yield from self._migrate(node, line)
        else:
            self.stats.replications += 1
            yield from self._install(node, line, master=False)
        yield self.env.timeout(self.local_ns)
        return self.env.now - start

    # -- internal state transitions ------------------------------------------

    def _take_mastership(self, node: int, line: int) -> Generator:
        """A write at a replica: invalidate others, become master."""
        if self._master.get(line) == node and \
                self._holders.get(line) == {node}:
            return
        others = self._holders.get(line, set()) - {node}
        if others:
            self.stats.invalidations += len(others)
            yield self.env.timeout(self.hop_ns)  # invalidation round
            for other in others:
                self._am[other].pop(line, None)
        self._holders[line] = {node}
        self._master[line] = node
        self._am[node][line] = True

    def _migrate(self, node: int, line: int) -> Generator:
        """A write miss: move the master copy here, kill replicas."""
        self.stats.migrations += 1
        others = self._holders.get(line, set())
        self.stats.invalidations += len(others)
        for other in others:
            self._am[other].pop(line, None)
        self._holders[line] = set()
        self._master.pop(line, None)
        yield from self._install(node, line, master=True)

    def _install(self, node: int, line: int,
                 master: bool) -> Generator[Event, None, None]:
        """Place a copy in ``node``'s AM, relocating victims as needed."""
        am = self._am[node]
        while len(am) >= self.am_capacity_lines:
            victim, victim_master = am.popitem(last=False)
            holders = self._holders.get(victim, set())
            holders.discard(node)
            if victim_master:
                if holders:
                    # Another replica exists: promote it to master.
                    new_master = min(holders)
                    self._master[victim] = new_master
                    self._am[new_master][victim] = True
                else:
                    # Last copy: must relocate, never drop (COMA rule).
                    target = self._find_space(exclude=node)
                    if target is None:
                        raise ComaError(
                            f"{self.name}: cluster AM full, cannot "
                            f"relocate last copy of line {line}")
                    self.stats.relocations += 1
                    yield self.env.timeout(self.hop_ns)
                    self._am[target][victim] = True
                    holders = {target}
                    self._master[victim] = target
            self._holders[victim] = holders
        am[line] = master
        holders = self._holders.setdefault(line, set())
        holders.add(node)
        if master:
            self._master[line] = node

    def _find_space(self, exclude: int) -> Optional[int]:
        best, best_free = None, 0
        for node in range(self.num_nodes):
            if node == exclude:
                continue
            free = self.am_capacity_lines - len(self._am[node])
            if free > best_free:
                best, best_free = node, free
        return best

    # -- invariants (property tests) ----------------------------------------

    def check_invariants(self) -> None:
        for line, holders in self._holders.items():
            for node in holders:
                if line not in self._am[node]:
                    raise ComaError(f"line {line}: holder {node} has no copy")
            master = self._master.get(line)
            if holders and master is None:
                raise ComaError(f"line {line}: held but has no master")
            if master is not None and master not in holders:
                raise ComaError(f"line {line}: master {master} not a holder")
        for node, am in enumerate(self._am):
            if len(am) > self.am_capacity_lines:
                raise ComaError(f"node {node} AM over capacity")
            for line, is_master in am.items():
                if node not in self._holders.get(line, set()):
                    raise ComaError(
                        f"node {node} holds untracked line {line}")
