"""The host memory system: cache hierarchy over local + fabric memory.

Ties together section 3's difference #1 (synchronous execution: a
load stalls until the hierarchy answers) and the paper's observation
that "the host-side caching structure ... transparently accelerates
memory fabric performance": remote FAM lines are cached in the same
L1/L2/LLC as local lines, so locality hides fabric latency.

Latency calibration: a hit at level X charges Table 2's *total* latency
for X (the calibrated numbers subsume lookup costs of the levels above).
Backends are pluggable callables so the same hierarchy runs over a flat
latency model, a contended DRAM device, or the full flit-level fabric.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Generator, List, Optional, Tuple

from .. import params
from ..sim import Environment, Event
from .cache import CacheConfig, SetAssociativeCache, VictimBuffer

__all__ = ["AddressMap", "Region", "HostMemorySystem", "default_cache_configs"]

#: backend signature: (addr, nbytes, is_write) -> generator charging time
#: (backends may additionally accept a keyword-only ``trace`` causal
#: context; plain three-argument backends keep working unchanged)
Backend = Callable[[int, int, bool], Generator[Event, None, None]]


@dataclasses.dataclass(frozen=True)
class Region:
    """One range of the host physical address space."""

    start: int
    size: int
    name: str
    backend: Backend
    is_remote: bool = False

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


class AddressMap:
    """Sorted, non-overlapping regions of the physical address space."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add(self, region: Region) -> None:
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)

    def resolve(self, addr: int) -> Region:
        for region in self._regions:
            if region.contains(addr):
                return region
        raise KeyError(f"address {addr:#x} unmapped")

    def regions(self) -> List[Region]:
        return list(self._regions)

    @property
    def span(self) -> int:
        return self._regions[-1].end if self._regions else 0


def default_cache_configs() -> Tuple[CacheConfig, CacheConfig, CacheConfig]:
    """L1/L2/LLC geometry + Table 2 hit latencies."""
    l1 = CacheConfig(name="l1", size_bytes=params.L1_SIZE_BYTES,
                     assoc=params.L1_ASSOC,
                     read_ns=params.L1_READ_NS, write_ns=params.L1_WRITE_NS)
    l2 = CacheConfig(name="l2", size_bytes=params.L2_SIZE_BYTES,
                     assoc=params.L2_ASSOC,
                     read_ns=params.L2_READ_NS, write_ns=params.L2_WRITE_NS)
    llc = CacheConfig(name="llc", size_bytes=params.LLC_SIZE_BYTES,
                      assoc=params.LLC_ASSOC,
                      read_ns=params.LLC_HIT_NS, write_ns=params.LLC_HIT_NS)
    return l1, l2, llc


class HostMemorySystem:
    """L1 -> L2 -> LLC -> {local DRAM | fabric} with write-back evictions."""

    def __init__(self, env: Environment,
                 address_map: AddressMap,
                 cache_configs: Optional[Tuple[CacheConfig, ...]] = None,
                 victim_entries: int = params.VICTIM_BUFFER_ENTRIES,
                 name: str = "host-mem") -> None:
        self.env = env
        self.name = name
        self.address_map = address_map
        configs = cache_configs or default_cache_configs()
        self.levels: List[SetAssociativeCache] = [
            SetAssociativeCache(config) for config in configs]
        self.victim_buffer = VictimBuffer(victim_entries)
        self.accesses = 0
        self.remote_accesses = 0
        self.level_hits = {cache.config.name: 0 for cache in self.levels}
        self.backend_hits = {"local": 0, "remote": 0}
        self._partitioned_regions: set = set()

    # -- cache partitioning (DP#1) -----------------------------------------

    def partition_region(self, region_name: str, ways: int) -> None:
        """Cap one region's cache footprint to ``ways`` ways per set.

        The DP#1 optimization: a streaming region (e.g. a bulk-scanned
        FAM range) is confined so it cannot thrash the working set of
        everything else.
        """
        for cache in self.levels:
            cache.set_partition(region_name,
                                min(ways, cache.config.assoc))
        self._partitioned_regions.add(region_name)

    # -- the access path -----------------------------------------------------

    def access(self, addr: int, is_write: bool = False,
               nbytes: int = params.CACHELINE_BYTES,
               trace=None) -> Generator[Event, None, str]:
        """One load/store; returns the level that served it.

        ``trace`` is an optional causal trace context; it is forwarded
        to trace-aware backends so a heap-rooted transaction keeps its
        identity down into the fabric.
        """
        self.accesses += 1
        way_class = None
        if self._partitioned_regions:
            try:
                region_name = self.address_map.resolve(addr).name
            except KeyError:
                region_name = None
            if region_name in self._partitioned_regions:
                way_class = region_name
        for cache in self.levels:
            result = cache.access(addr, is_write, way_class=way_class)
            if result.hit:
                self.level_hits[cache.config.name] += 1
                config = cache.config
                yield self.env.timeout(
                    config.write_ns if is_write else config.read_ns)
                self._handle_eviction(result.evicted_dirty_line)
                return config.name
            self._handle_eviction(result.evicted_dirty_line)
        # Miss everywhere: go to the backend region.
        region = self.address_map.resolve(addr)
        if region.is_remote:
            self.remote_accesses += 1
            self.backend_hits["remote"] += 1
        else:
            self.backend_hits["local"] += 1
        if trace is None:
            yield from region.backend(addr - region.start, nbytes, is_write)
        else:
            try:
                chain = region.backend(addr - region.start, nbytes,
                                       is_write, trace=trace)
            except TypeError:
                # A plain three-argument backend (flat latency models,
                # test doubles): run it untraced.
                chain = region.backend(addr - region.start, nbytes,
                                       is_write)
            yield from chain
        return "remote" if region.is_remote else "local"

    def _handle_eviction(self, line_addr: Optional[int]) -> None:
        """Queue a dirty eviction; drain asynchronously via the backend."""
        if line_addr is None:
            return
        overflow = self.victim_buffer.push(line_addr)
        drained = overflow if overflow is not None \
            else self.victim_buffer.drain_one()
        if drained is not None:
            self.env.process(self._writeback(drained),
                             name=f"{self.name}.wb")

    def _writeback(self, line_addr: int) -> Generator[Event, None, None]:
        try:
            region = self.address_map.resolve(line_addr)
        except KeyError:
            return  # line from a region that was since unmapped
        yield from region.backend(line_addr - region.start,
                                  params.CACHELINE_BYTES, True)

    # -- coherence hooks (used by the host adapter on snoops) ------------------

    def invalidate(self, addr: int) -> bool:
        """Snoop-invalidate ``addr`` in every level; True if dirty."""
        dirty = False
        for cache in self.levels:
            dirty |= cache.invalidate(addr)
        return dirty

    def flush(self) -> List[int]:
        """Drop all cached lines; returns dirty line addresses."""
        dirty: List[int] = []
        for cache in self.levels:
            dirty.extend(cache.flush_all())
        return sorted(set(dirty))

    # -- stats -----------------------------------------------------------------

    def hit_rate(self, level: str) -> float:
        return self.level_hits[level] / self.accesses if self.accesses else 0.0
