"""A bank/row DRAM device timing model.

Used both for host-local DIMMs and for the media inside FAM chassis.
The model captures the first-order effects that matter at rack scale:
row-buffer locality (open-page policy), bank-level parallelism, and a
shared data bus.  Latencies come from :mod:`repro.params`.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from .. import params
from ..sim import Environment, Event, Resource

__all__ = ["DramDevice"]


class DramDevice:
    """One DRAM device with ``banks`` independent banks.

    ``access`` is a process-style generator that charges the request's
    bank timing (row hit or miss) plus bus transfer, holding the bank
    and bus resources so concurrent requests contend realistically.
    """

    def __init__(self, env: Environment,
                 banks: int = params.DRAM_BANKS,
                 row_bytes: int = params.DRAM_ROW_BYTES,
                 row_hit_ns: float = params.DRAM_ROW_HIT_NS,
                 row_miss_ns: float = params.DRAM_ROW_MISS_NS,
                 bus_ns_per_line: float = params.DRAM_BUS_NS_PER_CACHELINE,
                 extra_ns: float = 0.0,
                 name: str = "dram") -> None:
        if banks < 1:
            raise ValueError(f"banks must be >= 1, got {banks}")
        if row_bytes < params.CACHELINE_BYTES:
            raise ValueError(f"row must hold at least one line")
        self.env = env
        self.name = name
        self.banks = banks
        self.row_bytes = row_bytes
        self.row_hit_ns = row_hit_ns
        self.row_miss_ns = row_miss_ns
        self.bus_ns_per_line = bus_ns_per_line
        self.extra_ns = extra_ns
        self._bank_locks: List[Resource] = [Resource(env) for _ in range(banks)]
        self._open_rows: List[Optional[int]] = [None] * banks
        self._bus = Resource(env)
        self.row_hits = 0
        self.row_misses = 0
        self.accesses = 0

    def _bank_of(self, addr: int) -> int:
        return (addr // self.row_bytes) % self.banks

    def _row_of(self, addr: int) -> int:
        return addr // (self.row_bytes * self.banks)

    def access(self, addr: int, nbytes: int = params.CACHELINE_BYTES,
               is_write: bool = False) -> Generator[Event, None, float]:
        """Perform one access; returns the latency charged."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        start = self.env.now
        bank = self._bank_of(addr)
        row = self._row_of(addr)
        self.accesses += 1
        with self._bank_locks[bank].request() as grant:
            yield grant
            if self._open_rows[bank] == row:
                self.row_hits += 1
                yield self.env.timeout(self.row_hit_ns)
            else:
                self.row_misses += 1
                self._open_rows[bank] = row
                yield self.env.timeout(self.row_miss_ns)
            lines = -(-nbytes // params.CACHELINE_BYTES)
            with self._bus.request() as bus_grant:
                yield bus_grant
                yield self.env.timeout(lines * self.bus_ns_per_line)
        if self.extra_ns:
            yield self.env.timeout(self.extra_ns)
        return self.env.now - start

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
