"""The fabric-attached memory node types (section 3, difference #2).

Four node flavours, all served behind a fabric endpoint adapter:

* :class:`CpulessExpander` — a CXL Type-3 memory expander with no
  processor; optionally partitioned across hosts with device-side
  bounds enforcement;
* :class:`CcNumaNode` — exposes a coherent shared region backed by a
  directory-based write-invalidate protocol (DASH/FLASH style): the
  node snoops remote sharers over CXL.cache before serving conflicting
  accesses;
* :class:`NonCcNumaNode` — same hardware without coherence (SCC/Cell
  style): cheaper and faster, but the device only *counts* cross-host
  conflicts — software must manage them;
* the COMA node lives in :mod:`repro.mem.coma`.

A node exposes ``make_handler(port)``; the returned generator is
installed on the node's transaction port (by the FAM chassis in
:mod:`repro.infra.chassis`) and speaks packets.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, Optional, Tuple

from .. import params
from ..fabric.flit import Channel, Packet, PacketKind
from ..sim import Environment, Event
from .coherence import Directory
from .dram import DramDevice

__all__ = ["NodeKind", "MemoryNode", "CpulessExpander", "NonCcNumaNode",
           "CcNumaNode", "AccessFault"]


class NodeKind(enum.Enum):
    CPULESS_NUMA = "cpuless-numa"
    CC_NUMA = "cc-numa"
    NONCC_NUMA = "noncc-numa"
    COMA = "coma"


class AccessFault(Exception):
    """Device-side bounds/permission violation."""


class MemoryNode:
    """Base: a capacity of fabric-attached memory over DRAM media."""

    kind = NodeKind.CPULESS_NUMA

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "fam",
                 media: Optional[DramDevice] = None,
                 read_extra_ns: float = 0.0,
                 write_extra_ns: float = 0.0) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity_bytes}")
        self.env = env
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.media = media or DramDevice(env, name=f"{name}.media")
        self.read_extra_ns = read_extra_ns
        self.write_extra_ns = write_extra_ns
        self.reads = 0
        self.writes = 0
        self.faults = 0

    # -- request service -----------------------------------------------------

    def make_handler(self, port):
        """Build the request handler to install on ``port``."""

        def handler(request: Packet) -> Generator[Event, None, Optional[Packet]]:
            return (yield from self.service(request, port))

        return handler

    def service(self, request: Packet,
                port) -> Generator[Event, None, Optional[Packet]]:
        is_write = request.kind in (PacketKind.MEM_WR, PacketKind.IO_WR)
        is_read = request.kind in (PacketKind.MEM_RD, PacketKind.IO_RD)
        if not (is_write or is_read):
            # Not a memory op (e.g. a snoop response routed here):
            # ignore rather than crash the chassis.
            yield self.env.timeout(0)
            return None
        try:
            self.check_access(request)
        except AccessFault:
            self.faults += 1
            response = request.make_response(nbytes=0)
            response.meta["fault"] = True
            return response
        yield from self.pre_media(request, port)
        yield from self.media.access(request.addr, max(request.nbytes, 64),
                                     is_write=is_write)
        if is_write:
            self.writes += 1
            if self.write_extra_ns:
                yield self.env.timeout(self.write_extra_ns)
        else:
            self.reads += 1
            if self.read_extra_ns:
                yield self.env.timeout(self.read_extra_ns)
        self.post_media(request)
        return request.make_response()

    # -- hooks for subclasses ---------------------------------------------------

    def check_access(self, request: Packet) -> None:
        if not 0 <= request.addr < self.capacity_bytes:
            raise AccessFault(
                f"{self.name}: address {request.addr:#x} outside capacity")

    def pre_media(self, request: Packet,
                  port) -> Generator[Event, None, None]:
        """Coherence / bookkeeping before touching media (may snoop)."""
        yield self.env.timeout(0)

    def post_media(self, request: Packet) -> None:
        """Bookkeeping after media access."""


class CpulessExpander(MemoryNode):
    """A CXL Type-3 memory expander: no processor, optional partitions.

    When shared across hosts, the endpoint adapter partitions the
    capacity and enforces bounds (the paper: "the FEA needs to
    partition the capacity and enforce coherence at the device").
    """

    kind = NodeKind.CPULESS_NUMA

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "expander", **kwargs) -> None:
        super().__init__(env, capacity_bytes, name=name, **kwargs)
        self._partitions: Dict[int, Tuple[int, int]] = {}

    def partition(self, host_id: int, start: int, end: int) -> None:
        """Grant ``host_id`` exclusive access to [start, end)."""
        if not 0 <= start < end <= self.capacity_bytes:
            raise ValueError(f"bad partition [{start:#x}, {end:#x})")
        for other, (ostart, oend) in self._partitions.items():
            if other != host_id and start < oend and ostart < end:
                raise ValueError(
                    f"partition overlaps host {other}'s range")
        self._partitions[host_id] = (start, end)

    def check_access(self, request: Packet) -> None:
        super().check_access(request)
        if not self._partitions:
            return
        bounds = self._partitions.get(request.src)
        if bounds is None:
            raise AccessFault(f"{self.name}: host {request.src} "
                              "has no partition")
        start, end = bounds
        if not start <= request.addr < end:
            raise AccessFault(
                f"{self.name}: host {request.src} touched {request.addr:#x} "
                f"outside its partition [{start:#x}, {end:#x})")


class NonCcNumaNode(MemoryNode):
    """A shared node with no hardware coherence (SCC / Cell SPE style).

    Faster and simpler than CC-NUMA — no snoop round-trips — but the
    device merely *observes* cross-host conflicts; resolving them is
    software's problem (the paper: "simplifies the hardware design ...
    but complicates the software").
    """

    kind = NodeKind.NONCC_NUMA

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "noncc", line_bytes: int = 64,
                 **kwargs) -> None:
        super().__init__(env, capacity_bytes, name=name, **kwargs)
        self.line_bytes = line_bytes
        self._last_writer: Dict[int, int] = {}
        self.cross_host_conflicts = 0

    def post_media(self, request: Packet) -> None:
        line = request.addr // self.line_bytes
        if request.kind in (PacketKind.MEM_WR, PacketKind.IO_WR):
            previous = self._last_writer.get(line)
            if previous is not None and previous != request.src:
                self.cross_host_conflicts += 1
            self._last_writer[line] = request.src
        else:
            writer = self._last_writer.get(line)
            if writer is not None and writer != request.src:
                self.cross_host_conflicts += 1


class CcNumaNode(MemoryNode):
    """A coherent shared node with a device-side directory.

    Conflicting accesses trigger snoop-invalidate / forced-writeback
    round-trips to the caching hosts *before* media is touched, so the
    cost of coherence is visible as extra fabric latency — exactly the
    trade the paper asks data-structure designers to reason about.
    """

    kind = NodeKind.CC_NUMA

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "ccnuma", line_bytes: int = 64,
                 **kwargs) -> None:
        super().__init__(env, capacity_bytes, name=name, **kwargs)
        self.directory = Directory(line_bytes=line_bytes)
        self.snoops_issued = 0

    def pre_media(self, request: Packet,
                  port) -> Generator[Event, None, None]:
        if request.kind not in (PacketKind.MEM_RD, PacketKind.MEM_WR):
            return
        if request.meta.get("evict"):
            # Host writeback-eviction: release the directory entry.
            self.directory.evict(request.addr, request.src)
            return
        is_write = request.kind is PacketKind.MEM_WR
        action = self.directory.begin_access(request.addr, request.src,
                                             is_write)
        if not action.is_noop:
            snoop_targets = set(action.invalidate)
            if action.writeback_from is not None:
                snoop_targets.add(action.writeback_from)
            snoops = []
            for host_id in sorted(snoop_targets):
                packet = Packet(kind=PacketKind.SNP_INV,
                                channel=Channel.CXL_CACHE,
                                src=port.port_id, dst=host_id,
                                addr=request.addr)
                self.snoops_issued += 1
                snoops.append(self.env.process(
                    self._snoop(port, packet), name=f"{self.name}.snp"))
            yield self.env.all_of(snoops)
        self.directory.complete_access(request.addr, request.src, is_write)

    def _snoop(self, port, packet: Packet) -> Generator[Event, None, None]:
        yield from port.request(packet)
