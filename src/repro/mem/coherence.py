"""Directory-based write-invalidate coherence (for CC-NUMA nodes).

The fabric-attached CC-NUMA node (section 3, difference #2) keeps a
directory in its endpoint adapter and runs a cross-node MESI-style
write-invalidate protocol, as in DASH/FLASH.  The directory here is a
pure data structure: ``begin_access`` returns the snoop actions the
node must perform over the fabric, and ``complete_access`` commits the
new sharing state once they are done.  Keeping protocol state separate
from the discrete-event machinery makes the protocol unit-testable and
lets hypothesis hammer its invariants.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Set

__all__ = ["LineState", "DirectoryEntry", "SnoopAction", "Directory",
           "CoherenceError"]


class CoherenceError(Exception):
    """Protocol invariant violation (a bug, not a modelled condition)."""


class LineState(enum.Enum):
    UNCACHED = "I"       # no remote copies; memory is the only holder
    SHARED = "S"         # one or more read-only copies
    EXCLUSIVE = "M"      # exactly one writable (possibly dirty) copy


@dataclasses.dataclass
class DirectoryEntry:
    state: LineState = LineState.UNCACHED
    sharers: Set[int] = dataclasses.field(default_factory=set)
    owner: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class SnoopAction:
    """What the node must do on the fabric before serving a request.

    ``invalidate`` — hosts whose copies must be invalidated;
    ``writeback_from`` — the exclusive owner whose dirty data must be
    fetched first (None if memory is current).
    """

    invalidate: FrozenSet[int]
    writeback_from: Optional[int]

    @property
    def is_noop(self) -> bool:
        return not self.invalidate and self.writeback_from is None


class Directory:
    """Per-line sharing state for one CC-NUMA home node."""

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be > 0, got {line_bytes}")
        self.line_bytes = line_bytes
        self._entries: Dict[int, DirectoryEntry] = {}
        self.invalidations_sent = 0
        self.writebacks_forced = 0

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def entry(self, addr: int) -> DirectoryEntry:
        return self._entries.setdefault(self._line(addr), DirectoryEntry())

    def state_of(self, addr: int) -> LineState:
        return self.entry(addr).state

    def sharers_of(self, addr: int) -> Set[int]:
        return set(self.entry(addr).sharers)

    # -- protocol ---------------------------------------------------------

    def begin_access(self, addr: int, requester: int,
                     is_write: bool) -> SnoopAction:
        """Compute the snoops needed before ``requester`` may proceed."""
        entry = self.entry(addr)
        if entry.state is LineState.UNCACHED:
            return SnoopAction(frozenset(), None)
        if entry.state is LineState.SHARED:
            if not is_write:
                return SnoopAction(frozenset(), None)
            victims = frozenset(entry.sharers - {requester})
            self.invalidations_sent += len(victims)
            return SnoopAction(victims, None)
        # EXCLUSIVE
        if entry.owner is None:
            raise CoherenceError(f"line {self._line(addr)} exclusive "
                                 "without an owner")
        if entry.owner == requester:
            return SnoopAction(frozenset(), None)
        self.writebacks_forced += 1
        if is_write:
            self.invalidations_sent += 1
            return SnoopAction(frozenset({entry.owner}), entry.owner)
        return SnoopAction(frozenset(), entry.owner)

    def complete_access(self, addr: int, requester: int,
                        is_write: bool) -> None:
        """Commit the new sharing state after the snoops finished."""
        entry = self.entry(addr)
        if is_write:
            entry.state = LineState.EXCLUSIVE
            entry.owner = requester
            entry.sharers = {requester}
        else:
            if entry.state is LineState.EXCLUSIVE \
                    and entry.owner != requester:
                # Owner was downgraded by the forced writeback.
                entry.sharers = {entry.owner, requester}
            else:
                entry.sharers.add(requester)
            entry.state = LineState.SHARED
            entry.owner = None

    def evict(self, addr: int, holder: int) -> None:
        """A host silently dropped its copy (capacity eviction)."""
        entry = self.entry(addr)
        entry.sharers.discard(holder)
        if entry.owner == holder:
            entry.owner = None
            entry.state = (LineState.SHARED if entry.sharers
                           else LineState.UNCACHED)
        elif not entry.sharers:
            entry.state = LineState.UNCACHED

    # -- invariants (used by property-based tests) ---------------------------

    def check_invariants(self) -> None:
        for line, entry in self._entries.items():
            if entry.state is LineState.UNCACHED and entry.sharers:
                raise CoherenceError(f"line {line}: uncached but has sharers")
            if entry.state is LineState.EXCLUSIVE:
                if entry.owner is None:
                    raise CoherenceError(f"line {line}: exclusive, no owner")
                if entry.sharers - {entry.owner}:
                    raise CoherenceError(
                        f"line {line}: exclusive with foreign sharers")
            if entry.state is LineState.SHARED and not entry.sharers:
                raise CoherenceError(f"line {line}: shared with no sharers")
            if entry.state is not LineState.EXCLUSIVE \
                    and entry.owner is not None:
                raise CoherenceError(f"line {line}: owner outside exclusive")

    def lines_tracked(self) -> int:
        return len(self._entries)
