"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``    — print the Table 1 fabric catalog and a default rack;
* ``table2``  — quick calibration check against the paper's Table 2;
* ``demo``    — a one-minute tour: build a rack, run a workload, print
  the latency contrast and the heap/migration stats;
* ``perf``    — kernel microbenchmark + ``Environment.stats`` counters
  (events processed, events/sec, peak queue depth, pool sizes);
* ``check``   — fcc-check correctness tooling: ``--lint`` runs the
  static determinism/lifecycle lint over the package (or given paths),
  ``--sanitize <experiment>`` replays a canonical experiment under the
  runtime sanitizers; ``--json`` for machine-readable output.  Exits
  non-zero on any violation or finding;
* ``trace``   — run a canonical telemetry scenario and export the
  Chrome trace-event JSON (load it at https://ui.perfetto.dev);
* ``metrics`` — run a scenario and print its metric registry snapshot;
* ``why``     — run a scenario with causal tracing, reconstruct each
  transaction's critical path and print where the nanoseconds went
  (credit stalls vs queueing vs arbitration vs wire vs processing);
* ``compare`` — diff two recorded JSON payloads (``BENCH_<n>.json`` or
  ``repro why --json``) and exit non-zero on regressions;
* ``list``    — every registered experiment and telemetry scenario with
  a one-line description;
* ``bench``   — run one registered experiment (``repro list`` names)
  and print its paper-format table; ``--set name=value`` overrides a
  typed parameter, ``--json`` emits the schema-stable result document;
* ``sweep``   — run a declarative parameter sweep (JSON spec: one
  experiment, axes of parameter values) across worker processes into a
  resumable output directory with a merged, byte-stable report;
* ``topo``    — the declarative topology layer: ``list`` committed
  shapes and generators, ``show`` (resolve + compile + reachability
  check) one topology spec, ``validate`` descriptor JSON files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import params
from .core import MovementOrchestrator, UnifiedHeap
from .core.heap import HeapRuntime
from .fabric import format_table1
from .infra import ClusterSpec, build_cluster
from .sim import Environment

__all__ = ["main"]


def cmd_info(_args: argparse.Namespace) -> int:
    print(format_table1())
    print()
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=2))
    print(cluster.describe())
    return 0


def cmd_table2(_args: argparse.Namespace) -> int:
    """Measure the four Table 2 latency rows on a fresh rack."""
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    base = host.remote_base("fam0")
    rows = []

    def measure():
        cases = [
            ("local read", 0x40000, False, params.LOCAL_MEM_READ_NS),
            ("local write", 0x80000, True, params.LOCAL_MEM_WRITE_NS),
            ("remote read", base + 0x40000, False,
             params.REMOTE_MEM_READ_NS),
            ("remote write", base + 0x80000, True,
             params.REMOTE_MEM_WRITE_NS),
        ]
        for label, addr, is_write, target in cases:
            start = env.now
            yield from host.mem.access(addr, is_write)
            rows.append((label, env.now - start, target))
        # Warm hits for the cache rows.
        yield from host.mem.access(0x40000, False)
        start = env.now
        yield from host.mem.access(0x40000, False)
        rows.insert(0, ("L1 read (hit)", env.now - start,
                        params.L1_READ_NS))

    proc = env.process(measure())
    env.run(until=10_000_000, until_event=proc)
    print(f"{'case':<16} {'sim ns':>10} {'paper ns':>10}")
    status = 0
    for label, measured, target in rows:
        marker = ""
        if abs(measured - target) / target > 0.02:
            marker = "  <-- off"
            status = 1
        print(f"{label:<16} {measured:>10.1f} {target:>10.1f}{marker}")
    return status


def cmd_demo(_args: argparse.Namespace) -> int:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=1 << 20, size=128 * 1024, tier="local",
                 is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=8 << 20,
                 tier="cpuless-numa", is_remote=True)
    runtime = HeapRuntime(env, heap, local_bin="local",
                          interval_ns=5_000.0, promote_threshold=3.0)
    runtime.start()
    hot = heap.allocate(4096, prefer_tier="cpuless-numa")
    before = {}
    after = {}

    def workload():
        start = env.now
        yield from hot.read()
        before["latency"] = env.now - start
        before["tier"] = hot.tier
        for _ in range(60):
            yield from hot.read()
            yield env.timeout(500.0)
        host.mem.flush()   # defeat the cache: show the *placement* win
        start = env.now
        yield from hot.read()
        after["latency"] = env.now - start
        after["tier"] = hot.tier

    proc = env.process(workload())
    env.run(until=1_000_000_000, until_event=proc)
    print("a hot object under the active heap:")
    print(f"  first access : {before['latency']:8.1f} ns "
          f"({before['tier']})")
    print(f"  after warmup : {after['latency']:8.1f} ns "
          f"({after['tier']}, {runtime.promotions} promotion(s))")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Time the kernel's steady-state stepping and print its counters."""
    env = Environment()

    def looper(steps: int):
        timeout = env.timeout
        for _ in range(steps):
            yield timeout(1.0)

    for _ in range(args.procs):
        env.process(looper(args.steps))
    env.run()
    stats = env.stats
    print(f"{'counter':<20} {'value':>16}")
    for key, value in stats.items():
        if isinstance(value, float):
            print(f"{key:<20} {value:>16,.1f}")
        else:
            print(f"{key:<20} {value:>16,}")
    return 0


def _run_scenario_checked(args: argparse.Namespace):
    # Deferred import: scenario running pulls in the whole fabric
    # stack, which `repro info` users should not pay for.
    from .telemetry.scenarios import run_scenario
    try:
        return run_scenario(args.scenario, interval_ns=args.interval)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario with telemetry on and export the Perfetto trace."""
    result = _run_scenario_checked(args)
    if result is None:
        return 2
    from .telemetry import validate_chrome_trace
    payload = result.chrome_trace()
    count = validate_chrome_trace(payload)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        json.dump(payload, handle)
    print(f"trace[{result.name}]: {count} events -> {out}")
    print(f"summary: {json.dumps(result.summary)}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a scenario with telemetry on and print the metric snapshot."""
    result = _run_scenario_checked(args)
    if result is None:
        return 2
    snapshot = result.metrics_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    print(f"metrics[{result.name}]: {snapshot['count']} series")
    metrics = snapshot["metrics"]
    print(f"{'metric':<44} {'kind':<10} {'value':>14}")
    for name in sorted(metrics):
        entry = metrics[name]
        value = entry.get("value", entry.get("mean"))
        shown = f"{value:,.1f}" if isinstance(value, float) else str(value)
        print(f"{name:<44} {entry['kind']:<10} {shown:>14}")
    print(f"summary: {json.dumps(result.summary)}")
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    """Causal 'why is it slow': critical paths + latency attribution."""
    from .telemetry.attribution import validate_attribution
    from .telemetry.scenarios import run_scenario
    try:
        result = run_scenario(args.scenario, interval_ns=args.interval,
                              causal=True, causal_sample=args.sample)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = result.attribution_report(max_transactions=args.limit)
    validate_attribution(report)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    trace = report["trace"]
    print(f"why[{report['scenario']}]: {trace['analyzed']} of "
          f"{trace['finished']} transactions analyzed "
          f"(sample 1/{trace['sample']}, {trace['roots_seen']} roots)")
    if trace["saturated"]:
        print("  note: flight recorder saturated; oldest events evicted")
    print(f"\n{'category':<16} {'total ns':>14} {'share':>8}   per-txn p95")
    attribution = report["attribution"]
    for category, entry in sorted(attribution.items(),
                                  key=lambda kv: -kv[1]["ns"]):
        p95 = (entry.get("per_txn") or {}).get("p95")
        tail = f"{p95:>12,.1f}" if p95 is not None else f"{'-':>12}"
        print(f"{category:<16} {entry['ns']:>14,.1f} "
              f"{entry['share']:>7.1%} {tail}")
    print(f"\n{'route':<24} {'txns':>6} {'p50 ns':>12} {'p95 ns':>12}"
          f"   dominant")
    for name, route in sorted(report["routes"].items()):
        latency = route.get("latency_ns") or {}
        dominant = max(route["attribution"].items(),
                       key=lambda kv: kv[1]["ns"])
        print(f"{name:<24} {route['transactions']:>6} "
              f"{latency.get('p50', 0.0):>12,.1f} "
              f"{latency.get('p95', 0.0):>12,.1f}   "
              f"{dominant[0]} ({dominant[1]['share']:.1%})")
    transactions = report["transactions"]
    if args.txn is not None:
        if not 0 <= args.txn < len(transactions):
            print(f"error: --txn must be in [0, {len(transactions)}), "
                  f"got {args.txn}", file=sys.stderr)
            return 2
        txn = transactions[args.txn]
        print(f"\ntxn {args.txn}: {txn['kind']} via {txn['route']} "
              f"[{txn['begin_ns']:,.1f} .. {txn['end_ns']:,.1f}] "
              f"{txn['duration_ns']:,.1f} ns")
        print(f"{'t0':>14} {'ns':>12} {'category':<16} site")
        for segment in txn["critical_path"]:
            print(f"{segment['t0']:>14,.1f} {segment['ns']:>12,.1f} "
                  f"{segment['category']:<16} {segment['site']}")
    print(f"\nsummary: {json.dumps(result.summary)}")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Streaming health: windowed series, SLO burn rates, alerts."""
    from .telemetry.dashboard import render_dashboard
    from .telemetry.health import (HealthError, SloSpec, run_health,
                                   validate_health_report)
    try:
        spec = SloSpec.load(args.slo) if args.slo else None
        feedback = None
        if args.feedback:
            from .control import FeedbackPolicy, default_feedback_policy
            if args.feedback == "default":
                feedback = FeedbackPolicy(
                    default_feedback_policy(args.scenario),
                    source="default")
            else:
                feedback = FeedbackPolicy.load(args.feedback)
        result, report = run_health(args.scenario, policy=args.policy,
                                    window_ns=args.window,
                                    interval_ns=args.interval,
                                    spec=spec,
                                    causal_sample=args.sample,
                                    feedback=feedback)
        validate_health_report(report)
    except (HealthError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.html:
        Path(args.html).write_text(render_dashboard(report))
        print(f"health: wrote dashboard {args.html}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    windows = report["windows"]
    print(f"health[{report['scenario']}]: policy {report['policy']}, "
          f"{len(windows)} windows of {report['window_ns']:,.0f} ns, "
          f"{report['trace']['analyzed']} transactions attributed")
    for slo in report["slos"]:
        burns = [b for b in slo["burn"] if b is not None]
        peak = f"{max(burns):,.2f}x" if burns else "no data"
        print(f"\nslo {slo['name']} (target {slo['target']:.0%}, "
              f"budget {slo['budget']:.0%}): peak burn {peak}")
        for alert in slo["alerts"]:
            if not alert["episodes"]:
                print(f"  alert {alert['rule']} "
                      f"(>= {alert['burn_rate']:g}x): quiet")
            for episode in alert["episodes"]:
                cleared = episode["cleared_at"]
                tail = (f"cleared at {cleared:,.1f} ns"
                        if cleared is not None else "still firing")
                print(f"  alert {alert['rule']} "
                      f"(>= {alert['burn_rate']:g}x): FIRED at "
                      f"{episode['fired_at']:,.1f} ns, {tail}")
    for rule in report["anomalies"]:
        if rule["points"]:
            at = ", ".join(f"{p['t']:,.1f}" for p in rule["points"])
            print(f"\nanomaly {rule['name']}: {len(rule['points'])} "
                  f"point(s) at {at} ns")
        else:
            print(f"\nanomaly {rule['name']}: none")
    control = report.get("control")
    if control is not None:
        actuators = ", ".join(a["actuator"]
                              for a in control["actuators"]) or "(none)"
        print(f"\ncontrol: {len(control['actions'])} action(s), "
              f"actuators: {actuators}")
        for action in control["actions"]:
            print(f"  {action['t']:>10,.1f} ns  rule "
                  f"{action['rule']}: {action['actuator']} <- "
                  f"{json.dumps(action['set'], sort_keys=True)} "
                  f"(observed {action['observed']:g})")
    print(f"\nsummary: {json.dumps(result.summary)}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Diff two recorded payloads; exit 1 on regressions, 2 on bad input."""
    from .telemetry.compare import (ComparisonError, compare_payloads,
                                    load_payload)
    try:
        baseline = load_payload(Path(args.baseline))
        candidate = load_payload(Path(args.candidate))
        regressions, notes = compare_payloads(baseline, candidate,
                                              threshold=args.threshold)
    except ComparisonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"note: {note}")
    for regression in regressions:
        print(f"REGRESSION: {regression}")
    if regressions:
        print(f"compare: {len(regressions)} regression(s) "
              f"(threshold {args.threshold:.0%})")
        return 1
    print(f"compare: no regressions (threshold {args.threshold:.0%})")
    return 0


def _cmd_check_explain(code: str) -> int:
    """Print one rule's rationale and example fix (--explain)."""
    from .analysis.lint import all_checks
    from .analysis.program.checks import all_program_checks
    registry = {check.code: check
                for check in list(all_checks()) + all_program_checks()}
    check = registry.get(code.upper())
    if check is None:
        print(f"error: unknown rule {code!r}; registered: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    print(f"{check.code} [{check.slug}]")
    print(f"  {check.summary}")
    print()
    print("why:")
    print(f"  {check.rationale}")
    print()
    print("example fix:")
    for line in check.example_fix.splitlines():
        print(f"  {line}")
    return 0


def _cmd_check_program(args: argparse.Namespace) -> int:
    """The whole-program head of `repro check` (--program)."""
    from .analysis.program import run_program, violations_to_sarif
    from .analysis.program.baseline import (BaselineError,
                                            load_baseline,
                                            split_by_baseline)
    root = Path(args.paths[0]) if args.paths else None
    violations = run_program(root)
    baselined = []
    stale = []
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations, baselined = split_by_baseline(violations, baseline)
        stale = baseline.stale_entries(violations + baselined)
    if args.sarif:
        print(json.dumps(violations_to_sarif(violations, baselined),
                         indent=2))
    elif args.json:
        payload = {
            "schema": 1,
            "tool": "fcc-check-program",
            "count": len(violations),
            "violations": [v.to_dict() for v in violations],
            "baselined": [v.to_dict() for v in baselined],
            "stale_baseline": stale,
        }
        print(json.dumps(payload, indent=2))
    else:
        for violation in violations:
            print(violation.format())
        for violation in baselined:
            print(f"warn (baselined): {violation.format()}")
        for entry in stale:
            print(f"note: stale baseline entry {entry['code']} "
                  f"{entry['path']} (no longer reported; remove it)")
        if violations:
            print(f"program: {len(violations)} new violation(s)"
                  + (f", {len(baselined)} baselined" if baselined
                     else ""))
        else:
            print("program: clean"
                  + (f" ({len(baselined)} baselined warning(s))"
                     if baselined else ""))
    return 1 if violations else 0


def cmd_check(args: argparse.Namespace) -> int:
    """fcc-check: static lint and/or sanitized experiment replay."""
    # Deferred import: the analysis package is tooling, not something
    # `repro info` users should pay to load.
    from . import analysis

    if args.explain:
        return _cmd_check_explain(args.explain)
    if args.program:
        return _cmd_check_program(args)
    if args.sarif:
        print("error: --sarif requires --program", file=sys.stderr)
        return 2
    run_lint = args.lint or not args.sanitize   # default head is lint
    status = 0
    if run_lint:
        paths = [Path(p) for p in args.paths] or None
        violations = analysis.run_lint(paths)
        if args.json:
            print(json.dumps(analysis.violations_to_json(violations),
                             indent=2))
        elif violations:
            for violation in violations:
                print(violation.format())
            print(f"lint: {len(violations)} violation(s)")
        else:
            print("lint: clean")
        if violations:
            status = 1
    for name in args.sanitize:
        from .analysis.runners import run_sanitized
        try:
            sanitizer, summary = run_sanitized(name)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            payload = sanitizer.to_json()
            payload["summary"] = summary
            print(json.dumps(payload, indent=2))
        else:
            print(f"sanitize[{name}]: {sanitizer.report()}")
        if not sanitizer.clean:
            status = 1
    return status


def cmd_topo(args: argparse.Namespace) -> int:
    """Inspect the declarative topology layer: list/show/validate."""
    from .topo import (DescriptorError, GENERATORS, SHAPES_DIR,
                       compile_topology, load_descriptor, load_shape,
                       resolve_topology, shape_names,
                       verify_reachability)
    if args.action == "list":
        shapes = []
        for name in shape_names():
            descriptor = load_shape(name)
            shapes.append({"name": name,
                           "description": descriptor.description,
                           **descriptor.stats()})
        generators = [{"name": name,
                       "description": generator.description,
                       "params": {key: param.default
                                  for key, param in
                                  sorted(generator.params.items())}}
                      for name, generator in sorted(GENERATORS.items())]
        if args.json:
            print(json.dumps({"shapes": shapes,
                              "generators": generators}, indent=2))
            return 0
        print("committed shapes (src/repro/topo/shapes/):")
        for shape in shapes:
            print(f"  {shape['name']:<24} {shape['pods']} pod(s), "
                  f"{shape['switches']} sw, {shape['endpoints']} ep — "
                  f"{shape['description']}")
        print("generators (call as 'name:key=val,...'):")
        for generator in generators:
            defaults = ", ".join(f"{key}={value}" for key, value
                                 in generator["params"].items())
            print(f"  {generator['name']:<24} {generator['description']}")
            print(f"  {'':<24} defaults: {defaults}")
        return 0
    if args.action == "show":
        try:
            descriptor = resolve_topology(args.topology)
            env = Environment()
            fabric = compile_topology(descriptor, env)
            checks = verify_reachability(fabric.topology)
        except DescriptorError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            payload = descriptor.to_dict()
            payload["compiled"] = {
                "routes_installed": fabric.routes_installed, **checks}
            print(json.dumps(payload, indent=2))
            return 0
        print(fabric.describe())
        print(f"  reachability: {checks['pairs']} endpoint pair(s), "
              f"max {checks['max_hops']} switch hop(s)")
        return 0
    # validate: committed shapes by default, explicit files otherwise.
    paths = [Path(p) for p in args.paths] \
        or sorted(SHAPES_DIR.glob("*.json"))
    status = 0
    for path in paths:
        try:
            descriptor = load_descriptor(path)
            env = Environment()
            fabric = compile_topology(descriptor, env)
            checks = verify_reachability(fabric.topology)
        except (DescriptorError, ValueError) as exc:
            print(f"FAIL {path}: {exc}")
            status = 1
            continue
        print(f"ok   {path}: {descriptor.name} "
              f"({fabric.routes_installed} routes, "
              f"{checks['pairs']} pairs reachable)")
    return status


def cmd_list(args: argparse.Namespace) -> int:
    """Print every registered experiment/scenario with a description."""
    from .experiments import registry
    rows = registry.describe()
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(row["name"]) for row in rows)
    print(f"{'name':<{width}}  {'kind':<9} description")
    print("-" * (width + 60))
    for row in rows:
        print(f"{row['name']:<{width}}  {row['kind']:<9} "
              f"{row['description']}")
    print(f"\n{len(rows)} registered; run one with `repro bench <name>` "
          f"(scenarios also serve `repro trace/metrics/why`)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run one registered experiment; print its table (or --json)."""
    from .experiments import (ExperimentError, ExperimentSpec, get,
                              render, run_experiment)
    try:
        defn = get(args.experiment)
        overrides = {}
        for item in args.set:
            key, eq, text = item.partition("=")
            if not eq:
                raise ExperimentError(
                    f"--set expects name=value, got {item!r}")
            if key not in defn.params:
                known = ", ".join(sorted(defn.params)) or "(none)"
                raise ExperimentError(
                    f"experiment {defn.name!r} has no parameter "
                    f"{key!r}; known: {known}")
            overrides[key] = defn.params[key].parse(key, text)
        spec = ExperimentSpec(experiment=args.experiment,
                              params=overrides, seed=args.seed)
        if args.profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = run_experiment(spec)
            finally:
                profiler.disable()
                profiler.dump_stats(args.profile)
        else:
            result = run_experiment(spec)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    render(args.experiment, summary=result["outputs"]["summary"],
           **overrides)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or resume) a declarative sweep into ``--out``."""
    from .experiments import (ExperimentError, load_sweep_spec,
                              run_sweep)
    try:
        sweep = load_sweep_spec(args.spec)
        run_sweep(sweep, args.out, workers=args.workers, progress=print)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UniFabric: Fabric-Centric Computing reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="fabric catalog + a default rack")
    sub.add_parser("table2", help="quick Table 2 calibration check")
    sub.add_parser("demo", help="one-minute heap/migration tour")
    perf = sub.add_parser(
        "perf", help="kernel microbenchmark + Environment.stats counters")
    perf.add_argument("--procs", type=int, default=200,
                      help="concurrent ticking processes (default 200)")
    perf.add_argument("--steps", type=int, default=1000,
                      help="timeout steps per process (default 1000)")
    check = sub.add_parser(
        "check", help="fcc-check: static lint + runtime sanitizers")
    check.add_argument("--lint", action="store_true",
                       help="run the static lint (the default when no "
                            "--sanitize is given)")
    check.add_argument("--sanitize", action="append", default=[],
                       metavar="EXPERIMENT",
                       help="replay a canonical experiment under the "
                            "runtime sanitizers (t2, credits, arbiter); "
                            "repeatable")
    check.add_argument("--json", action="store_true",
                       help="machine-readable output (schema-stable)")
    check.add_argument("--program", action="store_true",
                       help="run the whole-program analysis engine "
                            "(FCC101-103) instead of the per-file lint")
    check.add_argument("--sarif", action="store_true",
                       help="with --program: emit SARIF 2.1.0 on stdout")
    check.add_argument("--baseline", metavar="FILE",
                       help="with --program: suppression file "
                            "(fcc-baseline.json); new findings fail, "
                            "baselined ones warn")
    check.add_argument("--explain", metavar="FCCnnn",
                       help="print a rule's rationale and example fix, "
                            "then exit")
    check.add_argument("paths", nargs="*",
                       help="files/directories to lint (default: the "
                            "repro package + tests/ + benchmarks/); "
                            "with --program: the package root")
    scenario_help = ("canonical scenario: t2 (hierarchy walk), "
                     "starvation (§3 CFC quiet-flow stall), "
                     "interleave (64B reads vs 16KB writes)")
    trace = sub.add_parser(
        "trace", help="run a scenario, export a Perfetto-loadable "
                      "Chrome trace-event file")
    trace.add_argument("scenario", help=scenario_help)
    trace.add_argument("--out", default="trace.json",
                       help="output file (default trace.json)")
    trace.add_argument("--interval", type=float, default=1_000.0,
                       help="TimelineSampler cadence in sim ns "
                            "(default 1000)")
    metrics = sub.add_parser(
        "metrics", help="run a scenario, print its metric registry")
    metrics.add_argument("scenario", help=scenario_help)
    metrics.add_argument("--interval", type=float, default=1_000.0,
                         help="TimelineSampler cadence in sim ns "
                              "(default 1000)")
    metrics.add_argument("--json", action="store_true",
                         help="machine-readable snapshot "
                              "(schema-stable)")
    why = sub.add_parser(
        "why", help="causal critical-path latency attribution")
    why.add_argument("--scenario", required=True, help=scenario_help)
    why.add_argument("--txn", type=int, default=None, metavar="N",
                     help="also print transaction N's critical-path "
                          "waterfall")
    why.add_argument("--sample", type=int, default=1, metavar="N",
                     help="trace one of every N transaction roots "
                          "(default 1: every transaction)")
    why.add_argument("--limit", type=int, default=32,
                     help="max transactions embedded in the report "
                          "(default 32)")
    why.add_argument("--interval", type=float, default=1_000.0,
                     help="TimelineSampler cadence in sim ns "
                          "(default 1000)")
    why.add_argument("--json", action="store_true",
                     help="print the full attribution document "
                          "(schema-stable)")
    health = sub.add_parser(
        "health", help="streaming windowed telemetry, SLO burn-rate "
                       "alerts, anomaly detection, optional "
                       "closed-loop feedback",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes:\n"
               "  0  report built and validated (alerts firing is "
               "data, not failure)\n"
               "  2  bad input (unknown scenario/policy, malformed "
               "--slo or --feedback spec,\n"
               "     window/interval mismatch)")
    health.add_argument("--scenario", required=True, help=scenario_help)
    health.add_argument("--policy", default="rampup",
                        choices=["rampup", "fair"],
                        help="starvation credit policy: rampup (the "
                             "pathological default) or fair "
                             "(StaticEqualPolicy control); other "
                             "scenarios accept only rampup")
    health.add_argument("--window", type=float, default=2_000.0,
                        help="tumbling window width in sim ns; must "
                             "be a multiple of --interval "
                             "(default 2000)")
    health.add_argument("--interval", type=float, default=1_000.0,
                        help="TimelineSampler cadence in sim ns "
                             "(default 1000)")
    health.add_argument("--sample", type=int, default=1, metavar="N",
                        help="trace one of every N transaction roots "
                             "(default 1: every transaction)")
    health.add_argument("--slo", metavar="SPEC.json", default=None,
                        help="SLO spec file; default: the scenario's "
                             "built-in spec")
    health.add_argument("--feedback", metavar="POLICY.json",
                        default=None,
                        help="close the loop: run a feedback policy "
                             "whose rules actuate credits at window "
                             "edges; 'default' uses the scenario's "
                             "built-in rescue policy")
    health.add_argument("--html", metavar="OUT.html", default=None,
                        help="also write a self-contained static HTML "
                             "dashboard")
    health.add_argument("--json", action="store_true",
                        help="print the full health report "
                             "(schema-stable)")
    compare = sub.add_parser(
        "compare", help="diff two recorded payloads (BENCH or why "
                        "JSON); non-zero exit on regression",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes:\n"
               "  0  no metric regressed beyond the threshold\n"
               "  1  at least one regression (each printed as "
               "REGRESSION: ...)\n"
               "  2  bad input (unreadable file, schema mismatch, "
               "incomparable payloads)")
    compare.add_argument("baseline", help="baseline JSON payload")
    compare.add_argument("candidate", help="candidate JSON payload")
    compare.add_argument("--threshold", type=float, default=0.10,
                         help="relative regression threshold "
                              "(default 0.10)")
    topo = sub.add_parser(
        "topo", help="declarative topology layer: list shapes and "
                     "generators, show/compile one, validate files")
    topo_sub = topo.add_subparsers(dest="action", required=True)
    topo_list = topo_sub.add_parser(
        "list", help="committed shapes + generators")
    topo_list.add_argument("--json", action="store_true",
                           help="machine-readable inventory")
    topo_show = topo_sub.add_parser(
        "show", help="resolve, compile and print one topology")
    topo_show.add_argument("topology",
                           help="committed shape, generator name, or "
                                "generator call like "
                                "'fat_tree:pods=2,leaves=3'")
    topo_show.add_argument("--json", action="store_true",
                           help="print the descriptor document plus "
                                "compile stats")
    topo_validate = topo_sub.add_parser(
        "validate", help="validate descriptor JSON files (default: "
                         "every committed shape); compiles each and "
                         "checks full reachability")
    topo_validate.add_argument("paths", nargs="*",
                               help="descriptor files (default: "
                                    "src/repro/topo/shapes/*.json)")
    list_parser = sub.add_parser(
        "list", help="registered experiments and telemetry scenarios")
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable catalog "
                                  "(schema-stable)")
    bench = sub.add_parser(
        "bench", help="run a registered experiment, print its table")
    bench.add_argument("experiment",
                       help="experiment name (see `repro list`)")
    bench.add_argument("--set", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="override a typed parameter; repeatable "
                            "(list values are JSON, e.g. "
                            "--set sizes='[64, 4096]')")
    bench.add_argument("--seed", type=int, default=0,
                       help="experiment seed (default 0)")
    bench.add_argument("--json", action="store_true",
                       help="print the schema-stable result document "
                            "instead of the table")
    bench.add_argument("--profile", metavar="OUT.prof", default=None,
                       help="run under cProfile and write pstats data "
                            "to OUT.prof (inspect with python -m "
                            "pstats)")
    sweep = sub.add_parser(
        "sweep", help="run a parameter sweep from a JSON spec into a "
                      "resumable output directory")
    sweep.add_argument("spec", help="sweep spec JSON: {experiment, "
                                    "sweep: {param: [values...]}, "
                                    "params?, seed?, outputs?}")
    sweep.add_argument("--out", required=True,
                       help="output directory; re-running resumes, a "
                            "different sweep's directory is refused")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1; any count "
                            "yields a byte-identical merged report)")
    args = parser.parse_args(argv)
    handler = {"info": cmd_info, "table2": cmd_table2,
               "demo": cmd_demo, "perf": cmd_perf,
               "check": cmd_check, "trace": cmd_trace,
               "metrics": cmd_metrics, "why": cmd_why,
               "health": cmd_health,
               "compare": cmd_compare, "list": cmd_list,
               "bench": cmd_bench, "sweep": cmd_sweep,
               "topo": cmd_topo}[args.command]
    return handler(args)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
