"""Lightweight event tracing and statistics collection.

The tracer is deliberately simple: components call
``tracer.record(kind, **fields)`` and analyses filter the resulting
list.  :class:`StatSeries` accumulates scalar samples with O(1) memory
for the common mean/percentile queries benchmarks need.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Tracer", "TraceRecord", "StatSeries"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects :class:`TraceRecord` instances; can be disabled for speed.

    .. deprecated:: the ad-hoc record list predates
       :mod:`repro.telemetry`, which supersedes it (metrics registry,
       span tracing, Perfetto export).  The API keeps working: pass
       ``telemetry=`` to route every record through the new layer —
       each record becomes an instant event on its kind's track plus a
       ``trace.<kind>`` counter in the registry — and ``capacity=`` to
       bound the legacy list with a ring buffer instead of growing
       without limit for the life of the run.
    """

    def __init__(self, enabled: bool = True,
                 capacity: Optional[int] = None,
                 telemetry: Any = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.records: Any = ([] if capacity is None
                             else deque(maxlen=capacity))
        self._telemetry = telemetry

    def record(self, time: float, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(time, kind, fields))
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.instant(kind, ts=time, **fields)
            telemetry.registry.counter("trace." + kind).inc(time=time)

    def filter(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.filter(kind))

    def clear(self) -> None:
        self.records.clear()


class StatSeries:
    """Scalar sample accumulator with mean / percentile / rate queries.

    Keeps raw samples (simulations here are small enough) so exact
    percentiles are available; also tracks first/last sample times for
    throughput computation.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[float] = []
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def add(self, value: float, time: Optional[float] = None) -> None:
        self.samples.append(value)
        if time is not None:
            if self.first_time is None:
                self.first_time = time
            self.last_time = time

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def percentile(self, p: float) -> float:
        """Exact percentile by nearest-rank (p in [0, 100])."""
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def rate_per_ns(self) -> float:
        """Completions per nanosecond over the sampled interval."""
        if self.first_time is None or self.last_time is None:
            raise ValueError("series has no timestamps")
        span = self.last_time - self.first_time
        if span <= 0:
            return float("inf")
        return (len(self.samples) - 1) / span if len(self.samples) > 1 else 0.0

    def mops(self) -> float:
        """Million operations per second (time unit: nanoseconds)."""
        return self.rate_per_ns() * 1e3
