"""Shared-resource primitives built on the event kernel.

These are the queueing building blocks the fabric models are made of:

* :class:`Resource` — a counted resource (e.g. a switch crossbar slot)
  with FIFO waiters.
* :class:`PriorityResource` — same, but waiters carry a priority.
* :class:`Store` — an unbounded or bounded FIFO of items (e.g. a flit
  buffer at a switch port).
* :class:`PriorityStore` — items leave lowest-priority-value first.
* :class:`Container` — a continuous quantity (e.g. a credit pool).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .engine import Environment, Event

__all__ = [
    "Resource",
    "PriorityResource",
    "Store",
    "PriorityStore",
    "Container",
]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so model code reads::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self.key = (priority, resource._seq)
        resource._queue_request(self)
        resource._trigger()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """A counted resource with ``capacity`` concurrent holders."""

    __slots__ = ("env", "capacity", "users", "_waiters", "_seq")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiters: List[Request] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Give the slot back (no-op if the request was never granted)."""
        try:
            self.users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        san = self.env._sanitizer
        if san is not None:
            san.on_write(self, "release")
        self._trigger()

    # -- internals -------------------------------------------------------

    def _queue_request(self, request: Request) -> None:
        self._waiters.append(request)

    def _next_waiter(self) -> Optional[Request]:
        return self._waiters.pop(0) if self._waiters else None

    def _cancel(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def _trigger(self) -> None:
        while len(self.users) < self.capacity:
            waiter = self._next_waiter()
            if waiter is None:
                return
            if waiter.triggered:
                continue
            self.users.append(waiter)
            waiter.succeed()


class PriorityResource(Resource):
    """A resource whose waiters are served lowest priority value first."""

    __slots__ = ()

    def _queue_request(self, request: Request) -> None:
        heapq.heappush(self._heap(), (request.key, request))

    def _heap(self) -> list:
        # self._waiters doubles as the heap storage.
        return self._waiters

    def _next_waiter(self) -> Optional[Request]:
        while self._waiters:
            _, request = heapq.heappop(self._waiters)
            if not request.triggered:
                return request
        return None

    def _cancel(self, request: Request) -> None:
        # Lazy deletion: mark by triggering with failure would break the
        # waiter protocol, so filter and re-heapify instead (rare path).
        remaining = [(k, r) for (k, r) in self._waiters if r is not request]
        if len(remaining) != len(self._waiters):
            self._waiters[:] = remaining
            heapq.heapify(self._waiters)


class StorePut(Event):
    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self.store = store
        store._put_waiters.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ("filter", "store")

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        self.store = store
        store._get_waiters.append(self)
        store._trigger()


class Store:
    """A FIFO buffer of items with optional bounded capacity.

    ``put`` blocks when the store is full; ``get`` blocks when empty.
    ``get`` may take a filter predicate to take the first matching item
    (used e.g. to pull a completion for a specific transaction tag).
    """

    __slots__ = ("env", "capacity", "items", "_put_waiters", "_get_waiters")

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    # -- internals -------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._insert(event.item)
            san = self.env._sanitizer
            if san is not None:
                san.on_write(self, "put")
            event.succeed()
            return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _take(self, filter: Optional[Callable[[Any], bool]]) -> Any:
        if filter is None:
            if self.items:
                return self.items.pop(0)
            return _NOTHING
        for i, item in enumerate(self.items):
            if filter(item):
                return self.items.pop(i)
        return _NOTHING

    def _do_get(self, event: StoreGet) -> bool:
        item = self._take(event.filter)
        if item is not _NOTHING:
            event.succeed(item)
            return True
        return False

    def _trigger(self) -> None:
        # Single pass per round, rebuilding the waiter lists in place
        # (preserves FIFO order) instead of copy + O(n) removes.
        progressed = True
        while progressed:
            progressed = False
            get_waiters = self._get_waiters
            if get_waiters:
                keep = [event for event in get_waiters
                        if not event.triggered and not self._do_get(event)]
                if len(keep) != len(get_waiters):
                    progressed = True
                    get_waiters[:] = keep
            put_waiters = self._put_waiters
            if put_waiters:
                # Puts are unconditional appends, so the first one that
                # finds the store full means every later one would too:
                # serve the longest possible prefix and stop, instead of
                # probing all N blocked writers on every trigger.
                served = 0
                for event in put_waiters:
                    if not event.triggered and not self._do_put(event):
                        break
                    served += 1
                if served:
                    progressed = True
                    del put_waiters[:served]


_NOTHING = object()


class PriorityStore(Store):
    """A store whose items leave in ascending sort order.

    Items must be comparable; use tuples ``(priority, seq, payload)`` to
    get deterministic FIFO-within-priority behaviour.
    """

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _take(self, filter: Optional[Callable[[Any], bool]]) -> Any:
        if filter is None:
            if self.items:
                return heapq.heappop(self.items)
            return _NOTHING
        for i, item in enumerate(self.items):
            if filter(item):
                self.items.pop(i)
                heapq.heapify(self.items)
                return item
        return _NOTHING


class ContainerPut(Event):
    __slots__ = ("amount", "container")

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        self.container = container
        container._put_waiters.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount", "container")

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        self.container = container
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """A continuous quantity with blocking put/get (credit pools, bytes)."""

    __slots__ = ("env", "capacity", "level", "_put_waiters", "_get_waiters")

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _serve_gets(self) -> bool:
        """Serve get waiters head-first; stop at the first blocked one.

        FIFO: a blocked head must not be starved by later, smaller gets,
        so everything from the first blocked waiter on is kept as-is.
        """
        waiters = self._get_waiters
        progressed = False
        for i, event in enumerate(waiters):
            if event.triggered:
                continue
            if event.amount <= self.level:
                self.level -= event.amount
                event.succeed()
                progressed = True
            else:
                waiters[:] = waiters[i:]
                return progressed
        waiters.clear()
        return progressed

    def _serve_puts(self) -> bool:
        waiters = self._put_waiters
        progressed = False
        for i, event in enumerate(waiters):
            if event.triggered:
                continue
            if self.level + event.amount <= self.capacity:
                self.level += event.amount
                event.succeed()
                progressed = True
            else:
                waiters[:] = waiters[i:]
                return progressed
        waiters.clear()
        return progressed

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._get_waiters and self._serve_gets():
                progressed = True
            if self._put_waiters and self._serve_puts():
                progressed = True
