"""Deterministic random-number helpers for reproducible simulations.

Every stochastic component takes an explicit :class:`SimRng` (never the
global ``random`` module), so a run is fully determined by its seed and
independent subsystems can be given independent streams via
:meth:`SimRng.fork`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

T = TypeVar("T")

__all__ = ["SimRng"]


class SimRng:
    """A seeded random stream with domain-specific helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, tag: str) -> "SimRng":
        """Derive an independent, reproducible sub-stream.

        Forking by tag (rather than drawing from the parent) keeps the
        child stream stable when unrelated draws are added to the
        parent.
        """
        child_seed = hash((self.seed, tag)) & 0x7FFFFFFFFFFFFFFF
        return SimRng(child_seed)

    # -- thin wrappers ----------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return self._random.expovariate(rate)

    def random_block(self, n: int):
        """``n`` floats identical to ``n`` successive :meth:`random` calls.

        CPython's ``random.Random`` and numpy's legacy ``RandomState``
        share both the MT19937 generator and the 53-bit double recipe,
        so the block is produced vectorized by transplanting the
        Mersenne state into numpy, drawing, and transplanting it back —
        the stream advances exactly as ``n`` scalar calls would.  This
        is what lets trace generation vectorize without perturbing any
        seeded run.  Returns an ndarray (a plain list without numpy).
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if _np is None:
            scalar = self._random.random
            return [scalar() for _ in range(n)]
        version, internal, gauss = self._random.getstate()
        state = _np.random.RandomState()
        state.set_state(("MT19937", internal[:-1], internal[-1]))
        block = state.random_sample(n)
        _, keys, pos, _, _ = state.get_state()
        self._random.setstate(
            (version, tuple(map(int, keys)) + (pos,), gauss))
        return block

    def numpy_generator(self, tag: Optional[str] = None):
        """A numpy ``Generator`` seeded from this stream.

        The blessed way for numerics-heavy code (the MIMO DSP) to get
        vectorized randomness without touching the ``numpy.random``
        module state: the generator is constructed from this stream's
        seed (or, with ``tag``, from the :meth:`fork` sub-seed), so it
        is exactly as reproducible as the scalar stream and stable
        against unrelated draws elsewhere.  Equivalent to
        ``numpy.random.default_rng(seed)`` for the same seed.
        """
        if _np is None:  # pragma: no cover - numpy is a baked-in dependency
            raise RuntimeError("numpy is not available")
        seed = self.seed if tag is None else self.fork(tag).seed
        return _np.random.default_rng(seed)

    # -- domain helpers ---------------------------------------------------

    def zipf_index(self, n: int, alpha: float = 0.99) -> int:
        """Draw an index in [0, n) with Zipfian popularity skew.

        Uses the standard rejection-free inverse-CDF approximation of
        Gray et al., adequate for workload generation.
        """
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        if n == 1:
            return 0
        # Approximate inverse CDF: x = n * u^(1/(1-alpha)) clipped.
        if alpha == 1.0:
            alpha = 0.9999
        u = self._random.random()
        # Normalized power-law inverse; clamp to valid range.
        x = int(n * (u ** (1.0 / (1.0 - alpha)))) if alpha < 1.0 else 0
        if x >= n:
            x = n - 1
        return x

    def bernoulli(self, p: float) -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return self._random.random() < p

    def pareto_bounded(self, lo: float, hi: float, shape: float = 1.5) -> float:
        """Bounded Pareto draw, for heavy-tailed message sizes."""
        if not 0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got {lo}, {hi}")
        u = self._random.random()
        la, ha = lo ** shape, hi ** shape
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)
