"""A small deterministic discrete-event simulation kernel.

The kernel follows the classic process-interaction style: model code is
written as generator functions that ``yield`` events; the environment
resumes a process when the event it waits on fires.  The design mirrors
SimPy's core (events, processes, an ordered event queue) but is written
from scratch so the repository has no external simulation dependency
and so that scheduling is fully deterministic: ties in time are broken
by priority and then by a monotonically increasing sequence number.

Time is a float in nanoseconds by convention (see ``repro.params``),
although the kernel itself is unit-agnostic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]

# Scheduling priorities: URGENT fires before NORMAL at the same time.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, running a dead env...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process sees this exception raised at its current
    ``yield`` statement and may catch it to implement preemption,
    timeout-and-retry, or failure handling.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence that processes can wait for.

    An event starts *pending*, becomes *triggered* when given a value
    (or an exception) and scheduled, and *processed* once its callbacks
    have run.  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._scheduled = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running process; also an event that fires when the process ends.

    Created via :meth:`Environment.process`.  The wrapped generator
    yields events; when a yielded event fires, the generator is resumed
    with the event's value (or the event's exception is thrown in).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed and takes precedence.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        # Detach from the old target: we are being resumed by `event`.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            if not self.triggered:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL)
            return
        except BaseException as exc:
            self.env._active_process = None
            if not self.triggered:
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}")
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                failed_ok, failed_value = True, stop.value
            except BaseException as exc:
                failed_ok, failed_value = False, exc
            else:
                # The generator swallowed the error and yielded again;
                # refuse to continue a misbehaving process.
                self._generator.close()
                failed_ok, failed_value = False, error
            if not self.triggered:
                self._ok = failed_ok
                self._value = failed_value
                self.env._schedule(self, NORMAL)
            return
        if next_event.env is not self.env:
            raise SimulationError("event belongs to a different environment")
        if next_event.callbacks is None:
            # Already processed: resume immediately with its stored value.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate, URGENT)
            self._target = immediate
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class _Condition(Event):
    """Base for AllOf / AnyOf composite events.

    An event counts as *fired* once its callbacks have been consumed
    (``callbacks is None``); note that a :class:`Timeout` carries its
    value from creation, so ``triggered`` alone cannot be used here.
    """

    __slots__ = ("events", "_unfired", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        if any(e.env is not env for e in self.events):
            raise SimulationError("events from different environments")
        self._unfired = 0
        self._fired = 0
        failed = None
        for event in self.events:
            if event.callbacks is None:  # already processed
                if not event._ok and failed is None:
                    failed = event._value
                self._fired += 1
            else:
                self._unfired += 1
                event.callbacks.append(self._check)
        if failed is not None:
            self.fail(failed)
        else:
            self._maybe_fire()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._unfired -= 1
        self._fired += 1
        self._maybe_fire()

    def _maybe_fire(self) -> None:
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.callbacks is None}

    def _satisfied(self) -> bool:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired == 0


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired > 0 or not self.events


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        event._processed = True
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error.
            raise event._value

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run until the queue drains, time ``until``, or ``until_event``.

        Returns the value of ``until_event`` if given and it fired.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        stop = until if until is not None else float("inf")
        while self._queue:
            if until_event is not None and until_event.triggered:
                break
            if self._queue[0][0] > stop:
                self._now = stop
                return None
            self.step()
        if until_event is not None:
            if not until_event.triggered:
                raise SimulationError("until_event never fired")
            if not until_event._ok:
                raise until_event._value
            return until_event._value
        if until is not None:
            self._now = max(self._now, stop) if stop != float("inf") else self._now
        return None
