"""A small deterministic discrete-event simulation kernel.

The kernel follows the classic process-interaction style: model code is
written as generator functions that ``yield`` events; the environment
resumes a process when the event it waits on fires.  The design mirrors
SimPy's core (events, processes, an ordered event queue) but is written
from scratch so the repository has no external simulation dependency
and so that scheduling is fully deterministic: ties in time are broken
by priority and then by a monotonically increasing sequence number.

Time is a float in nanoseconds by convention (see ``repro.params``),
although the kernel itself is unit-agnostic.

Fast path
---------

Every experiment in the repository funnels through this module, so the
steady-state step — pop an event, run its single ``Process._resume``
callback, let the process yield the next ``Timeout`` — is aggressively
optimised:

* When a timestamp bucket holds several NORMAL events and no pending
  URGENT work, :meth:`Environment.run` drains the whole
  ``(time, priority)`` run in one *batch*: a snapshot of the bucket is
  dispatched through a tight loop with bound locals, and the ubiquitous
  single-``Process._resume``-waiter shape is inlined (no callback
  frame, cached ``generator.send``).  Batch order is exactly the
  bucket's append order — i.e. seq order — URGENT arrivals are still
  re-checked between events, and every identity-relevant side effect
  (tombstone handling, pooling guards, failure surfacing) is the same
  code path semantics as the scalar loop, so scheduling stays
  bit-identical with batching on or off.  ``Environment(batch=False)``
  (or ``REPRO_BATCH=0``) forces the scalar reference loop; sanitized
  runs always use it.

* ``Timeout`` objects (and the internal ``_Hook`` events used to start
  processes, deliver interrupts and re-fire already-processed events)
  are recycled through per-environment free lists, together with their
  callback lists, so steady-state stepping allocates near-zero objects.
  Recycling is guarded by ``sys.getrefcount``: an event is only pooled
  when the kernel holds the last reference, so model code that keeps a
  processed event around (e.g. to re-yield it later) is always safe.
* Detaching a resume callback from an abandoned wait target is O(1):
  the process remembers the index of its callback and tombstones it
  (sets the slot to ``None``) instead of an O(n) ``list.remove``.
  Callback lists are never compacted before they fire, so indexes stay
  valid and callback order — and therefore scheduling order — is
  exactly what it would have been without the tombstone.
* ``Process._resume`` takes a monomorphic shortcut when the yielded
  event is a pending ``Timeout`` (the overwhelmingly common case),
  skipping the ``isinstance``/cross-environment checks of the general
  path.
* ``Environment.run`` inlines the dispatch loop with bound locals.

None of this changes observable scheduling: pooled events consume the
same sequence numbers as freshly allocated ones, so the
``(time, priority, seq)`` order of a run is bit-identical to the
pre-fast-path kernel.  ``Environment.stats`` exposes kernel counters
(events processed, events/sec of wall-clock, peak queue depth) for the
perf-regression harness in ``benchmarks/run_all.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from os import environ
from sys import getrefcount
# Wall-clock is only read for Environment.stats busy-time counters; it
# never feeds back into scheduling.
from time import perf_counter   # fcc: allow[wall-clock]
from types import MethodType
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "run_proc",
    "total_events_processed",
    "batch_default",
    "set_batch_default",
]

# Scheduling priorities: URGENT fires before NORMAL at the same time.
URGENT = 0
NORMAL = 1

_INF = float("inf")

#: Upper bound on each free list; beyond this, events are left to the GC.
#: The per-environment default; override with Environment(pool_limit=...).
_POOL_LIMIT = 512

#: Process-wide default for Environment(batch=...): batched dispatch is
#: on unless REPRO_BATCH=0/off/false/no (the scalar reference loop).
_BATCH_DEFAULT = environ.get("REPRO_BATCH", "1").strip().lower() \
    not in ("0", "off", "false", "no")


def batch_default() -> bool:
    """The process-wide default for ``Environment(batch=...)``."""
    return _BATCH_DEFAULT


def set_batch_default(enabled: bool) -> None:
    """Set the process-wide batching default (existing envs unaffected)."""
    global _BATCH_DEFAULT
    _BATCH_DEFAULT = bool(enabled)

#: Process-wide count of events dispatched by every Environment, used by
#: the perf harness to attribute events/sec to experiments that build
#: several environments internally.
_total_events = 0


def total_events_processed() -> int:
    """Events dispatched by all environments since interpreter start."""
    return _total_events


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, running a dead env...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process sees this exception raised at its current
    ``yield`` statement and may catch it to implement preemption,
    timeout-and-retry, or failure handling.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence that processes can wait for.

    An event starts *pending*, becomes *triggered* when given a value
    (or an exception) and scheduled, and *processed* once its callbacks
    have run.  Callbacks receive the event itself.  A ``None`` entry in
    ``callbacks`` is a tombstone left by an O(1) detach and is skipped
    when the event fires.

    The first waiter to attach while ``callbacks`` is still empty is
    held in the ``_waiter`` slot instead of the list (saving a
    ``list.append`` on the hot path); it fires before the list, which
    is exactly attach order.
    """

    __slots__ = ("env", "callbacks", "_waiter", "_value", "_ok",
                 "_scheduled", "_processed")

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Optional[Callable[["Event"], None]]]] = []
        self._waiter: Optional[Callable[["Event"], None]] = None
        self._value: Any = Event._PENDING
        self._ok = True
        self._scheduled = False
        self._processed = False
        san = env._sanitizer
        if san is not None:
            san.on_created(self)

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: Module-level alias of the pending sentinel for fast access in hot code.
_PENDING = Event._PENDING


class Timeout(Event):
    """An event that fires after a fixed delay.

    Instances created through :meth:`Environment.timeout` come from a
    free list and return to it once processed (refcount-guarded, see the
    module docstring); direct construction also works and is what the
    pool falls back to.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class _Hook(Event):
    """Internal pooled event carrying a single pre-armed callback.

    Used for the three kernel-internal wakeups that the seed engine
    allocated a fresh ``Event`` (or ``Initialize``) for: starting a new
    process, re-firing an already-processed event for a late yielder,
    and delivering an interrupt.  Never exposed to model code.
    """

    __slots__ = ()


class Process(Event):
    """A running process; also an event that fires when the process ends.

    Created via :meth:`Environment.process`.  The wrapped generator
    yields events; when a yielded event fires, the generator is resumed
    with the event's value (or the event's exception is thrown in).
    """

    __slots__ = ("_generator", "_target", "name", "daemon", "_resume_cb",
                 "_cb_index", "_send", "_throw")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = "", daemon: bool = False) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bound once: every attach/detach reuses the same bound method
        # instead of allocating a fresh one per wait; same for the
        # generator's send/throw, which the dispatch loops call per event.
        self._resume_cb = self._resume
        self._send = generator.send
        self._throw = generator.throw
        self._cb_index = -1
        self.name = name or getattr(generator, "__name__", "process")
        #: Daemon processes are perpetual service loops (port receivers,
        #: link senders, rebalance timers).  Idling forever is their
        #: normal end state, so the sanitizer's drain-time deadlock
        #: report skips them.
        self.daemon = daemon
        env._schedule_hook(self._resume_cb, URGENT, True, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed and takes precedence.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        target = self._target
        if target is not None and target.callbacks is not None:
            self._detach(target)
        self.env._schedule_hook(self._resume_cb, URGENT, False, Interrupt(cause))

    def _detach(self, target: Event) -> None:
        """Detach our resume callback from ``target`` in O(1).

        Clears the waiter slot if we hold it, else tombstones our
        remembered index in the callback list; falls back to a scan if
        the index no longer points at us (e.g. already tombstoned).
        """
        cb = self._resume_cb
        if target._waiter is cb:
            target._waiter = None
            return
        cbs = target.callbacks
        i = self._cb_index
        if 0 <= i < len(cbs) and cbs[i] is cb:
            cbs[i] = None
            return
        try:
            cbs[cbs.index(cb)] = None
        except ValueError:
            pass

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # The process died between this wakeup being scheduled and
            # firing (e.g. a stale interrupt): drop it instead of
            # throwing into an exhausted generator.
            return
        env = self.env
        target = self._target
        if target is not None and target is not event:
            # We are being resumed by `event`; detach from the old target.
            if target.callbacks is not None:
                self._detach(target)
        self._target = None
        env._active_process = self
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                next_event = self._throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            if self._value is _PENDING:
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
            return
        except BaseException as exc:
            env._active_process = None
            if self._value is _PENDING:
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
            return
        env._active_process = None

        if next_event.__class__ is Timeout:
            # Fast path: a pending Timeout from this environment (the
            # common `yield env.timeout(...)` case) — attach directly,
            # skipping the isinstance / cross-env checks.
            cbs = next_event.callbacks
            if cbs is not None:
                if next_event._waiter is None and not cbs:
                    next_event._waiter = self._resume_cb
                else:
                    self._cb_index = len(cbs)
                    cbs.append(self._resume_cb)
                self._target = next_event
                return
        self._wait_slow(next_event)

    def _wait_slow(self, next_event: Any) -> None:
        """General wait path: validation, non-events, processed events."""
        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}")
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                failed_ok, failed_value = True, stop.value
            except BaseException as exc:
                failed_ok, failed_value = False, exc
            else:
                # The generator swallowed the error and yielded again;
                # refuse to continue a misbehaving process.
                self._generator.close()
                failed_ok, failed_value = False, error
            if self._value is _PENDING:
                self._ok = failed_ok
                self._value = failed_value
                self.env._schedule(self, NORMAL)
            return
        if next_event.env is not self.env:
            raise SimulationError("event belongs to a different environment")
        cbs = next_event.callbacks
        if cbs is None or next_event._processed:
            # Already processed (in sanitized runs dead events carry a
            # callback guard instead of None): resume immediately with
            # the stored value.
            self._target = self.env._schedule_hook(
                self._resume_cb, URGENT, next_event._ok, next_event._value)
        else:
            if next_event._waiter is None and not cbs:
                next_event._waiter = self._resume_cb
            else:
                self._cb_index = len(cbs)
                cbs.append(self._resume_cb)
            self._target = next_event


class _Condition(Event):
    """Base for AllOf / AnyOf composite events.

    An event counts as *fired* once its callbacks have been consumed
    (``callbacks is None``); note that a :class:`Timeout` carries its
    value from creation, so ``triggered`` alone cannot be used here.
    """

    __slots__ = ("events", "_unfired", "_fired", "_check_cb")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        if any(e.env is not env for e in self.events):
            raise SimulationError("events from different environments")
        self._unfired = 0
        self._fired = 0
        self._check_cb = self._check
        failed = None
        for event in self.events:
            if event.callbacks is None or event._processed:
                # Already processed (sanitized runs guard dead events'
                # callback slot instead of clearing it to None).
                if not event._ok and failed is None:
                    failed = event._value
                self._fired += 1
            else:
                self._unfired += 1
                event.callbacks.append(self._check_cb)
        if failed is not None:
            self.fail(failed)
        else:
            self._maybe_fire()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._unfired -= 1
        self._fired += 1
        self._maybe_fire()

    def _maybe_fire(self) -> None:
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self.events
                if e.callbacks is None or e._processed}

    def _satisfied(self) -> bool:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired == 0


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired > 0 or not self.events


class Environment:
    """The simulation clock and event queue.

    The queue is a two-level calendar: a heap of *distinct* event times
    (``_times``) plus, per time, a bucket of two append-only FIFO lists
    — one per scheduling priority (``_buckets[t] = (urgent, normal)``).
    Scheduling an event at an already-pending time is a dict hit and a
    ``list.append``; the heap is only touched once per distinct
    timestamp.  Draining a bucket replays exactly the classic
    ``(time, priority, seq)`` order: bucket times ascend, all URGENT
    entries at a time fire before all NORMAL ones (URGENT arrivals are
    re-checked between events, so they preempt the rest of the NORMAL
    backlog at the same time), and within a priority the append order
    *is* the sequence order.  Entries are bare event references — no
    per-event tuple is allocated.
    """

    __slots__ = ("_now", "_times", "_buckets", "_bucket_pool",
                 "_active_process", "_timeout_pool", "_hook_pool",
                 "_last_time", "_last_normal",
                 "_pending", "_events_processed", "_peak_queue",
                 "_busy_seconds", "_sanitizer", "_telemetry",
                 "_batch", "_pool_limit", "_pool_hits", "_pool_misses",
                 "_elided", "_drain_batch", "_drain_iter", "_drain_until")

    def __init__(self, initial_time: float = 0.0, *,
                 sanitize: bool = False,
                 telemetry: Any = None,
                 batch: Optional[bool] = None,
                 pool_limit: Optional[int] = None) -> None:
        self._now = float(initial_time)
        self._times: List[float] = []
        self._buckets: Dict[float, tuple] = {}
        self._bucket_pool: List[tuple] = []
        self._active_process: Optional[Process] = None
        self._timeout_pool: List[Timeout] = []
        self._hook_pool: List[_Hook] = []
        # One-entry bucket cache: synchronized models schedule many
        # events at the same future time back to back.  Caches the
        # NORMAL list directly — the only consumer is timeout().
        self._last_time: Optional[float] = None
        self._last_normal: Optional[list] = None
        self._pending = 0
        self._events_processed = 0
        self._peak_queue = 0
        self._busy_seconds = 0.0
        # Batched dispatch (None: the process-wide default, see
        # set_batch_default / REPRO_BATCH).  Bit-identical to the
        # scalar loop; sanitized runs ignore it and stay scalar.
        self._batch = _BATCH_DEFAULT if batch is None else bool(batch)
        # Live batched-dispatch snapshot (run() only).  Scheduling an
        # URGENT wakeup — or triggering the run's until_event — while a
        # batch drains truncates the snapshot at the current position,
        # so preemption points are honoured without a per-event check.
        self._drain_batch: Optional[list] = None
        self._drain_iter: Any = None
        self._drain_until: Optional[Event] = None
        if pool_limit is None:
            pool_limit = _POOL_LIMIT
        elif pool_limit < 0:
            raise ValueError(f"pool_limit must be >= 0, got {pool_limit}")
        self._pool_limit = int(pool_limit)
        self._pool_hits = 0
        self._pool_misses = 0
        # Events a vectorized fabric fast path elided but credited (see
        # credit_elided): counted into events_processed for bit-identity.
        self._elided = 0
        # Opt-in runtime sanitizers (credit conservation, event
        # lifecycle, write races, drain deadlocks).  `None` keeps every
        # hot-path hook to a single is-None test; see
        # repro.analysis.sanitizers for what `True` buys and costs.
        if sanitize:
            from ..analysis.sanitizers import RuntimeSanitizer
            self._sanitizer = RuntimeSanitizer(self)
        else:
            self._sanitizer = None
        # Opt-in observability (metrics, spans, timeline sampling).
        # `None` keeps every instrumented hot path to a single is-None
        # test; see repro.telemetry.  Accepts True (a fresh default
        # Telemetry) or a Telemetry instance.
        if telemetry:
            if telemetry is True:
                from ..telemetry import Telemetry
                telemetry = Telemetry()
            telemetry.bind(self)
            self._telemetry = telemetry
        else:
            self._telemetry = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def sanitize(self) -> bool:
        """Whether runtime sanitizers are attached (see ``sanitizer``)."""
        return self._sanitizer is not None

    @property
    def sanitizer(self):
        """The attached RuntimeSanitizer, or None on the fast path."""
        return self._sanitizer

    @property
    def telemetry(self):
        """The attached Telemetry hub, or None on the fast path."""
        return self._telemetry

    @property
    def batch(self) -> bool:
        """Whether batched dispatch (and vectorized fabric paths) is on."""
        return self._batch

    @property
    def stats(self) -> Dict[str, Any]:
        """Kernel counters: work done and how fast it was dispatched.

        ``events_per_sec`` is events over the wall-clock time spent
        inside :meth:`run`/:meth:`step` (simulated time never touches a
        wall clock); it is the perf-harness headline number.
        ``events_processed`` includes elided-but-credited events (see
        :meth:`credit_elided`) so it is bit-identical with batching on
        or off; ``events_elided`` says how many were credited.
        """
        busy = self._busy_seconds
        return {
            "events_processed": self._events_processed,
            "events_per_sec": self._events_processed / busy if busy > 0 else 0.0,
            "busy_seconds": busy,
            "peak_queue_depth": self._peak_queue,
            "pooled_timeouts": len(self._timeout_pool),
            "pooled_hooks": len(self._hook_pool),
            "batch": self._batch,
            "events_elided": self._elided,
            "pool_limit": self._pool_limit,
            "pool_hits": self._pool_hits,
            "pool_misses": self._pool_misses,
        }

    # -- scheduling ------------------------------------------------------

    def _bucket(self, time: float) -> tuple:
        """The (urgent, normal) bucket for ``time``, creating if absent."""
        bucket = self._buckets.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [])
            self._buckets[time] = bucket
            heappush(self._times, time)
        return bucket

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._bucket(self._now + delay)[priority].append(event)
        self._pending += 1
        batch = self._drain_batch
        if batch is not None and (
                priority == URGENT or
                ((u := self._drain_until) is not None
                 and u._value is not _PENDING)):
            self._truncate_drain(batch)

    def _truncate_drain(self, batch: list) -> None:
        """Cut the live batched-dispatch snapshot at the current event.

        Called when an URGENT wakeup lands (or the run's until_event
        triggers) mid-batch: everything after the event currently being
        dispatched is dropped from the snapshot, so the batch loop
        exits after finishing it — exactly where the scalar loop's
        per-event preemption checks would have stopped.  Spurious cuts
        are harmless: the remaining events re-dispatch through the
        scalar loop in identical order.
        """
        del batch[len(batch) - self._drain_iter.__length_hint__():]

    def _schedule_hook(self, callback: Callable[[Event], None],
                       priority: int, ok: bool, value: Any) -> "_Hook":
        """Schedule a pooled single-callback wakeup at the current time.

        Takes the same slot in scheduling order as the fresh ``Event``
        (or ``Initialize``) the seed kernel allocated here, so event
        ordering is unchanged.
        """
        pool = self._hook_pool
        if pool:
            hook = pool.pop()
            hook._ok = ok
            hook._value = value
            hook._processed = False
            hook.callbacks.append(callback)
            self._pool_hits += 1
        else:
            hook = _Hook.__new__(_Hook)
            hook.env = self
            hook.callbacks = [callback]
            hook._waiter = None
            hook._ok = ok
            hook._value = value
            hook._processed = False
            hook._scheduled = True
            self._pool_misses += 1
        self._bucket(self._now)[priority].append(hook)
        self._pending += 1
        batch = self._drain_batch
        if batch is not None and (
                priority == URGENT or
                ((u := self._drain_until) is not None
                 and u._value is not _PENDING)):
            self._truncate_drain(batch)
        return hook

    def _schedule_hook_at(self, time: float,
                          callback: Callable[[Event], None],
                          ok: bool, value: Any) -> "_Hook":
        """A pooled single-callback wakeup at an absolute future time.

        The vectorized fabric paths use this to land completion sweeps
        on exact precomputed timestamps (``now + (t - now)`` does not
        round-trip under IEEE arithmetic, so a delay-based wakeup could
        miss the bucket the scalar path used).  Fires at NORMAL
        priority, exactly where the scalar path's Timeout would have.
        """
        pool = self._hook_pool
        if pool:
            hook = pool.pop()
            hook._ok = ok
            hook._value = value
            hook._processed = False
            hook.callbacks.append(callback)
            self._pool_hits += 1
        else:
            hook = _Hook.__new__(_Hook)
            hook.env = self
            hook.callbacks = [callback]
            hook._waiter = None
            hook._ok = ok
            hook._value = value
            hook._processed = False
            hook._scheduled = True
            self._pool_misses += 1
        self._bucket(time)[NORMAL].append(hook)
        self._pending += 1
        return hook

    def credit_elided(self, n: int) -> None:
        """Account ``n`` scalar-path events a vectorized path elided.

        The batched fabric paths collapse deterministic event chains
        (serialize → propagate → deliver per flit) into closed-form
        schedules; the chain length is known exactly, so crediting it
        keeps ``events_processed`` (and the process-wide total) bit-
        identical between batched and scalar runs while the wall clock
        drops.
        """
        self._elided += n
        self._events_processed += n
        global _total_events
        _total_events += n

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` from the free list (allocates only when empty)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if self._sanitizer is not None:
            # Sanitized path: full construction so the sanitizer sees
            # the event's whole lifecycle (recycling is disabled too).
            return Timeout(self, delay, value)
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._value = value
            timeout._processed = False
            self._pool_hits += 1
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._waiter = None
            timeout._ok = True
            timeout._value = value
            timeout._processed = False
            timeout._scheduled = True
            self._pool_misses += 1
        timeout.delay = delay
        time = self._now + delay
        if time == self._last_time:
            self._last_normal.append(timeout)   # NORMAL priority
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                pool = self._bucket_pool
                bucket = pool.pop() if pool else ([], [])
                self._buckets[time] = bucket
                heappush(self._times, time)
            self._last_time = time
            self._last_normal = bucket[1]
            bucket[1].append(timeout)
        self._pending += 1
        return timeout

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` firing exactly at absolute ``time``.

        ``timeout(time - now)`` schedules at ``now + (time - now)``,
        which under IEEE rounding is not always ``time``; this lands on
        the exact float, which the vectorized fabric paths need to
        resume precisely where the scalar event chain would have.
        """
        now = self._now
        if time < now:
            raise ValueError(f"timeout_at({time}) is in the past "
                             f"(now={now})")
        if self._sanitizer is not None:
            # Sanitized path: full construction (no recycling) so the
            # sanitizer sees the whole lifecycle; scheduled by hand to
            # land on the exact absolute time.
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._waiter = None
            timeout._ok = True
            timeout._value = value
            timeout._processed = False
            timeout._scheduled = True
            timeout.delay = time - now
            self._sanitizer.on_created(timeout)
            self._bucket(time)[NORMAL].append(timeout)
            self._pending += 1
            return timeout
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._value = value
            timeout._processed = False
            self._pool_hits += 1
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._waiter = None
            timeout._ok = True
            timeout._value = value
            timeout._processed = False
            timeout._scheduled = True
            self._pool_misses += 1
        timeout.delay = time - now
        self._bucket(time)[NORMAL].append(timeout)
        self._pending += 1
        return timeout

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "", daemon: bool = False) -> Process:
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def _retire_bucket(self, time: float, bucket: tuple) -> None:
        """Drop a fully drained bucket and recycle its list pair."""
        del self._buckets[time]
        heappop(self._times)
        if time == self._last_time:
            self._last_time = None
            self._last_normal = None
        if len(self._bucket_pool) < 64:
            self._bucket_pool.append(bucket)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if queue is empty.

        Sweeps any bucket a previous early-stopped run drained but did
        not retire, so the reported time always has a live event.
        """
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            if bucket[0] or bucket[1]:
                return time
            self._retire_bucket(time, bucket)
        return _INF

    def step(self) -> None:
        """Process the single next event.

        Semantically identical to one iteration of :meth:`run`'s inner
        loop, minus event recycling (stepping is a debug/test path; the
        free lists only fill from :meth:`run`).
        """
        if self.peek() == _INF:
            raise SimulationError("no scheduled events")
        t0 = perf_counter()
        time = self._times[0]
        bucket = self._buckets[time]
        urgent, normal = bucket
        event = urgent.pop(0) if urgent else normal.pop(0)
        if not urgent and not normal:
            self._retire_bucket(time, bucket)
        self._now = time
        self._pending -= 1
        callbacks = event.callbacks
        event.callbacks = None
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter(event)
            fired = True
        else:
            fired = False
        for callback in callbacks:
            if callback is not None:
                callback(event)
                fired = True
        event._processed = True
        if self._sanitizer is not None:
            self._sanitizer.on_processed(event)
        self._events_processed += 1
        global _total_events
        _total_events += 1
        self._busy_seconds += perf_counter() - t0
        if not fired and not event._ok and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error.
            raise event._value

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run until the queue drains, time ``until``, or ``until_event``.

        Returns the value of ``until_event`` if given and it fired.  If
        ``until`` is given the clock always lands exactly on ``until``
        when the run stops early — including when the queue drains
        first — so wall-clock-style bookkeeping against ``env.now`` is
        branch-independent.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        stop = until if until is not None else _INF
        times = self._times
        buckets = self._buckets
        timeout_pool = self._timeout_pool
        hook_pool = self._hook_pool
        timeout_cls = Timeout
        hook_cls = _Hook
        process_cls = Process
        method_type = MethodType
        resume_fn = Process._resume
        refcount = getrefcount
        pool_limit = self._pool_limit
        pending_sentinel = _PENDING
        san = self._sanitizer
        use_batch = self._batch and san is None
        use_pool = pool_limit > 0
        check_event = until_event is not None
        self._drain_until = until_event
        processed = 0
        done = False
        t0 = perf_counter()
        try:
            while times:
                time = times[0]
                if time > stop:
                    self._now = stop
                    break
                bucket = buckets[time]
                urgent = bucket[0]
                normal = bucket[1]
                self._now = time
                live = self._pending - processed
                if live > self._peak_queue:
                    # Peak depth is sampled at time-advance granularity.
                    self._peak_queue = live
                ui = 0
                ni = 0
                nlen = len(normal)
                try:
                    while True:
                        if use_batch and not urgent and \
                                (nlen := len(normal)) - ni >= 4:
                            # Batched dispatch: drain this whole
                            # (time, NORMAL) run through a snapshot
                            # loop.  Iteration order is the bucket's
                            # append order — exactly seq order.  The
                            # scalar loop's per-event preemption
                            # checks (URGENT arrivals, until_event
                            # triggering) are enforced by the
                            # scheduler instead: _schedule /
                            # _schedule_hook truncate the registered
                            # snapshot at the current position, which
                            # ends this loop after the in-flight
                            # event — the same place the scalar loop
                            # would stop — at zero per-event cost.
                            # The cursor and the processed counter
                            # advance once per exit (the consumed
                            # count falls out of len(batch) and the
                            # iterator's remaining length).
                            batch = normal[ni:nlen]
                            batch_iter = iter(batch)
                            self._drain_batch = batch
                            self._drain_iter = batch_iter
                            try:
                                for event in batch_iter:
                                    callbacks = event.callbacks
                                    event.callbacks = None
                                    waiter = event._waiter
                                    if waiter is not None:
                                        event._waiter = None
                                        if waiter.__class__ \
                                                is method_type \
                                                and waiter.__func__ \
                                                is resume_fn:
                                            # Inlined Process._resume
                                            # for the single-waiter
                                            # shape: no callback frame,
                                            # cached generator
                                            # send/throw.
                                            proc = waiter.__self__
                                            if proc._value \
                                                    is pending_sentinel:
                                                target = proc._target
                                                if target is not event \
                                                        and target \
                                                        is not None \
                                                        and target.callbacks \
                                                        is not None:
                                                    proc._detach(target)
                                                proc._target = None
                                                # Drop the local ref so
                                                # the pooling refcount
                                                # guard below sees only
                                                # the kernel's
                                                # references.
                                                target = None
                                                self._active_process = \
                                                    proc
                                                try:
                                                    if event._ok:
                                                        nxt = proc._send(
                                                            event._value)
                                                    else:
                                                        nxt = proc._throw(
                                                            event._value)
                                                except StopIteration \
                                                        as stop_:
                                                    if proc._value is \
                                                            pending_sentinel:
                                                        proc._ok = True
                                                        proc._value = \
                                                            stop_.value
                                                        self._schedule(
                                                            proc, NORMAL)
                                                except BaseException \
                                                        as exc:
                                                    if proc._value is \
                                                            pending_sentinel:
                                                        proc._ok = False
                                                        proc._value = exc
                                                        self._schedule(
                                                            proc, NORMAL)
                                                else:
                                                    if nxt.__class__ \
                                                            is timeout_cls \
                                                            and (cbs2 :=
                                                                 nxt.callbacks) \
                                                            is not None:
                                                        if nxt._waiter \
                                                                is None \
                                                                and not cbs2:
                                                            nxt._waiter = \
                                                                waiter
                                                        else:
                                                            proc._cb_index = \
                                                                len(cbs2)
                                                            cbs2.append(
                                                                waiter)
                                                        proc._target = nxt
                                                    else:
                                                        proc._wait_slow(nxt)
                                        else:
                                            # Plain-callable waiter: it
                                            # must observe the same
                                            # active_process the scalar
                                            # loop would give it (None
                                            # — no resume in flight).
                                            self._active_process = None
                                            waiter(event)
                                        if callbacks:
                                            self._active_process = None
                                            for callback in callbacks:
                                                if callback is not None:
                                                    callback(event)
                                    else:
                                        self._active_process = None
                                        fired = False
                                        for callback in callbacks:
                                            if callback is not None:
                                                callback(event)
                                                fired = True
                                        if not fired and not event._ok \
                                                and not isinstance(
                                                    event, process_cls):
                                            event._processed = True
                                            raise event._value
                                    # Recycle when the kernel holds the
                                    # last references: the bucket slot,
                                    # the batch snapshot slot, local
                                    # `event`, and getrefcount's
                                    # argument.  The pool cap is
                                    # enforced by a single trim after
                                    # the batch (pool membership is
                                    # never model-visible), and the
                                    # processed flag is only written
                                    # when the event survives — a
                                    # recycled event has provably no
                                    # model references left to observe
                                    # it, and the next pool pop resets
                                    # the flag anyway.
                                    if event.__class__ is timeout_cls:
                                        if use_pool \
                                                and refcount(event) == 4:
                                            if callbacks:
                                                callbacks.clear()
                                            event.callbacks = callbacks
                                            timeout_pool.append(event)
                                        else:
                                            event._processed = True
                                    elif event.__class__ is hook_cls:
                                        if use_pool \
                                                and refcount(event) == 4:
                                            if callbacks:
                                                callbacks.clear()
                                            event.callbacks = callbacks
                                            hook_pool.append(event)
                                        else:
                                            event._processed = True
                                    else:
                                        event._processed = True
                            except BaseException:
                                # The raising event counts as consumed
                                # (the scalar loop advances its cursor
                                # before dispatching) so the cleanup
                                # below drops it and a re-entered run
                                # cannot re-fire it.
                                k = len(batch) \
                                    - batch_iter.__length_hint__()
                                ni += k
                                processed += k
                                self._drain_batch = None
                                self._drain_iter = None
                                self._active_process = None
                                if len(timeout_pool) > pool_limit:
                                    del timeout_pool[pool_limit:]
                                if len(hook_pool) > pool_limit:
                                    del hook_pool[pool_limit:]
                                raise
                            # Exhausted (possibly truncated): every
                            # event still in the snapshot was consumed.
                            k = len(batch)
                            ni += k
                            processed += k
                            self._drain_batch = None
                            self._drain_iter = None
                            self._active_process = None
                            if len(timeout_pool) > pool_limit:
                                del timeout_pool[pool_limit:]
                            if len(hook_pool) > pool_limit:
                                del hook_pool[pool_limit:]
                            continue
                        if check_event and \
                                until_event._value is not pending_sentinel:
                            done = True
                            break
                        # URGENT is re-checked every iteration so a
                        # just-scheduled urgent event preempts the
                        # remaining NORMAL backlog at this time.
                        if ui < len(urgent):
                            event = urgent[ui]
                            ui += 1
                        elif ni < nlen:
                            event = normal[ni]
                            ni += 1
                        else:
                            # The cursor caught up with the cached
                            # length: re-measure once in case dispatch
                            # appended same-time events, then stop.
                            nlen = len(normal)
                            if ni >= nlen:
                                break
                            event = normal[ni]
                            ni += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        processed += 1
                        waiter = event._waiter
                        if waiter is not None:
                            # Single waiter in the slot — the
                            # overwhelmingly common case.
                            event._waiter = None
                            waiter(event)
                            fired = True
                            if callbacks:
                                for callback in callbacks:
                                    if callback is not None:
                                        callback(event)
                        else:
                            fired = False
                            for callback in callbacks:
                                if callback is not None:
                                    callback(event)
                                    fired = True
                        event._processed = True
                        if not fired and not event._ok and \
                                not isinstance(event, Process):
                            # A failed event nobody waited for: surface
                            # the error.
                            raise event._value
                        if san is not None:
                            # Sanitized runs trade recycling for full
                            # lifecycle tracking (and dead-event
                            # callback guards); scheduling order is
                            # unaffected.
                            san.on_processed(event)
                            continue
                        # Recycle the event if the kernel holds the last
                        # references (the bucket slot, local `event`,
                        # and getrefcount's argument).
                        cls = event.__class__
                        if cls is timeout_cls:
                            if len(timeout_pool) < pool_limit and \
                                    refcount(event) == 3:
                                if callbacks:
                                    callbacks.clear()
                                event.callbacks = callbacks
                                timeout_pool.append(event)
                        elif cls is hook_cls:
                            if len(hook_pool) < pool_limit and \
                                    refcount(event) == 3:
                                if callbacks:
                                    callbacks.clear()
                                event.callbacks = callbacks
                                hook_pool.append(event)
                finally:
                    # On any exit — drained, until_event, or a raising
                    # callback — drop consumed slots so re-entry never
                    # re-fires a processed event.
                    if ui:
                        del urgent[:ui]
                    if ni:
                        del normal[:ni]
                if not urgent and not normal:
                    self._retire_bucket(time, bucket)
                if done:
                    break
        finally:
            self._drain_until = None
            self._busy_seconds += perf_counter() - t0
            self._events_processed += processed
            self._pending -= processed
            global _total_events
            _total_events += processed
        if san is not None and not times:
            # The queue drained: report blocked processes (deadlocks),
            # never-triggered events, and credit-conservation drift.
            san.on_drain()
        if until_event is not None:
            if until_event._value is not _PENDING:
                if not until_event._ok:
                    raise until_event._value
                return until_event._value
            if until is not None:
                # The queue drained (or `stop` was reached) before the
                # event fired; land on `until` and report via the
                # still-pending event rather than raising.
                if stop != _INF:
                    self._now = stop
                return None
            raise SimulationError("until_event never fired")
        if until is not None and stop != _INF:
            self._now = stop
        return None


def run_proc(env: Environment, gen: Generator,
             horizon: float = 5_000_000_000.0) -> Any:
    """Run one process to completion and return its value.

    The run-to-completion idiom shared by benchmarks, examples and
    tests: stops as soon as the process finishes (important when
    background traffic generators would otherwise run to the horizon),
    and raises if the horizon passes first.
    """
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    if not proc.triggered:
        raise RuntimeError("process did not finish within horizon")
    if not proc.ok:
        raise proc.value
    return proc.value
