"""Deterministic discrete-event simulation kernel.

This package is the substrate every hardware model in the repository
runs on: a SimPy-style process/event engine (:mod:`repro.sim.engine`),
queueing primitives (:mod:`repro.sim.resources`), deterministic random
streams (:mod:`repro.sim.rng`) and tracing (:mod:`repro.sim.trace`).
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    run_proc,
    total_events_processed,
)
from .resources import Container, PriorityResource, PriorityStore, Resource, Store
from .rng import SimRng
from .trace import StatSeries, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "PriorityResource",
    "PriorityStore",
    "Resource",
    "Store",
    "SimRng",
    "StatSeries",
    "Tracer",
    "TraceRecord",
    "run_proc",
    "total_events_processed",
]
