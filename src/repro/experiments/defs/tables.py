"""Experiments T1/T2/F1: the paper's tables and Figure 1 rack.

Builder logic absorbed from ``benchmarks/bench_table1_catalog.py``,
``bench_table2_hierarchy.py`` and ``bench_fig1_composition.py``; the
benchmark scripts are thin wrappers over these registrations.
"""

from __future__ import annotations

from typing import Any, Dict

from ... import params
from ...fabric import CATALOG, Channel, Packet, PacketKind, format_table1
from ...infra import ClusterSpec, FaaSpec, FamSpec, build_cluster
from ...sim import Environment, run_proc
from ..format import print_table
from ..registry import Param, experiment

#: outstanding-op window per measured level (fitted; see EXPERIMENTS.md)
WINDOWS = {"l1": 2, "l2": 2, "local": 3, "local_wr": 2, "remote": 4}

TABLE2_ROWS = [("l1", False), ("l1", True), ("l2", False), ("l2", True),
               ("local", False), ("local", True), ("remote", False),
               ("remote", True)]


def measure_level(level: str, is_write: bool, ops: int = 400) -> dict:
    """One Table 2 row: stream 64B ops pinned to a hierarchy level."""
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    core = host.core(0)
    base = host.remote_base("fam0") if level == "remote" else 1 << 20
    window = WINDOWS["local_wr"] if (level == "local" and is_write) \
        else WINDOWS[level]

    if level in ("l1", "l2"):
        if level == "l1":
            warm = [(base, is_write)]
            trace = [(base, is_write)] * ops
        else:
            # Cyclic scan of 64KB: thrashes the 32KB L1, fits the 1MB
            # L2.
            lines = [(base + i * 64, is_write) for i in range(1024)]
            warm = lines
            scans = -(-ops // len(lines))
            trace = (lines * scans)[:ops]
    else:
        # Distinct far-apart lines: every access is a DRAM-cold miss.
        warm = []
        trace = [(base + i * 4096, is_write) for i in range(ops)]

    def go():
        if warm:
            yield from core.run(warm, window=window)
        stats = yield from core.run(trace, window=window)
        return stats

    stats = run_proc(env, go())
    return {"level": level, "op": "write" if is_write else "read",
            "latency_ns": stats.mean, "mops": stats.mops(),
            "window": window}


def _paper_latency(level: str, op: str) -> float:
    return {
        ("l1", "read"): params.L1_READ_NS,
        ("l1", "write"): params.L1_WRITE_NS,
        ("l2", "read"): params.L2_READ_NS,
        ("l2", "write"): params.L2_WRITE_NS,
        ("local", "read"): params.LOCAL_MEM_READ_NS,
        ("local", "write"): params.LOCAL_MEM_WRITE_NS,
        ("remote", "read"): params.REMOTE_MEM_READ_NS,
        ("remote", "write"): params.REMOTE_MEM_WRITE_NS,
    }[(level, op)]


def render_table2(summary: Dict[str, Any],
                  _params: Dict[str, Any]) -> None:
    rows = []
    for r in summary["rows"]:
        rows.append([f"{r['level']} {r['op']}", r["paper_latency_ns"],
                     r["latency_ns"], r["paper_mops"], r["mops"],
                     r["window"]])
    print_table(
        "Table 2: cacheline (64B) performance, paper vs simulated",
        ["level/op", "paper ns", "sim ns", "paper MOPS", "sim MOPS",
         "window"],
        rows)


@experiment(
    "table2_hierarchy",
    "Table 2 (+C1): hierarchy latency/MOPS, one core streaming 64B ops",
    params={"ops": Param(int, 400, "measured ops per level")},
    render=render_table2)
def run_table2(ctx) -> Dict[str, Any]:
    rows = []
    for level, is_write in TABLE2_ROWS:
        measured = measure_level(level, is_write, ops=ctx.ops)
        key = (level, measured["op"])
        measured["paper_latency_ns"] = _paper_latency(*key)
        measured["paper_mops"] = params.PAPER_MOPS[key]
        rows.append(measured)
    return {"rows": rows}


def render_table1(summary: Dict[str, Any],
                  _params: Dict[str, Any]) -> None:
    print(summary["table"])


@experiment(
    "table1_catalog",
    "Table 1: the commodity memory-fabric catalog, as structured data",
    render=render_table1)
def run_table1(_ctx) -> Dict[str, Any]:
    merged = sorted(spec.interconnect for spec in CATALOG
                    if spec.merged_into_cxl)
    return {"table": format_table1(),
            "fabrics": len(CATALOG),
            "merged_into_cxl": merged}


def build_fig1(env: Environment, hosts: int = 2, fam_modules: int = 6,
               faa_accelerators: int = 8):
    """The Figure 1(b) rack: hosts + FAM chassis + FAA chassis."""
    return build_cluster(env, ClusterSpec(
        hosts=hosts,
        fams=[FamSpec(name="fam0", capacity_bytes=1 << 28,
                      modules=fam_modules)],
        faas=[FaaSpec(name="faa0", accelerators=faa_accelerators)]))


def render_fig1(summary: Dict[str, Any],
                _params: Dict[str, Any]) -> None:
    print(summary["describe"])


@experiment(
    "fig1_composition",
    "Figure 1: composable rack inventory + all-hosts-reach-all check",
    params={"hosts": Param(int, 2, "host servers in the rack"),
            "fam_modules": Param(int, 6, "rDIMM modules in the FAM"),
            "faa_accelerators": Param(int, 8, "accelerators in the FAA")},
    render=render_fig1)
def run_fig1(ctx) -> Dict[str, Any]:
    env = Environment()
    cluster = build_fig1(env, hosts=ctx.hosts,
                         fam_modules=ctx.fam_modules,
                         faa_accelerators=ctx.faa_accelerators)
    # Snapshot the inventory before the probes touch port counters.
    described = cluster.describe()

    def one(host, dst_name):
        packet = Packet(kind=PacketKind.MEM_RD,
                        channel=Channel.CXL_MEM,
                        src=host.port.port_id,
                        dst=cluster.endpoint_id(dst_name), nbytes=64)
        response = yield from host.port.request(packet)
        return response.kind

    reached = []
    for host in cluster.hosts.values():
        kind = run_proc(env, one(host, "fam0"))
        reached.append(kind is PacketKind.MEM_RD_DATA)
    switch = cluster.topology.switches["sw0"]
    return {"describe": described,
            "hosts": len(cluster.hosts),
            "switch_ports": switch.port_count(),
            "all_hosts_reach_fam": all(reached)}
