"""Topology-driven experiments: §3 pathologies on generated fabrics.

The ``xswitch_starvation`` experiment replays the C7 cross-switch
credit-starvation story on a *declarative* topology: by default the
committed ``xswitch_fat_tree_2pod`` shape (a generated 2-pod fat tree
whose pods are joined by one narrow x8 inter-pod link with its own
credit budget).  A flood of posted writes toward a slow device in the
remote pod exhausts the inter-pod link credits; a victim flow reading a
*different* remote device — sharing no endpoint with the flood —
starves anyway, because the congestion back-propagates across the
spine.  Per-class fair queueing contains the spread.

Because the fabric comes from a descriptor, the ``topology`` parameter
is a sweep axis: any committed shape or generator call
(``fat_tree:pods=2,leaves=3``) with at least two hosts and two devices
reproduces the table at its own scale.

The ``feedback`` knob adds a fourth, closed-loop case: the FIFO fabric
runs under the health monitor, and a
:class:`~repro.control.ControlPlane` rule watches the inter-pod link's
bulk-VC credit gauge — the moment a window closes with the pool pinned
at zero, a :class:`~repro.control.LinkActuator` revokes the flood
host's injection credits down to a trickle (the fabric-manager
admission-control move), containing the starvation without touching
the victim's path.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from ...fabric import Channel, Packet, PacketKind
from ...sim import Environment, StatSeries, run_proc
from ...topo import (
    DescriptorError,
    EndpointSpec,
    TopologyDescriptor,
    compile_topology,
    resolve_topology,
)
from ..format import print_table
from ..registry import ExperimentError, Param, experiment

_SLOW_DEVICE_NS = 500.0
_FAST_DEVICE_NS = 10.0
_FLOOD_WORKERS = 8

# The closed-loop case: 1,000 ns health windows sampled every 500 ns;
# the rescue revokes the flood's edge-link credits down to this many.
_FEEDBACK_WINDOW_NS = 1_000.0
_FEEDBACK_INTERVAL_NS = 500.0
_RESCUE_GRANTED = 2


def _pick_endpoints(descriptor: TopologyDescriptor) \
        -> Tuple[str, str, str, str]:
    """(victim_host, flood_host, victim_dev, hot_dev), shape-agnostic.

    The victim host is the first upstream endpoint; the flood host is
    a sibling from the same pod when one exists (so both flows share
    the victim's egress toward the remote pod).  Devices prefer a pod
    *other* than the victim's, so the measured path crosses the
    inter-pod link — the cross-switch part of the claim.
    """
    ups = descriptor.endpoints_by_role("upstream")
    downs = descriptor.endpoints_by_role("downstream")
    if len(ups) < 2 or len(downs) < 2:
        raise ExperimentError(
            f"topology {descriptor.name!r} has {len(ups)} host(s) and "
            f"{len(downs)} device(s); xswitch_starvation needs at "
            f"least 2 of each")

    def pod_name(endpoint: EndpointSpec) -> str:
        return descriptor.pod_of_endpoint(endpoint.name).name

    victim_host = ups[0]
    same_pod_hosts = [u for u in ups[1:]
                     if pod_name(u) == pod_name(victim_host)]
    flood_host = (same_pod_hosts or ups[1:])[0]
    remote_downs = [d for d in downs
                    if pod_name(d) != pod_name(victim_host)]
    pool = remote_downs if len(remote_downs) >= 2 else downs
    victim_dev, hot_dev = pool[0], pool[-1]
    return (victim_host.name, flood_host.name, victim_dev.name,
            hot_dev.name)


def _interpod_exit(descriptor: TopologyDescriptor,
                   from_pod: str) -> str:
    """The inter-pod link name in the direction leaving ``from_pod``."""
    def pod_of_switch(name: str) -> str:
        for pod in descriptor.pods:
            if any(s.name == name for s in pod.switches):
                return pod.name
        raise ExperimentError(
            f"topology {descriptor.name!r} has no switch {name!r}")

    for link in descriptor.interpod:
        if pod_of_switch(link.a) == from_pod:
            return f"{link.a}->{link.b}"
        if pod_of_switch(link.b) == from_pod:
            return f"{link.b}->{link.a}"
    raise ExperimentError(
        f"topology {descriptor.name!r} has no inter-pod link leaving "
        f"pod {from_pod!r}; the feedback case needs one")


def xswitch_rescue_policy(descriptor: TopologyDescriptor):
    """The built-in closed-loop rescue for ``feedback=default``.

    Bulk CXL.io traffic rides VC 1 (the flood's channel — victim
    CXL.mem reads ride VC 0), so the trigger is the flood-direction
    inter-pod link's vc1 credit gauge pinned at zero at window close,
    and the action quenches the *aggressor*: revoke the flood host's
    edge-link vc1 credits down to a trickle.
    """
    from ...control import FeedbackPolicy
    _, flood_host, _, _ = _pick_endpoints(descriptor)
    flood_pod = descriptor.pod_of_endpoint(flood_host).name
    exit_link = _interpod_exit(descriptor, flood_pod)
    return FeedbackPolicy({
        "schema": 1,
        "rules": [
            {"name": "quench-flood",
             "when": {"kind": "gauge_level",
                      "gauge": f"link.{exit_link}.vc1.credits",
                      "below": 0.5},
             "then": {"actuator": "link.injection",
                      "set": {"granted": _RESCUE_GRANTED}},
             "max_firings": 1},
        ]}, source="builtin:xswitch-rescue")


def run_xswitch_case(descriptor: TopologyDescriptor, scheduler: str,
                     with_flood: bool, victim_reads: int,
                     flood_writes: int,
                     feedback: Any = None) -> Tuple[StatSeries, Any]:
    """One case; returns (victim latency series, control plane or None).

    With ``feedback`` (a FeedbackPolicy) the run carries telemetry, a
    sampler, and a health monitor; a LinkActuator named
    ``link.injection`` wraps the flood host's edge link so rules can
    throttle the aggressor at its injection port.  Telemetry does not
    change model timings (pinned bit-identity), so the case's latency
    stats stay comparable with the bare runs.
    """
    plane = None
    monitor = None
    if feedback is not None:
        from ...control import ControlPlane, LinkActuator
        from ...telemetry.causal import CausalRecorder
        from ...telemetry.core import Telemetry
        from ...telemetry.health import HealthMonitor
        from ...telemetry.sampler import TimelineSampler
        env = Environment(
            telemetry=Telemetry(causal=CausalRecorder(sample=1)))
        TimelineSampler(env,
                        interval_ns=_FEEDBACK_INTERVAL_NS).start()
        monitor = HealthMonitor(env.telemetry, "xswitch",
                                window_ns=_FEEDBACK_WINDOW_NS)
        plane = ControlPlane(feedback)
    else:
        env = Environment()
    case_desc = dataclasses.replace(descriptor, scheduler=scheduler)
    topo = compile_topology(case_desc, env).topology
    victim_host, flood_host, victim_dev, hot_dev = \
        _pick_endpoints(descriptor)
    if plane is not None:
        plane.add_actuator(LinkActuator(
            topo.port_of(flood_host).tx_link, vc=1,
            name="link.injection"))
        plane.attach(monitor)

    def slow_handler(request):
        yield env.timeout(_SLOW_DEVICE_NS)   # the congestion source
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    def fast_handler(request):
        yield env.timeout(_FAST_DEVICE_NS)
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    topo.port_of(hot_dev).serve(slow_handler, concurrency=1)
    topo.port_of(victim_dev).serve(fast_handler, concurrency=8)
    stats = StatSeries("victim")

    def victim():
        port = topo.port_of(victim_host)
        dst = topo.endpoints[victim_dev].global_id
        for _ in range(victim_reads):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(200.0)

    def flood_worker(count):
        # Pipelined posted writes: workers keep the inter-pod link's
        # credit budget exhausted, which is what back-propagates.
        port = topo.port_of(flood_host)
        dst = topo.endpoints[hot_dev].global_id
        for _ in range(count):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=4096)
            yield from port.post(packet)

    if with_flood:
        for _ in range(_FLOOD_WORKERS):
            env.process(flood_worker(flood_writes // _FLOOD_WORKERS))
    run_proc(env, victim())
    if monitor is not None:
        monitor.finalize(env.now)
    return stats, plane


def render_xswitch_starvation(summary: Dict[str, Any],
                              _params: Dict[str, Any]) -> None:
    cases = summary["cases"]
    quiet = cases["fifo quiet"]["mean_ns"]
    rows = [[case, r["mean_ns"], r["p99_ns"], r["mean_ns"] / quiet]
            for case, r in cases.items()]
    endpoints = summary["endpoints"]
    print_table(
        f"xswitch: victim latency across pods on "
        f"{summary['topology']} "
        f"({endpoints['victim_host']} -> {endpoints['victim_dev']} vs "
        f"flood at {endpoints['hot_dev']})",
        ["case", "mean ns", "p99 ns", "vs quiet"], rows)


@experiment(
    "xswitch_starvation",
    "§3: cross-switch credit starvation on a generated 2-pod fat tree",
    params={"topology": Param(str, "xswitch_fat_tree_2pod",
                              "committed shape or generator call "
                              "(e.g. 'fat_tree:pods=2,leaves=3')"),
            "victim_reads": Param(int, 40, "victim-flow reads"),
            "flood_writes": Param(int, 600,
                                  "flood writes at the hot device"),
            "feedback": Param(str, "off",
                              "closed-loop rescue case: off, default, "
                              "or a feedback-policy JSON path")},
    render=render_xswitch_starvation)
def run_xswitch_starvation(ctx) -> Dict[str, Any]:
    try:
        descriptor = resolve_topology(ctx.topology)
    except DescriptorError as exc:
        # Surfaces through `repro bench`/`repro sweep` verbatim, with
        # the full list of valid shape and generator names attached.
        raise ExperimentError(str(exc)) from None
    victim_host, flood_host, victim_dev, hot_dev = \
        _pick_endpoints(descriptor)
    cases = {}
    for case, scheduler, with_flood in (
            ("fifo quiet", "fifo", False),
            ("fifo congested", "fifo", True),
            ("fair congested", "fair", True)):
        stats, _ = run_xswitch_case(descriptor, scheduler, with_flood,
                                    ctx.victim_reads,
                                    ctx.flood_writes)
        cases[case] = {"mean_ns": stats.mean, "p99_ns": stats.p99}
    summary: Dict[str, Any] = {
        "topology": descriptor.name,
        "endpoints": {"victim_host": victim_host,
                      "flood_host": flood_host,
                      "victim_dev": victim_dev,
                      "hot_dev": hot_dev},
        "cases": cases}
    if ctx.feedback != "off":
        from ...control import ControlError, FeedbackPolicy
        try:
            if ctx.feedback == "default":
                policy = xswitch_rescue_policy(descriptor)
            else:
                policy = FeedbackPolicy.load(ctx.feedback)
            stats, plane = run_xswitch_case(
                descriptor, "fifo", True, ctx.victim_reads,
                ctx.flood_writes, feedback=policy)
        except ControlError as exc:
            raise ExperimentError(str(exc)) from None
        cases["fifo rescue"] = {"mean_ns": stats.mean,
                                "p99_ns": stats.p99}
        summary["feedback"] = {"policy_source": policy.source,
                               "actions": plane.actions}
    return summary
