"""The closed-loop A/B experiment: static credits vs feedback rescue.

``control_loop`` runs the starvation scenario twice under the health
monitor: once with the static pathological ``RampUpPolicy`` (the §3 C5
baseline the ``fabric_health`` experiment pins), and once with the
same policy *plus* the default feedback policy — the control plane
watches windowed ``credit_stall`` attribution and, the moment the
quiet route's share breaches the rule threshold (the same window whose
close fires the fast-burn alert at 14,000 ns), installs equal
hot/quiet credit weights on the egress domain.

The golden-pinned recovery timeline is the contrast the ROADMAP's
closed-loop item asks for: the action lands exactly at the alert edge,
the quiet route's post-alert stall share drops versus the static run,
the burst finishes faster, and the hot route still never stalls (the
rescue does not starve it in turn).  Both runs are deterministic, so
the whole summary — action log included — is reproducible bytes.
"""

from __future__ import annotations

from typing import Any, Dict

from ...telemetry.health import DEFAULT_WINDOW_NS, run_health
from ...telemetry.sampler import DEFAULT_INTERVAL_NS
from ..format import print_table
from ..registry import ExperimentError, Param, experiment


def _case(window_ns: float, interval_ns: float,
          feedback: bool) -> Dict[str, Any]:
    policy = None
    if feedback:
        from ...control import FeedbackPolicy, default_feedback_policy
        policy = FeedbackPolicy(default_feedback_policy("starvation"),
                                source="default")
    result, report = run_health("starvation", window_ns=window_ns,
                                interval_ns=interval_ns,
                                feedback=policy)
    fired = [episode["fired_at"] for slo in report["slos"]
             for alert in slo["alerts"]
             for episode in alert["episodes"]]
    quiet = report["attribution"]["routes"]["quiet"]
    shares = quiet["share"]["credit_stall"]
    post_alert = [share for t1, share
                  in zip((w["t1"] for w in report["windows"]), shares)
                  if fired and t1 > fired[0]]
    actions = [{"t": action["t"], "rule": action["rule"],
                "actuator": action["actuator"],
                "granted_after": action["after"]["granted"]}
               for action in report["control"]["actions"]] \
        if "control" in report else []
    return {"fired_at": fired,
            "actions": actions,
            "quiet_stall_share": shares,
            "post_alert_share": post_alert,
            "quiet_stall_ns": result.summary["quiet_stall_ns"],
            "quiet_burst_ns": result.summary["quiet_burst_ns"],
            "hot_stall_ns": result.summary["hot_stall_ns"],
            "final_grants": result.summary["final_grants"],
            "events_processed": result.env.stats["events_processed"]}


def render_control_loop(summary: Dict[str, Any],
                        _params: Dict[str, Any]) -> None:
    rows = []
    for case, data in summary["cases"].items():
        fired = data["fired_at"][0] if data["fired_at"] else "-"
        post = max(data["post_alert_share"], default=0.0)
        rows.append([case, fired, len(data["actions"]),
                     round(post, 4), data["quiet_burst_ns"],
                     data["hot_stall_ns"],
                     "/".join(str(v) for v in
                              data["final_grants"].values())])
    print_table(
        f"closed loop vs static credits: starvation in "
        f"{summary['window_ns']:,.0f} ns windows",
        ["case", "alert ns", "actions", "post-alert stall share",
         "burst ns", "hot stall ns", "grants hot/quiet"], rows)


@experiment(
    "control_loop",
    "A/B: health-driven credit feedback vs static RampUpPolicy",
    params={"window_ns": Param(float, DEFAULT_WINDOW_NS,
                               "tumbling window width (sim ns)"),
            "interval_ns": Param(float, DEFAULT_INTERVAL_NS,
                                 "sampler cadence (sim ns)")},
    render=render_control_loop)
def run_control_loop(ctx) -> Dict[str, Any]:
    from ...control import ControlError
    from ...telemetry.health import HealthError
    cases = {}
    try:
        cases["static"] = _case(ctx.window_ns, ctx.interval_ns,
                                feedback=False)
        cases["closed-loop"] = _case(ctx.window_ns, ctx.interval_ns,
                                     feedback=True)
    except (ControlError, HealthError, ValueError) as exc:
        raise ExperimentError(str(exc)) from None
    return {"scenario": "starvation", "window_ns": ctx.window_ns,
            "cases": cases}
