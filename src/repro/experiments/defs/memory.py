"""Memory-node experiments: S2 node types, E1 reliability, E4 NR.

Builder logic absorbed from ``bench_node_types.py``,
``bench_reliability.py`` and ``bench_replication.py``.
"""

from __future__ import annotations

from typing import Any, Dict

from ...core import CentralMemoryManager, NodeReplicatedObject, UniFabric
from ...fabric import Channel, Packet, PacketKind
from ...infra import ClusterSpec, FamSpec, build_cluster
from ...mem import ComaCluster, NodeKind
from ...sim import Environment, SimRng, StatSeries, run_proc
from ..format import print_table
from ..registry import Param, experiment

__all__ = ["fabric_node_case", "coma_case", "measure_parity", "run_nr_mode"]

# --------------------------------------------------------------------------
# S2: difference #2 — the eclectic memory node types
# --------------------------------------------------------------------------


def fabric_node_case(kind: NodeKind, rounds: int = 30,
                     shared_lines: int = 8) -> Dict[str, float]:
    """Two hosts ping-pong writes + reads over a shared region.

    Issued as uncached fabric requests: sharing semantics live at the
    device, and a write-back host cache would otherwise absorb the
    traffic after the first round (difference #1 at work).
    """
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=2, fams=[FamSpec(name="fam", kind=kind,
                               capacity_bytes=1 << 26)]))
    host0 = cluster.host(0)
    host1 = cluster.hosts["host1"]
    dst = cluster.endpoint_id("fam")
    stats = StatSeries(kind.value)

    def op(host, addr, is_write):
        packet = Packet(
            kind=PacketKind.MEM_WR if is_write else PacketKind.MEM_RD,
            channel=Channel.CXL_MEM, src=host.port.port_id, dst=dst,
            addr=addr, nbytes=64)
        yield from host.port.request(packet)

    def go():
        for round_index in range(rounds):
            for line in range(shared_lines):
                addr = line * 64
                writer, reader = (host0, host1) if round_index % 2 \
                    else (host1, host0)
                start = env.now
                yield from op(writer, addr, True)
                yield from op(reader, addr, False)
                stats.add(env.now - start, time=env.now)
        return stats

    run_proc(env, go(), horizon=500_000_000_000)
    module = cluster.fam("fam").modules[0]
    snoops = getattr(module, "snoops_issued", 0)
    conflicts = getattr(module, "cross_host_conflicts", 0)
    return {"mean_ns": stats.mean, "snoops": snoops,
            "conflicts": conflicts}


def coma_case(rounds: int = 30,
              shared_lines: int = 8) -> Dict[str, float]:
    """The same ping-pong over a 2-node COMA cluster."""
    env = Environment()
    coma = ComaCluster(env, nodes=2, am_capacity_lines=64)
    stats = StatSeries("coma")

    def go():
        for round_index in range(rounds):
            for line in range(shared_lines):
                addr = line * 64
                writer, reader = (0, 1) if round_index % 2 else (1, 0)
                start = env.now
                yield from coma.access(writer, addr, is_write=True)
                yield from coma.access(reader, addr, is_write=False)
                stats.add(env.now - start, time=env.now)
        return stats

    run_proc(env, go())
    return {"mean_ns": stats.mean,
            "invalidations": coma.stats.invalidations,
            "replications": coma.stats.replications}


def render_node_types(summary: Dict[str, Any],
                      _params: Dict[str, Any]) -> None:
    rows = []
    for kind, r in summary["kinds"].items():
        extra = ", ".join(f"{k}={v}" for k, v in r.items()
                          if k != "mean_ns")
        rows.append([kind, r["mean_ns"], extra])
    print_table("S2: write->read sharing round over each node type",
                ["node type", "mean round ns", "notes"],
                rows, widths=[14, 14, 44])


@experiment(
    "node_types",
    "S2: sharing round over CPU-less / CC / non-CC NUMA and COMA",
    params={"rounds": Param(int, 30, "write->read rounds"),
            "shared_lines": Param(int, 8, "contended lines")},
    render=render_node_types)
def run_node_types(ctx) -> Dict[str, Any]:
    args = (ctx.rounds, ctx.shared_lines)
    return {"kinds": {
        "cpuless-numa": fabric_node_case(NodeKind.CPULESS_NUMA, *args),
        "cc-numa": fabric_node_case(NodeKind.CC_NUMA, *args),
        "noncc-numa": fabric_node_case(NodeKind.NONCC_NUMA, *args),
        "coma": coma_case(*args),
    }}


# --------------------------------------------------------------------------
# E1: resource-frugal fault tolerance for FAM
# --------------------------------------------------------------------------


def _build_parity_region(parity: int, shard_bytes: int):
    env = Environment()
    fams = [FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
            for i in range(5)]
    cluster = build_cluster(env, ClusterSpec(hosts=1, fams=fams))
    host = cluster.host(0)
    manager = CentralMemoryManager(env)
    for i in range(5):
        manager.register_chassis(
            f"fam{i}",
            spare_bases=[host.remote_base(f"fam{i}") + (8 << 20)])
    shards = [(f"fam{i}", host.remote_base(f"fam{i}"))
              for i in range(2 + parity)]
    region = manager.create_region(host, "r0", shards,
                                   shard_bytes=shard_bytes,
                                   parity=parity)
    return env, host, manager, region


def measure_parity(parity: int, ops: int = 30,
                   shard_bytes: int = 64 * 1024) -> Dict[str, float]:
    env, host, manager, region = _build_parity_region(parity,
                                                      shard_bytes)
    healthy_reads = StatSeries("healthy")
    writes = StatSeries("writes")
    degraded_reads = StatSeries("degraded")

    def go():
        for i in range(ops):
            addr = (i * 640) % shard_bytes
            start = env.now
            yield from region.write(addr)
            writes.add(env.now - start)
            start = env.now
            yield from region.read(addr)
            healthy_reads.add(env.now - start)
        result = {"write_ns": writes.mean,
                  "read_ns": healthy_reads.mean}
        if parity > 0:
            manager.chassis_failed("fam0")
            for i in range(ops):
                addr = (i * 640) % shard_bytes
                start = env.now
                yield from region.read(addr)
                degraded_reads.add(env.now - start)
            result["degraded_read_ns"] = degraded_reads.mean
            start = env.now
            yield from manager.reconstruct("r0")
            result["rebuild_us"] = (env.now - start) / 1e3
            start = env.now
            yield from region.read(0)
            result["post_rebuild_read_ns"] = env.now - start
        return result

    return run_proc(env, go(), horizon=500_000_000_000)


def render_reliability(summary: Dict[str, Any],
                       run_params: Dict[str, Any]) -> None:
    rows = []
    for parity, r in summary["parity"].items():
        rows.append([f"2+{parity}", r["write_ns"], r["read_ns"],
                     r.get("degraded_read_ns", "-"),
                     r.get("rebuild_us", "-")])
    print_table("E1 (extension): erasure-coded FAM regions "
                f"({run_params['shard_bytes'] >> 10}KiB shards)",
                ["shards", "write ns", "read ns", "degraded ns",
                 "rebuild us"], rows)


@experiment(
    "reliability",
    "E1: erasure-coded FAM — write amp, degraded reads, rebuild",
    params={"ops": Param(int, 30, "measured writes/reads"),
            "shard_bytes": Param(int, 64 * 1024, "bytes per shard")},
    render=render_reliability)
def run_reliability(ctx) -> Dict[str, Any]:
    return {"parity": {str(parity): measure_parity(parity, ctx.ops,
                                                   ctx.shard_bytes)
                       for parity in (0, 1, 2)}}


# --------------------------------------------------------------------------
# E4: node replication vs direct shared access
# --------------------------------------------------------------------------


def _apply_counter(state, operation):
    state["value"] = state.get("value", 0) + operation


def run_nr_mode(mode: str, read_fraction: float, ops: int = 120,
                structure_lines: int = 8) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=2))
    uni = UniFabric(env, cluster)
    rng = SimRng(int(read_fraction * 100))
    nr = NodeReplicatedObject(env, _apply_counter,
                              initial_state={"value": 0})
    handles = {name: nr.attach(uni.heap(name),
                               shared_tier="cpuless-numa")
               for name in ("host0", "host1")}
    regions = {name: cluster.hosts[name].address_map.resolve(
        cluster.hosts[name].remote_base("fam0"))
        for name in ("host0", "host1")}

    def actor(name):
        handle = handles[name]
        region = regions[name]
        for _ in range(ops):
            is_read = rng.bernoulli(read_fraction)
            if mode == "replicated":
                if is_read:
                    yield from handle.read(lambda s: s["value"])
                else:
                    yield from handle.write(1)
            else:
                # Direct: walk the shared structure line by line.
                for step in range(structure_lines):
                    yield from region.backend(0x100000 + step * 64,
                                              64, False)
                if not is_read:
                    yield from region.backend(0x100000, 64, True)

    def go():
        start = env.now
        workers = [env.process(actor(name))
                   for name in ("host0", "host1")]
        yield env.all_of(workers)
        return (env.now - start) / (2 * ops)

    return run_proc(env, go(), horizon=500_000_000_000)


def render_replication(summary: Dict[str, Any],
                       _params: Dict[str, Any]) -> None:
    rows = []
    for fraction, by_mode in summary["fractions"].items():
        rows.append([f"{float(fraction):.0%}", by_mode["direct"],
                     by_mode["replicated"],
                     by_mode["direct"] / by_mode["replicated"]])
    print_table(
        "E4 (extension): shared counter, 2 hosts — direct fabric access "
        "vs node replication",
        ["reads", "direct ns/op", "replicated ns/op", "speedup"], rows)


@experiment(
    "replication",
    "E4: node-replicated object vs direct fabric access, read sweep",
    params={"ops": Param(int, 120, "operations per host"),
            "structure_lines": Param(int, 8,
                                     "lines per direct traversal"),
            "read_fractions": Param(list, [0.5, 0.9, 0.99],
                                    "read fractions swept")},
    render=render_replication)
def run_replication(ctx) -> Dict[str, Any]:
    return {"fractions": {
        str(fraction): {mode: run_nr_mode(mode, fraction, ctx.ops,
                                          ctx.structure_lines)
                        for mode in ("direct", "replicated")}
        for fraction in ctx.read_fractions}}
