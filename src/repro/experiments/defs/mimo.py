"""CS: the section 5 case study — MIMO baseband over UniFabric.

Builder logic absorbed from ``bench_case_study_mimo.py``.  The real
uplink DSP (numpy) runs once for FLOP counts and a bit-exactness
check; the three deployments then replay those costs on the simulated
rack.
"""

from __future__ import annotations

from typing import Any, Dict

from ...core import ETrans, MovementOrchestrator
from ...infra import ClusterSpec, FaaSpec, build_cluster
from ...sim import Environment, SimRng, run_proc
from ..format import print_table
from ..registry import Param, experiment

__all__ = ["stage_bytes", "kernel_flops", "run_deployment"]


def stage_bytes(config) -> Dict[str, tuple]:
    """(input_bytes, output_bytes) per kernel."""
    s, a, u, d = (config.subcarriers, config.antennas, config.users,
                  config.data_symbols)
    frame = config.frame_bytes
    h = s * a * u * 16
    eq = s * u * d * 16
    coded_bytes = (2 * s * u * d) // 8
    return {
        "fft": (frame, frame),
        "channel_estimate": (s * a * u * 16, h),
        "equalize": (frame + h, eq),
        "demodulate": (eq, coded_bytes),
        "decode": (coded_bytes, coded_bytes // 3),
    }


def kernel_flops(config) -> Dict[str, float]:
    """Run the real DSP once; returns per-kernel FLOPs (and checks BER)."""
    import numpy as np

    from ...workloads.mimo import (
        MimoChannel,
        UplinkPipeline,
        make_frame,
    )
    channel = MimoChannel(config)
    pipeline = UplinkPipeline(config)
    rng = SimRng(0).numpy_generator()
    payload = rng.integers(0, 2,
                           size=config.bits_per_frame // 3).astype(np.int8)
    frame = make_frame(config, channel, payload, pipeline.pilot)
    decoded, flops = pipeline.process(frame)
    assert np.array_equal(decoded[:payload.size], payload), \
        "uplink DSP must decode bit-exactly at this SNR"
    return flops


def run_deployment(mode: str, config, flops: Dict[str, float],
                   frames: int = 8, faa_speedup: float = 4.0,
                   chunk: int = 4096) -> float:
    """Total time to process ``frames`` frames; returns per-frame ns."""
    from ...workloads.mimo import KERNEL_ORDER, flops_to_ns
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, faas=[FaaSpec(name="faa0")]))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    remote_base = host.remote_base("fam0")
    local_base = 8 << 20
    sizes = stage_bytes(config)
    speedup = faa_speedup if mode == "unifabric" else 1.0

    def touch(base, nbytes, is_write):
        offset = 0
        while offset < nbytes:
            piece = min(chunk, nbytes - offset)
            yield from host.mem.access(base + offset, is_write, piece)
            offset += piece

    def process_frame(data_base):
        scratch = data_base + (2 << 20)
        for kernel in KERNEL_ORDER:
            in_bytes, out_bytes = sizes[kernel]
            yield from touch(data_base, in_bytes, False)
            yield env.timeout(flops_to_ns(flops[kernel], speedup))
            yield from touch(scratch, out_bytes, True)

    def go():
        start = env.now
        for frame_index in range(frames):
            frame_offset = frame_index * (4 << 20)
            if mode == "all-local":
                yield from process_frame(local_base + frame_offset)
            elif mode == "naive-remote":
                yield from process_frame(remote_base + frame_offset)
            else:
                # Stage the incoming frame locally via an elastic
                # transaction, then compute against local memory.
                trans = ETrans(
                    src_list=[(remote_base + frame_offset,
                               config.frame_bytes)],
                    dst_list=[(local_base + frame_offset,
                               config.frame_bytes)],
                    attributes={"priority": 0})
                handle = engine.submit(trans)
                yield handle.wait()
                yield from process_frame(local_base + frame_offset)
        return (env.now - start) / frames

    return run_proc(env, go(), horizon=500_000_000_000)


def render_case_study_mimo(summary: Dict[str, Any],
                           run_params: Dict[str, Any]) -> None:
    results = summary["modes"]
    local = results["all-local"]
    rows = [[mode, value / 1e3, local / value]
            for mode, value in results.items()]
    print_table(
        f"CS: MIMO uplink per-frame time ({run_params['frames']} "
        f"frames, {run_params['antennas']} ant x "
        f"{run_params['users']} users x "
        f"{run_params['subcarriers']} subcarriers)",
        ["deployment", "us/frame", "vs all-local"], rows)


@experiment(
    "case_study_mimo",
    "CS: MIMO uplink — all-local vs naive-remote vs unifabric",
    params={"frames": Param(int, 8, "frames processed"),
            "faa_speedup": Param(float, 4.0, "FAA kernel speedup"),
            "chunk": Param(int, 4096, "memory-touch chunk bytes"),
            "antennas": Param(int, 16, "base-station antennas"),
            "users": Param(int, 4, "spatial streams"),
            "subcarriers": Param(int, 64, "OFDM subcarriers"),
            "data_symbols": Param(int, 4, "data symbols per frame"),
            "snr_db": Param(float, 25.0, "channel SNR")},
    render=render_case_study_mimo)
def run_case_study_mimo(ctx) -> Dict[str, Any]:
    from ...workloads.mimo import MimoConfig
    config = MimoConfig(antennas=ctx.antennas, users=ctx.users,
                        subcarriers=ctx.subcarriers,
                        data_symbols=ctx.data_symbols,
                        snr_db=ctx.snr_db)
    flops = kernel_flops(config)
    return {"modes": {mode: run_deployment(mode, config, flops,
                                           ctx.frames, ctx.faa_speedup,
                                           ctx.chunk)
                      for mode in ("all-local", "naive-remote",
                                   "unifabric")}}
