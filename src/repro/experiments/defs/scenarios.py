"""Scenario-kind registrations for the canonical telemetry scenarios.

The builders live in :mod:`repro.telemetry.scenarios`; registering
them here lets ``repro trace``/``metrics``/``why``, ``repro bench``
and the sweep driver resolve them by name like any other experiment.
The generic runner attaches telemetry / causal tracing only when the
``metrics`` / ``attribution`` outputs are requested — summaries are
bit-identical either way (pinned by the telemetry tests).
"""

from __future__ import annotations

from ...telemetry.sampler import DEFAULT_INTERVAL_NS
from ...telemetry.scenarios import TELEMETRY_SCENARIOS
from ..registry import ALL_OUTPUTS, ExperimentDef, Param, register

_DESCRIPTIONS = {
    "t2": "Timeline: the Table 2 hierarchy walk, one span per level",
    "starvation": "Timeline: CFC quiet-flow starvation under ramp-up "
                  "credits (C5)",
    "interleave": "Timeline: 64B reads vs 16KB posted writes at a FIFO "
                  "egress (C3)",
}

_SCENARIO_PARAMS = {
    "interval_ns": Param(float, DEFAULT_INTERVAL_NS,
                         "timeline sampler period"),
    "causal_sample": Param(int, 1,
                           "sample 1-in-N transaction roots"),
}

for _name, _build in TELEMETRY_SCENARIOS.items():
    register(ExperimentDef(
        name=_name,
        description=_DESCRIPTIONS[_name],
        run=None,
        params=dict(_SCENARIO_PARAMS),
        kind="scenario",
        outputs=ALL_OUTPUTS,
        scenario_build=_build))
