"""CFC pathology experiments: C5/C6/C7 and the DP#4 arbiter ablation.

Builder logic absorbed from ``bench_cfc_allocation.py``,
``bench_cfc_hol.py``, ``bench_cfc_starvation.py`` and
``bench_dp4_arbiter.py``.
"""

from __future__ import annotations

from typing import Any, Dict

from ... import params
from ...core import UniFabric
from ...fabric import Channel, Packet, PacketKind
from ...infra import ClusterSpec, FamSpec, build_cluster
from ...pcie import (
    CreditDomain,
    FabricManager,
    PortRole,
    RampUpPolicy,
    ReservationPolicy,
    StaticEqualPolicy,
    Topology,
)
from ...sim import Environment, StatSeries, run_proc
from ..format import print_table
from ..registry import Param, experiment

# --------------------------------------------------------------------------
# C5: exponential ramp-up credit allocation starves bursts
# --------------------------------------------------------------------------


def burst_completion(policy_name: str, budget: int = 64,
                     burst: int = 48, service_ns: float = 10.0,
                     warmup_ns: float = 5_000.0) -> float:
    env = Environment()
    if policy_name == "ramp-up":
        policy = RampUpPolicy()
    elif policy_name == "static":
        policy = StaticEqualPolicy()
    else:
        policy = ReservationPolicy()
    domain = CreditDomain(env, budget=budget, policy=policy,
                          rebalance_ns=500.0)
    domain.register("hot")
    domain.register("bursty")
    if policy_name == "reservation":
        policy.reserve("bursty", budget // 2)
        domain.rebalance_now()
    domain.start()

    def serve_one(flow):
        yield env.timeout(service_ns)
        domain.release(flow)

    def hot_flow():
        # A pipelined producer: keeps every granted credit occupied.
        while True:
            yield domain.acquire("hot")
            env.process(serve_one("hot"))

    def bursty_flow():
        yield env.timeout(warmup_ns)    # long idle: ramp-up decays it
        start = env.now
        services = []
        for _ in range(burst):
            yield domain.acquire("bursty")
            services.append(env.process(serve_one("bursty")))
        yield env.all_of(services)
        return env.now - start

    env.process(hot_flow(), name="hot")
    return run_proc(env, bursty_flow(), horizon=10_000_000)


def render_cfc_allocation(summary: Dict[str, Any],
                          _params: Dict[str, Any]) -> None:
    ideal = summary["ideal_ns"]
    rows = [[name, value, value / ideal]
            for name, value in summary["policies"].items()]
    rows.append(["(ideal half-budget)", ideal, 1.0])
    print_table("C5: burst completion under credit-allocation policies",
                ["policy", "burst ns", "vs ideal"], rows)


@experiment(
    "cfc_allocation",
    "C5: burst completion under ramp-up/static/reservation credits",
    params={"budget": Param(int, 64, "credit budget at the egress"),
            "burst": Param(int, 48, "flits in the quiet flow's burst"),
            "service_ns": Param(float, 10.0, "credit hold per flit"),
            "warmup_ns": Param(float, 5_000.0,
                               "idle time before the burst")},
    render=render_cfc_allocation)
def run_cfc_allocation(ctx) -> Dict[str, Any]:
    policies = {name: burst_completion(name, ctx.budget, ctx.burst,
                                       ctx.service_ns, ctx.warmup_ns)
                for name in ("ramp-up", "static", "reservation")}
    # Ideal: the burst pipelines over a fair half of the budget.
    ideal = -(-ctx.burst // (ctx.budget // 2)) * ctx.service_ns
    return {"policies": policies, "ideal_ns": ideal}


# --------------------------------------------------------------------------
# C6: credit-agnostic scheduling causes head-of-line blocking
# --------------------------------------------------------------------------


def run_hol_case(scheduler: str, prio: int, critical_reads: int = 40,
                 flood_writes: int = 400) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("sw0")
    for name in ("critical", "flood"):
        topo.add_endpoint(name)
        topo.connect_endpoint("sw0", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def handler(request):
        yield env.timeout(20.0)
        if request.kind is not PacketKind.MEM_RD:
            return None   # writes are posted in this scenario
        return request.make_response()

    dev.serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    stats = StatSeries("critical")

    def critical():
        port = topo.port_of("critical")
        for _ in range(critical_reads):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64,
                            meta={"prio": prio})
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(150.0)

    def flood():
        port = topo.port_of("flood")
        for _ in range(flood_writes):
            # Same channel/VC as the critical flow: VC separation
            # cannot save it; only the discipline can.
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=1024,
                            meta={"prio": 0})
            yield from port.post(packet)

    env.process(flood())
    run_proc(env, critical())
    return stats


def render_cfc_hol(summary: Dict[str, Any],
                   _params: Dict[str, Any]) -> None:
    rows = [[case, r["mean_ns"], r["p99_ns"]]
            for case, r in summary["cases"].items()]
    print_table("C6: reserved-flow latency under a best-effort flood",
                ["discipline", "mean ns", "p99 ns"], rows)


@experiment(
    "cfc_hol",
    "C6: head-of-line blocking, FIFO vs priority egress discipline",
    params={"critical_reads": Param(int, 40, "reserved-flow reads"),
            "flood_writes": Param(int, 400, "best-effort flood writes")},
    render=render_cfc_hol)
def run_cfc_hol(ctx) -> Dict[str, Any]:
    cases = {}
    for case, scheduler, prio in (
            ("fifo (credit-agnostic)", "fifo", 0),
            ("priority (arbiter)", "priority", 10)):
        stats = run_hol_case(scheduler, prio, ctx.critical_reads,
                             ctx.flood_writes)
        cases[case] = {"mean_ns": stats.mean, "p99_ns": stats.p99}
    return {"cases": cases}


# --------------------------------------------------------------------------
# C7: credit starvation back-propagates across switches
# --------------------------------------------------------------------------


def run_starvation_case(scheduler: str, with_flood: bool,
                        victim_reads: int = 40,
                        flood_writes: int = 600) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("root")
    topo.add_switch("leaf", scheduler_capacity=32)
    topo.connect_switches("root", "leaf")
    for name in ("victim_host", "flood_host"):
        topo.add_endpoint(name)
        topo.connect_endpoint("root", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("hot_dev")
    # The hot device is slow and narrow: the congestion source.
    topo.connect_endpoint("leaf", "hot_dev",
                          link_params=params.LinkParams(lanes=4,
                                                        credits=8))
    topo.add_endpoint("victim_dev")
    topo.connect_endpoint("leaf", "victim_dev")
    FabricManager(topo).configure()

    def slow_handler(request):
        yield env.timeout(500.0)   # a very slow endpoint
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    def fast_handler(request):
        yield env.timeout(10.0)
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    topo.port_of("hot_dev").serve(slow_handler, concurrency=1)
    topo.port_of("victim_dev").serve(fast_handler, concurrency=8)
    stats = StatSeries("victim")

    def victim():
        port = topo.port_of("victim_host")
        dst = topo.endpoints["victim_dev"].global_id
        for _ in range(victim_reads):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(200.0)

    def flood():
        port = topo.port_of("flood_host")
        dst = topo.endpoints["hot_dev"].global_id
        for _ in range(flood_writes):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=1024)
            yield from port.post(packet)

    if with_flood:
        env.process(flood())
    run_proc(env, victim())
    return stats


def render_cfc_starvation(summary: Dict[str, Any],
                          _params: Dict[str, Any]) -> None:
    cases = summary["cases"]
    quiet = cases["fifo quiet"]["mean_ns"]
    rows = [[case, r["mean_ns"], r["p99_ns"], r["mean_ns"] / quiet]
            for case, r in cases.items()]
    print_table("C7: victim-flow latency when a sibling device is "
                "congested (2-level tree)",
                ["case", "mean ns", "p99 ns", "vs quiet"], rows)


@experiment(
    "cfc_starvation",
    "C7: congestion backpropagation to a victim flow, FIFO vs fair",
    params={"victim_reads": Param(int, 40, "victim-flow reads"),
            "flood_writes": Param(int, 600, "flood writes at hot dev")},
    render=render_cfc_starvation)
def run_cfc_starvation(ctx) -> Dict[str, Any]:
    cases = {}
    for case, scheduler, with_flood in (
            ("fifo quiet", "fifo", False),
            ("fifo congested", "fifo", True),
            ("fair congested", "fair", True)):
        stats = run_starvation_case(scheduler, with_flood,
                                    ctx.victim_reads, ctx.flood_writes)
        cases[case] = {"mean_ns": stats.mean, "p99_ns": stats.p99}
    return {"cases": cases}


# --------------------------------------------------------------------------
# A4: DP#4 ablation — the central arbiter, end to end
# --------------------------------------------------------------------------


def _egress_index(cluster, peer: str) -> int:
    switch = cluster.topology.switches["sw0"]
    for index, port in switch.ports.items():
        if port.peer == peer:
            return index
    raise KeyError(peer)


def run_arbiter_case(mode: str, critical_bursts: int = 10,
                     burst_size: int = 8, flood_writes: int = 1200,
                     flood_workers: int = 48,
                     egress_credit_budget: int = 48) -> StatSeries:
    env = Environment()
    scheduler = "priority" if mode == "arbiter" else "fifo"
    # Fast media + a narrow x4 chassis link: the contended resource is
    # the switch egress toward the FAM (the paper's C5/C6 are fabric
    # effects), not the device internals.
    cluster = build_cluster(env, ClusterSpec(
        hosts=2, scheduler=scheduler, control_lane=True,
        fams=[FamSpec(name="fam0", read_extra_ns=0.0,
                      write_extra_ns=0.0, modules=8,
                      link_params=params.LinkParams(lanes=4))]))
    switch = cluster.topology.switches["sw0"]
    egress = _egress_index(cluster, "fam0")
    domain = CreditDomain(env, budget=egress_credit_budget,
                          policy=RampUpPolicy(), rebalance_ns=500.0)
    switch.add_credit_domain(egress, domain)

    uni = UniFabric(env, cluster, with_arbiter=mode == "arbiter")
    if mode == "arbiter":
        uni.arbiter.manage("sw0:fam0", domain)
    else:
        domain.start()

    host0 = cluster.host(0)
    host1 = cluster.hosts["host1"]
    dst = cluster.endpoint_id("fam0")
    stats = StatSeries(mode)
    # Flows are named after switch ingress ports ("in<N>").
    critical_flow = f"in{_egress_index(cluster, 'host0')}"

    def one_read(prio):
        packet = Packet(kind=PacketKind.MEM_RD,
                        channel=Channel.CXL_MEM,
                        src=host0.port.port_id, dst=dst, nbytes=64,
                        meta={"prio": prio})
        yield from host0.port.request(packet)

    def critical():
        prio = 0
        if mode == "arbiter":
            client = uni.arbiter_client("host0")
            grant = yield from client.reserve(
                "sw0:fam0", critical_flow, egress_credit_budget // 2)
            prio = grant["prio"]
        else:
            yield env.timeout(0)
        yield env.timeout(5_000.0)   # let the flood ramp (C5 decay)
        for _ in range(critical_bursts):
            start = env.now
            burst = [env.process(one_read(prio))
                     for _ in range(burst_size)]
            yield env.all_of(burst)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(2_000.0)

    # The flood writes to modules 1..7; the critical reads hit module
    # 0, so the *shared* resource is the fabric egress, not one DRAM
    # bank inside the chassis.
    module_capacity = cluster.fam("fam0").modules[0].capacity_bytes

    def flood_worker(worker, count):
        addr = (1 + worker % 7) * module_capacity + worker * 8192
        for _ in range(count):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=host1.port.port_id, dst=dst, addr=addr,
                            nbytes=4096, meta={"prio": 0})
            yield from host1.port.request(packet)

    for worker in range(flood_workers):  # saturate the narrow link
        env.process(flood_worker(worker,
                                 flood_writes // flood_workers))
    run_proc(env, critical(), horizon=50_000_000_000)
    return stats


def render_dp4_arbiter(summary: Dict[str, Any],
                       run_params: Dict[str, Any]) -> None:
    rows = [[mode, r["mean_ns"], r["p99_ns"]]
            for mode, r in summary["modes"].items()]
    print_table(f"A4 (DP#4): {run_params['burst_size']}-read burst "
                "completion vs a 4KB-write flood at one egress",
                ["mode", "mean burst ns", "p99 ns"], rows)


@experiment(
    "dp4_arbiter",
    "A4: central-arbiter reservation vs vanilla CFC under a flood",
    params={"critical_bursts": Param(int, 10, "measured read bursts"),
            "burst_size": Param(int, 8, "reads per burst"),
            "flood_writes": Param(int, 1200, "total flood writes"),
            "flood_workers": Param(int, 48, "concurrent flood workers"),
            "egress_credit_budget": Param(int, 48,
                                          "credits at the egress")},
    render=render_dp4_arbiter)
def run_dp4_arbiter(ctx) -> Dict[str, Any]:
    modes = {}
    for label, mode in (("vanilla-cfc", "vanilla"),
                        ("arbiter", "arbiter")):
        stats = run_arbiter_case(mode, ctx.critical_bursts,
                                 ctx.burst_size, ctx.flood_writes,
                                 ctx.flood_workers,
                                 ctx.egress_credit_budget)
        modes[label] = {"mean_ns": stats.mean, "p99_ns": stats.p99}
    return {"modes": modes}
