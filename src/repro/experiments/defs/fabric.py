"""Fabric-level experiments: C2/C3/C4, S1, E2, E3.

Builder logic absorbed from ``bench_flit_rtt.py``,
``bench_pcie_interference.py``, ``bench_pcie_interleave.py``,
``bench_sync_vs_async.py``, ``bench_overcommit.py`` and
``bench_interleave.py``.
"""

from __future__ import annotations

from typing import Any, Dict

from ... import params
from ...baselines import CommFabricChannel
from ...fabric import Channel, LinkLayer, Packet, PacketKind, fragment
from ...infra import ClusterSpec, FamSpec, build_cluster
from ...pcie import FabricManager, PortRole, Topology
from ...sim import Environment, StatSeries, run_proc
from ..format import print_table
from ..registry import Param, experiment

# --------------------------------------------------------------------------
# C4: unloaded 64B flit RTT and switch port latency
# --------------------------------------------------------------------------


def build_rtt_path(hops: int = 1):
    """host -> (hops switches) -> zero-service echo device."""
    env = Environment()
    topo = Topology(env)
    names = [f"sw{i}" for i in range(hops)]
    for name in names:
        topo.add_switch(name)
    for a, b in zip(names, names[1:]):
        topo.connect_switches(a, b)
    topo.add_endpoint("host")
    topo.connect_endpoint(names[0], "host", role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint(names[-1], "dev")
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def echo(request):
        yield env.timeout(0)
        return request.make_response()

    dev.serve(echo)
    return env, topo


def measure_rtt(hops: int = 1, pings: int = 10) -> float:
    env, topo = build_rtt_path(hops)
    host = topo.port_of("host")
    rtts = []

    def go():
        for _ in range(pings):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=host.port_id,
                            dst=topo.endpoints["dev"].global_id,
                            nbytes=0)
            start = env.now
            yield from host.request(packet)
            rtts.append(env.now - start)
            yield env.timeout(1_000)   # unloaded: strictly one at a time

    run_proc(env, go())
    return sum(rtts) / len(rtts)


def render_flit_rtt(summary: Dict[str, Any],
                    _params: Dict[str, Any]) -> None:
    rows = []
    for r in summary["rows"]:
        rows.append([f"{r['hops']} switch(es)", r["rtt_ns"],
                     params.UNLOADED_FLIT_RTT_TARGET_NS
                     if r["hops"] == 1 else "-"])
    print_table("C4: unloaded 64B flit RTT",
                ["path", "sim RTT ns", "paper target"], rows)


@experiment(
    "flit_rtt",
    "C4: unloaded 64B flit RTT across 1..N switch hops",
    params={"max_hops": Param(int, 3, "longest switch path measured"),
            "pings": Param(int, 10, "pings averaged per path")},
    render=render_flit_rtt)
def run_flit_rtt(ctx) -> Dict[str, Any]:
    rows = [{"hops": hops, "rtt_ns": measure_rtt(hops, ctx.pings)}
            for hops in range(1, ctx.max_hops + 1)]
    return {"rows": rows,
            "paper_target_ns": params.UNLOADED_FLIT_RTT_TARGET_NS}


# --------------------------------------------------------------------------
# C2: concurrent 64B PCIe writes add ~600 ns of latency
# --------------------------------------------------------------------------


def build_interference(hosts: int, device_service_ns: float):
    env = Environment()
    # The remote chassis hangs off a narrow x4 downstream link (a
    # single FPGA card), while hosts bring x16 uplinks.
    topo = Topology(env)
    topo.add_switch("sw0")
    for h in range(hosts):
        topo.add_endpoint(f"host{h}")
        topo.connect_endpoint("sw0", f"host{h}", role=PortRole.UPSTREAM)
    topo.add_endpoint("fpga")
    topo.connect_endpoint("sw0", "fpga",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    fpga = topo.port_of("fpga")

    def handler(request):
        yield env.timeout(device_service_ns)
        return request.make_response()

    fpga.serve(handler, concurrency=2)
    return env, topo


def one_way_latency(hosts: int, writes_per_host: int = 150,
                    device_service_ns: float = 250.0) -> float:
    """Mean request one-way latency (send -> device starts serving)."""
    env, topo = build_interference(hosts, device_service_ns)
    stats = StatSeries("oneway")
    dst = topo.endpoints["fpga"].global_id

    def client(h):
        port = topo.port_of(f"host{h}")
        for i in range(writes_per_host):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            rtt = env.now - start
            # One-way share: subtract the device service and halve.
            stats.add((rtt - device_service_ns) / 2, time=env.now)

    procs = [env.process(client(h)) for h in range(hosts)]

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return stats.mean


def render_interference(summary: Dict[str, Any],
                        _params: Dict[str, Any]) -> None:
    rows = [[r["hosts"], r["oneway_ns"], r["added_ns"],
             params.PCIE_INTERFERENCE_TARGET_NS
             if r["hosts"] == 16 else "-"]
            for r in summary["rows"]]
    print_table("C2: concurrent 64B writes to one remote chassis",
                ["hosts", "one-way ns", "added ns", "paper scale"], rows)


@experiment(
    "pcie_interference",
    "C2: added one-way latency as hosts pile 64B writes on one chassis",
    params={"hosts_list": Param(list, [1, 2, 4, 8, 16],
                                "fan-in points measured"),
            "writes_per_host": Param(int, 150, "posted writes per host"),
            "device_service_ns": Param(float, 250.0,
                                       "FPGA-side service time")},
    render=render_interference)
def run_interference(ctx) -> Dict[str, Any]:
    unloaded = one_way_latency(1, ctx.writes_per_host,
                               ctx.device_service_ns)
    rows = []
    for hosts in ctx.hosts_list:
        latency = one_way_latency(hosts, ctx.writes_per_host,
                                  ctx.device_service_ns)
        rows.append({"hosts": hosts, "oneway_ns": latency,
                     "added_ns": latency - unloaded})
    return {"rows": rows}


# --------------------------------------------------------------------------
# C3: 64B latency degrades when interleaved with 16KB writes
# --------------------------------------------------------------------------


def run_interleave_case(scheduler: str, with_bulk: bool,
                        reads: int = 40,
                        bulk_writes: int = 80) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("sw0")
    for name in ("reader", "writer"):
        topo.add_endpoint(name)
        topo.connect_endpoint("sw0", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def handler(request):
        yield env.timeout(params.FAM_ACCESS_NS)
        if request.kind is PacketKind.IO_WR:
            return None   # posted
        return request.make_response()

    dev.serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    stats = StatSeries("64B")

    def reader():
        port = topo.port_of("reader")
        for _ in range(reads):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(300.0)

    def writer():
        port = topo.port_of("writer")
        for _ in range(bulk_writes):
            packet = Packet(kind=PacketKind.IO_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=16 * 1024)
            yield from port.post(packet)

    procs = [env.process(reader())]
    if with_bulk:
        procs.append(env.process(writer()))

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return stats


PCIE_INTERLEAVE_CASES = (("alone", "fifo", False),
                         ("fifo+16KB", "fifo", True),
                         ("fair+16KB", "fair", True))


def render_pcie_interleave(summary: Dict[str, Any],
                           _params: Dict[str, Any]) -> None:
    cases = summary["cases"]
    alone = cases["alone"]["mean_ns"]
    rows = [[case, r["mean_ns"], r["p99_ns"], r["mean_ns"] / alone]
            for case, r in cases.items()]
    print_table("C3: 64B read latency vs 16KB write interleaving",
                ["case", "mean ns", "p99 ns", "vs alone"], rows)


@experiment(
    "pcie_interleave",
    "C3: 64B read latency under 16KB write interleaving, FIFO vs fair",
    params={"reads": Param(int, 40, "latency-sensitive 64B reads"),
            "bulk_writes": Param(int, 80, "posted 16KB writes")},
    render=render_pcie_interleave)
def run_pcie_interleave(ctx) -> Dict[str, Any]:
    cases = {}
    for case, scheduler, with_bulk in PCIE_INTERLEAVE_CASES:
        stats = run_interleave_case(scheduler, with_bulk,
                                    ctx.reads, ctx.bulk_writes)
        cases[case] = {"mean_ns": stats.mean, "p99_ns": stats.p99}
    return {"cases": cases}


# --------------------------------------------------------------------------
# S1: synchronous loads vs async DMA
# --------------------------------------------------------------------------


def fabric_latency(nbytes: int) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    base = host.remote_base("fam0")

    def go():
        start = env.now
        yield from host.mem.access(base + 0x100000, False, nbytes)
        return env.now - start

    return run_proc(env, go())


def dma_latency(nbytes: int) -> float:
    env = Environment()
    nic = CommFabricChannel(env)

    def go():
        return (yield from nic.remote_read(nbytes))

    return run_proc(env, go())


def render_sync_vs_async(summary: Dict[str, Any],
                         _params: Dict[str, Any]) -> None:
    rows = [[r["size"], r["fabric_ns"], r["dma_ns"], r["ratio"]]
            for r in summary["rows"]]
    print_table("S1: remote read latency, fabric load/store vs DMA",
                ["bytes", "fabric ns", "comm-fabric ns", "ratio"], rows)


@experiment(
    "sync_vs_async",
    "S1: remote read latency crossover, fabric load/store vs DMA",
    params={"sizes": Param(list, [64, 256, 1024, 4096, 16 * 1024,
                                  64 * 1024],
                           "transfer sizes swept (bytes)")},
    render=render_sync_vs_async)
def run_sync_vs_async(ctx) -> Dict[str, Any]:
    rows = []
    for size in ctx.sizes:
        fabric = fabric_latency(size)
        dma = dma_latency(size)
        rows.append({"size": size, "fabric_ns": fabric, "dma_ns": dma,
                     "ratio": dma / fabric})
    return {"rows": rows}


# --------------------------------------------------------------------------
# E2: link-layer credit overcommitment
# --------------------------------------------------------------------------


def overcommit_throughput(overcommit: float, flits: int = 400,
                          pause_every: int = 16,
                          pause_ns: float = 120.0) -> Dict[str, float]:
    env = Environment()
    link = LinkLayer(env, params.LinkParams(credits=8),
                     overcommit=overcommit, name="l0")
    consumed = []

    def producer():
        for i in range(flits):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM, src=0, dst=1,
                            nbytes=0)
            yield link.send(fragment(packet)[0])

    def consumer():
        count = 0
        while count < flits:
            flit = yield link.rx.get()
            link.consume(flit)
            count += 1
            consumed.append(env.now)
            if count % pause_every == 0:
                yield env.timeout(pause_ns)

    env.process(producer())
    proc = env.process(consumer())

    def wait():
        yield proc

    run_proc(env, wait())
    elapsed = consumed[-1] - consumed[0]
    return {"flits_per_us": (flits - 1) / elapsed * 1e3,
            "max_rx_occupancy": link.max_rx_occupancy}


def render_overcommit(summary: Dict[str, Any],
                      run_params: Dict[str, Any]) -> None:
    rows = [[factor, r["flits_per_us"], r["max_rx_occupancy"]]
            for factor, r in summary["factors"].items()]
    print_table(
        "E2 (extension): credit overcommitment vs a bursty receiver "
        f"(8 credits, pause {run_params['pause_ns']:.0f}ns per "
        f"{run_params['pause_every']} flits)",
        ["overcommit", "flits/us", "peak rx occupancy"], rows)


@experiment(
    "overcommit",
    "E2: link credit overcommitment vs a bursty receiver",
    params={"factors": Param(list, [1.0, 1.5, 2.0, 3.0],
                             "overcommit factors swept"),
            "flits": Param(int, 400, "flits streamed per factor"),
            "pause_every": Param(int, 16, "receiver pause period"),
            "pause_ns": Param(float, 120.0, "receiver pause length")},
    render=render_overcommit)
def run_overcommit(ctx) -> Dict[str, Any]:
    return {"factors": {f"{oc:.1f}x": overcommit_throughput(
        oc, ctx.flits, ctx.pause_every, ctx.pause_ns)
        for oc in ctx.factors}}


# --------------------------------------------------------------------------
# E3: HDM interleaving across FAM chassis
# --------------------------------------------------------------------------


def stream_striped(ways: int, scan_bytes: int = 256 * 1024,
                   chunk: int = 16 * 1024) -> float:
    """Scan ``scan_bytes`` through a ``ways``-way stripe; GB/s."""
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, map_all_fams=False,
        fams=[FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
              for i in range(4)]))
    host = cluster.host(0)
    targets = [(f"fam{i}", cluster.endpoint_id(f"fam{i}"))
               for i in range(ways)]
    region = host.map_interleaved("stripe", targets, size=32 << 20)

    def worker(slice_index, slices):
        offset = slice_index * chunk
        while offset < scan_bytes:
            yield from host.mem.access(region.start + offset, False,
                                       chunk)
            offset += slices * chunk

    def go():
        start = env.now
        slices = 8   # a pipelined stream: 8 chunks in flight
        workers = [env.process(worker(i, slices)) for i in range(slices)]
        yield env.all_of(workers)
        return env.now - start

    elapsed_ns = run_proc(env, go(), horizon=500_000_000_000)
    return scan_bytes / elapsed_ns   # bytes/ns == GB/s


def render_hdm_interleave(summary: Dict[str, Any],
                          run_params: Dict[str, Any]) -> None:
    results = summary["ways"]
    base = results[str(run_params["ways_list"][0])]
    rows = [[f"{ways}-way", gbps, gbps / base]
            for ways, gbps in ((int(k), v) for k, v in results.items())]
    print_table(
        f"E3 (extension): {run_params['scan_bytes'] >> 10}KiB stream "
        "over HDM interleaving",
        ["stripe", "GB/s", "vs 1-way"], rows)


@experiment(
    "hdm_interleave",
    "E3: streaming bandwidth over 1/2/4-way HDM stripes across FAMs",
    params={"ways_list": Param(list, [1, 2, 4], "stripe widths swept"),
            "scan_bytes": Param(int, 256 * 1024, "bytes streamed"),
            "chunk": Param(int, 16 * 1024, "access granularity")},
    render=render_hdm_interleave)
def run_hdm_interleave(ctx) -> Dict[str, Any]:
    return {"ways": {str(ways): stream_striped(ways, ctx.scan_bytes,
                                               ctx.chunk)
                     for ways in ctx.ways_list}}
