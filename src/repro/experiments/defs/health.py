"""The streaming-health experiment: golden-pinned alert timelines.

``fabric_health`` runs a canonical scenario under the
:class:`~repro.telemetry.health.HealthMonitor` and summarizes what the
SLO layer concluded: how many windows closed, which burn-rate alerts
fired and exactly *when* (sim time), and where the anomaly detector
flagged points.  For the starvation scenario it runs both credit
policies — the pathological ``rampup`` default and the ``fair``
control — so the registry pins the §3 C5 contrast end to end: the
quiet-route SLO alert fires at a fixed sim time under RampUpPolicy and
never fires under StaticEqualPolicy.  Tests and the benchmark harness
pin this summary; a model change that moves an alert edge shows up as
a golden diff, not a silent drift.
"""

from __future__ import annotations

from typing import Any, Dict

from ...telemetry.health import DEFAULT_WINDOW_NS, run_health
from ...telemetry.sampler import DEFAULT_INTERVAL_NS
from ..format import print_table
from ..registry import ExperimentError, Param, experiment


def _case(scenario: str, policy: str, window_ns: float,
          interval_ns: float) -> Dict[str, Any]:
    result, report = run_health(scenario, policy=policy,
                                window_ns=window_ns,
                                interval_ns=interval_ns)
    alerts = []
    peak = 0.0
    for slo in report["slos"]:
        peak = max(peak, *(b for b in slo["burn"] if b is not None),
                   0.0)
        for alert in slo["alerts"]:
            for episode in alert["episodes"]:
                alerts.append({"slo": slo["name"],
                               "rule": alert["rule"],
                               "fired_at": episode["fired_at"],
                               "cleared_at": episode["cleared_at"]})
    anomalies = [point["t"] for rule in report["anomalies"]
                 for point in rule["points"]]
    return {"windows": len(report["windows"]),
            "alerts": alerts,
            "anomaly_ns": anomalies,
            "peak_burn": round(peak, 4),
            "txns_attributed": report["trace"]["analyzed"],
            "events_processed": result.env.stats["events_processed"]}


def render_fabric_health(summary: Dict[str, Any],
                         _params: Dict[str, Any]) -> None:
    rows = []
    for case, data in summary["cases"].items():
        first = data["alerts"][0]["fired_at"] if data["alerts"] \
            else "-"
        rows.append([case, data["windows"], len(data["alerts"]),
                     first, data["peak_burn"],
                     len(data["anomaly_ns"])])
    print_table(
        f"fabric health: {summary['scenario']} in "
        f"{summary['window_ns']:,.0f} ns windows",
        ["case", "windows", "alerts", "first fired ns", "peak burn",
         "anomalies"], rows)


@experiment(
    "fabric_health",
    "streaming SLO burn-rate alerts on a canonical scenario",
    params={"scenario": Param(str, "starvation",
                              "t2, starvation or interleave; "
                              "starvation runs both credit policies"),
            "window_ns": Param(float, DEFAULT_WINDOW_NS,
                               "tumbling window width (sim ns)"),
            "interval_ns": Param(float, DEFAULT_INTERVAL_NS,
                                 "sampler cadence (sim ns)")},
    render=render_fabric_health)
def run_fabric_health(ctx) -> Dict[str, Any]:
    from ...telemetry.health import HealthError
    policies = ("rampup", "fair") if ctx.scenario == "starvation" \
        else ("rampup",)
    cases = {}
    for policy in policies:
        try:
            cases[policy] = _case(ctx.scenario, policy, ctx.window_ns,
                                  ctx.interval_ns)
        except (HealthError, ValueError) as exc:
            raise ExperimentError(str(exc)) from None
    return {"scenario": ctx.scenario, "window_ns": ctx.window_ns,
            "cases": cases}
