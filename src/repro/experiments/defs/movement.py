"""Data-placement ablations: A1/A2/A3, graph far memory, S3 launch.

Builder logic absorbed from ``bench_dp1_movement.py``,
``bench_dp2_heap.py``, ``bench_dp3_idempotent.py``,
``bench_graph_far_memory.py`` and ``bench_context_switch.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...baselines import CommFabricChannel, StaticPlacementHeap
from ...core import (
    ETrans,
    FailureInjector,
    FunctionChassis,
    HandlerResult,
    MovementOrchestrator,
    ScalableFunction,
    SequentialPrefetcher,
    Task,
    TaskRuntime,
    UnifiedHeap,
)
from ...core.heap import HeapRuntime
from ...fabric import Channel, Packet, PacketKind
from ...infra import ClusterSpec, FaaSpec, build_cluster
from ...mem import CacheConfig
from ...pcie import FabricManager, PortRole, Topology
from ...sim import Environment, SimRng, StatSeries, run_proc
from ..format import print_table
from ..registry import Param, experiment

__all__ = [
    "run_movement_case", "run_heap_case", "make_task", "run_failure_case",
    "run_graph_mode", "comm_fabric_launch", "fabric_accelerator_launch",
    "scalable_function_launch", "HEAP_TINY_CACHES", "GRAPH_TINY_CACHES",
]

# --------------------------------------------------------------------------
# A1: DP#1 — data movement as a managed service
# --------------------------------------------------------------------------


def run_movement_case(mode: str, lines: int = 512,
                      scans: int = 4) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    orchestrator = MovementOrchestrator(env)
    engine = orchestrator.attach_host(host)
    remote_base = host.remote_base("fam0")
    local_stage = 8 << 20   # staging buffer in local DRAM
    prefetcher = SequentialPrefetcher(env, host, depth=16) \
        if mode == "prefetch" else None

    def go():
        start = env.now
        base = remote_base
        if mode == "managed":
            # Stage the working set with one delegated transaction.
            trans = ETrans(
                src_list=[(remote_base, lines * 64)],
                dst_list=[(local_stage, lines * 64)],
                attributes={"priority": 0})
            handle = engine.submit(trans)
            yield handle.wait()
            base = local_stage
        for _ in range(scans):
            for i in range(lines):
                addr = base + i * 64
                if prefetcher is not None:
                    prefetcher.observe(addr)
                yield from host.mem.access(addr, False)
        return env.now - start

    return run_proc(env, go())


def render_dp1_movement(summary: Dict[str, Any],
                        run_params: Dict[str, Any]) -> None:
    results = summary["modes"]
    naive = results["naive-sync"]
    rows = [[mode, value / 1e3, naive / value]
            for mode, value in results.items()]
    print_table("A1 (DP#1): compute loop over a 32KB remote working "
                f"set, {run_params['scans']} scans",
                ["mode", "total us", "speedup"], rows)


@experiment(
    "dp1_movement",
    "A1: managed data movement vs naive-sync vs prefetch",
    params={"lines": Param(int, 512, "64B lines in the working set"),
            "scans": Param(int, 4, "compute-loop passes")},
    render=render_dp1_movement)
def run_dp1_movement(ctx) -> Dict[str, Any]:
    return {"modes": {mode: run_movement_case(mode, ctx.lines, ctx.scans)
                      for mode in ("naive-sync", "prefetch", "managed")}}


# --------------------------------------------------------------------------
# A2: DP#2 — the node-type-conscious unified heap
# --------------------------------------------------------------------------

#: Deliberately small host caches so the hot set does not fit: the
#: experiment isolates *placement*, not the caching that difference #1
#: already provides (Table 2's L1 row covers that).
HEAP_TINY_CACHES = (
    CacheConfig(name="l1", size_bytes=4 * 1024, assoc=4,
                read_ns=5.4, write_ns=5.4),
    CacheConfig(name="l2", size_bytes=16 * 1024, assoc=8,
                read_ns=13.6, write_ns=12.5),
)


def run_heap_case(mode: str, objects: int = 64, object_bytes: int = 8192,
                  hot_objects: int = 6, accesses: int = 1500,
                  local_bin_bytes: int = 96 * 1024) -> StatSeries:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, cache_configs=HEAP_TINY_CACHES))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    if mode == "unified":
        heap = UnifiedHeap(env, host, engine)
    else:
        placement = "first" if mode == "static-first" else "round-robin"
        heap = StaticPlacementHeap(env, host, engine, placement=placement)
    heap.add_bin("local", start=8 << 20, size=local_bin_bytes,
                 tier="local", is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=32 << 20,
                 tier="cpuless-numa", is_remote=True)
    if mode == "unified":
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=10_000.0,
                              promote_threshold=3.0,
                              demote_threshold=0.5)
        runtime.start()

    # Allocate cold objects first so "first" placement exiles the hot
    # ones (allocated last) to far memory — the adversarial-but-common
    # case static placement cannot fix.
    pointers = [heap.allocate(object_bytes) for _ in range(objects)]
    hot = pointers[-hot_objects:]
    cold = pointers[:-hot_objects]
    rng = SimRng(7)
    stats = StatSeries(mode)

    def go():
        for _ in range(accesses):
            if rng.bernoulli(0.9):
                target = rng.choice(hot)
            else:
                target = rng.choice(cold)
            start = env.now
            yield from target.read(rng.randint(0, 7) * 1024, nbytes=1024)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(50.0)
        return stats

    return run_proc(env, go(), horizon=50_000_000_000)


def render_dp2_heap(summary: Dict[str, Any],
                    run_params: Dict[str, Any]) -> None:
    rows = [[mode, r["mean_ns"], r["p99_ns"]]
            for mode, r in summary["modes"].items()]
    print_table(
        f"A2 (DP#2): {run_params['objects']} objects, "
        f"{run_params['hot_objects']} hot (90% of "
        "accesses), local bin fits ~12",
        ["heap", "mean access ns", "p99 ns"], rows)


@experiment(
    "dp2_heap",
    "A2: unified node-type-conscious heap vs static placement",
    params={"objects": Param(int, 64, "allocated objects"),
            "object_bytes": Param(int, 8192, "bytes per object"),
            "hot_objects": Param(int, 6, "objects taking 90% of accesses"),
            "accesses": Param(int, 1500, "measured accesses"),
            "local_bin_bytes": Param(int, 96 * 1024,
                                     "local-bin capacity")},
    render=render_dp2_heap)
def run_dp2_heap(ctx) -> Dict[str, Any]:
    modes = {}
    for mode in ("static-first", "static-rr", "unified"):
        stats = run_heap_case(mode, ctx.objects, ctx.object_bytes,
                              ctx.hot_objects, ctx.accesses,
                              ctx.local_bin_bytes)
        tail = StatSeries("tail")
        # The last third of accesses: migration has converged.
        for sample in stats.samples[-ctx.accesses // 3:]:
            tail.add(sample)
        modes[mode] = {"mean_ns": stats.mean, "p99_ns": stats.p99,
                       "tail_mean_ns": tail.mean}
    return {"modes": modes}


# --------------------------------------------------------------------------
# A3: DP#3 — idempotent tasks vs full restart
# --------------------------------------------------------------------------


def make_task(regions: int = 24, ops_per_region: int = 8) -> Task:
    task = Task("pipeline")
    for region in range(regions):
        base = region * 0x2000
        for i in range(ops_per_region - 2):
            task.read(base + i * 64)
        task.compute(200.0)
        task.write(base)            # clobbers the region's first read
    return task


def run_failure_case(recovery: str, rate: float, seed: int = 5,
                     regions: int = 24,
                     ops_per_region: int = 8) -> dict:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    injector = FailureInjector(rate=rate, rng=SimRng(seed))
    runtime = TaskRuntime(env, cluster.host(0), injector=injector,
                          recovery=recovery)
    task = make_task(regions, ops_per_region)

    def go():
        return (yield from runtime.execute(task))

    result = run_proc(env, go(), horizon=500_000_000_000)
    return {"completion_us": result.completion_ns / 1e3,
            "replayed_ops": result.replayed_ops,
            "waste": result.waste_fraction,
            "failures": result.failures}


def render_dp3_idempotent(summary: Dict[str, Any],
                          run_params: Dict[str, Any]) -> None:
    rows: List[list] = []
    for rate, by_mode in summary["rates"].items():
        for mode, r in by_mode.items():
            rows.append([f"{float(rate):.2f}", mode, r["completion_us"],
                         r["replayed_ops"], f"{r['waste']:.1%}",
                         r["failures"]])
    print_table(
        f"A3 (DP#3): {run_params['regions']}x"
        f"{run_params['ops_per_region']}-op task under failure "
        "injection",
        ["rate", "recovery", "time us", "replayed", "waste", "failures"],
        rows)


@experiment(
    "dp3_idempotent",
    "A3: idempotent-region replay vs whole-task restart, rate sweep",
    params={"regions": Param(int, 24, "regions per task"),
            "ops_per_region": Param(int, 8, "ops per region"),
            "rates": Param(list, [0.0, 0.01, 0.02, 0.05],
                           "failure rates swept"),
            "failure_seed": Param(int, 5, "failure-injector seed")},
    render=render_dp3_idempotent)
def run_dp3_idempotent(ctx) -> Dict[str, Any]:
    rates = {}
    for rate in ctx.rates:
        rates[str(rate)] = {
            recovery: run_failure_case(recovery, rate, ctx.failure_seed,
                                       ctx.regions, ctx.ops_per_region)
            for recovery in ("idempotent", "restart")}
    return {"rates": rates}


# --------------------------------------------------------------------------
# E5: graph traversal over fabric memory
# --------------------------------------------------------------------------

#: small caches: the graph must not fit (placement is the variable)
GRAPH_TINY_CACHES = (
    CacheConfig(name="l1", size_bytes=2 * 1024, assoc=2,
                read_ns=5.4, write_ns=5.4),
    CacheConfig(name="l2", size_bytes=8 * 1024, assoc=4,
                read_ns=13.6, write_ns=12.5),
)


def run_graph_mode(mode: str, vertices: int = 96,
                   avg_degree: float = 3.0,
                   traversals: int = 4) -> List[float]:
    from ...workloads import CsrGraph, random_graph
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, cache_configs=GRAPH_TINY_CACHES))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=8 << 20, size=1 << 20, tier="local",
                 is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=8 << 20,
                 tier="cpuless-numa", is_remote=True)
    if mode == "unified+runtime":
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=20_000.0,
                              promote_threshold=3.0)
        runtime.start()
    tier = "local" if mode == "local" else "cpuless-numa"
    graph = CsrGraph(env, heap, random_graph(vertices, avg_degree,
                                             SimRng(17)),
                     prefer_tier=tier)
    times: List[float] = []

    def go():
        for _ in range(traversals):
            start = env.now
            yield from graph.bfs(0)
            times.append(env.now - start)
            yield env.timeout(30_000.0)   # let the runtime react

    run_proc(env, go(), horizon=500_000_000_000)
    return times


def render_graph_far_memory(summary: Dict[str, Any],
                            run_params: Dict[str, Any]) -> None:
    rows = []
    for mode, times in summary["modes"].items():
        rows.append([mode] + [t / 1e3 for t in times])
    print_table(
        f"E5 (extension): BFS over a {run_params['vertices']}-vertex "
        f"CSR graph, {run_params['traversals']} traversals (us each)",
        ["placement"] + [f"pass {i}"
                         for i in range(run_params["traversals"])],
        rows)


@experiment(
    "graph_far_memory",
    "E5: BFS over far memory — local vs remote vs unified heap",
    params={"vertices": Param(int, 96, "graph vertices"),
            "avg_degree": Param(float, 3.0, "average out-degree"),
            "traversals": Param(int, 4, "BFS passes")},
    render=render_graph_far_memory)
def run_graph_far_memory(ctx) -> Dict[str, Any]:
    return {"modes": {mode: run_graph_mode(mode, ctx.vertices,
                                           ctx.avg_degree,
                                           ctx.traversals)
                      for mode in ("local", "remote",
                                   "unified+runtime")}}


# --------------------------------------------------------------------------
# S3: difference #4 — fast context switching to FAAs
# --------------------------------------------------------------------------


def comm_fabric_launch(context_bytes: int = 4096, launches: int = 20,
                       kernel_ns: float = 0.0) -> float:
    env = Environment()
    nic = CommFabricChannel(env)

    def go():
        total = 0.0
        for _ in range(launches):
            total += yield from nic.kernel_launch(context_bytes,
                                                  kernel_ns)
        return total / launches

    return run_proc(env, go())


def fabric_accelerator_launch(context_bytes: int = 4096,
                              launches: int = 20,
                              kernel_ns: float = 0.0) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, faas=[FaaSpec(name="faa0")]))
    accel = next(iter(cluster.faa("faa0").accelerators.values()))
    accel.register("kernel", lambda req: (kernel_ns, None))
    host = cluster.host(0)
    dst = cluster.endpoint_id("faa0")

    def go():
        start = env.now
        for _ in range(launches):
            # The context rides as the packet payload: plain stores.
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host.port.port_id, dst=dst,
                            nbytes=context_bytes,
                            meta={"kernel": "kernel"})
            yield from host.port.request(packet)
        return (env.now - start) / launches

    return run_proc(env, go())


def scalable_function_launch(context_bytes: int = 4096,
                             launches: int = 20,
                             kernel_ns: float = 0.0) -> float:
    env = Environment()
    topo = Topology(env)
    topo.add_switch("sw0")
    topo.add_endpoint("host0")
    host_port = topo.connect_endpoint("sw0", "host0",
                                      role=PortRole.UPSTREAM)
    topo.add_endpoint("faa0")
    faa_port = topo.connect_endpoint("sw0", "faa0")
    FabricManager(topo).configure()
    function = ScalableFunction("kernel").on(
        "call", lambda state, msg: HandlerResult(compute_ns=kernel_ns))
    FunctionChassis(env, faa_port, [function])
    dst = topo.endpoints["faa0"].global_id

    def go():
        start = env.now
        for _ in range(launches):
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host_port.port_id, dst=dst,
                            nbytes=context_bytes,
                            meta={"function": "kernel"})
            yield from host_port.request(packet)
        return (env.now - start) / launches

    return run_proc(env, go())


def render_context_switch(summary: Dict[str, Any],
                          run_params: Dict[str, Any]) -> None:
    results = summary["paths"]
    nic = results["comm-fabric (NIC)"]
    rows = [[mode, value, nic / value]
            for mode, value in results.items()]
    print_table(
        f"S3: kernel launch latency ({run_params['context_bytes']}B "
        "context, kernel excluded)",
        ["path", "launch ns", "speedup"], rows)


@experiment(
    "context_switch",
    "S3: FAA kernel-launch latency, NIC vs fabric vs scalable fn",
    params={"context_bytes": Param(int, 4096, "context per launch"),
            "launches": Param(int, 20, "measured launches"),
            "kernel_ns": Param(float, 0.0, "kernel compute time")},
    render=render_context_switch)
def run_context_switch(ctx) -> Dict[str, Any]:
    args = (ctx.context_bytes, ctx.launches, ctx.kernel_ns)
    return {"paths": {
        "comm-fabric (NIC)": comm_fabric_launch(*args),
        "fabric (FAA call)": fabric_accelerator_launch(*args),
        "fabric (scalable fn)": scalable_function_launch(*args),
    }}
