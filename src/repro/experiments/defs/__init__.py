"""Experiment definitions; importing this package registers them all."""

from __future__ import annotations

from . import (cfc, fabric, health, memory, mimo, movement, scenarios,
               tables, topo)

__all__ = ["cfc", "fabric", "health", "memory", "mimo", "movement",
           "scenarios", "tables", "topo"]
