"""Experiment definitions; importing this package registers them all."""

from __future__ import annotations

from . import (cfc, control, fabric, health, memory, mimo, movement,
               scenarios, tables, topo)

__all__ = ["cfc", "control", "fabric", "health", "memory", "mimo",
           "movement", "scenarios", "tables", "topo"]
