"""Table formatting shared by experiment renderers and benchmark CLIs.

Moved here from ``benchmarks/_common.py`` so registry renderers and
the standalone benchmark scripts print through one code path (the
golden-output tests pin them to byte-identical tables).
"""

from __future__ import annotations

from typing import Any, List, Optional

__all__ = ["fmt_row", "print_table"]


def fmt_row(columns: List[Any], widths: List[int]) -> str:
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.1f}")
        else:
            cells.append(f"{value!s:>{width}}")
    return "  ".join(cells)


def print_table(title: str, header: List[str], rows: List[List[Any]],
                widths: Optional[List[int]] = None) -> None:
    widths = widths or [max(12, len(h)) for h in header]
    print(f"\n=== {title} ===")
    print(fmt_row(header, widths))
    print("-" * (sum(widths) + 2 * len(widths)))
    for row in rows:
        print(fmt_row(row, widths))
