"""Run one :class:`ExperimentSpec` and produce its result document.

The result is schema-stable JSON: the resolved parameters (defaults
filled in), the seed, and one entry per requested output.  Bench-kind
experiments return their summary; scenario-kind experiments run
through the telemetry scenario engine, attaching telemetry / causal
tracing only when ``metrics`` / ``attribution`` were asked for (the
summary is bit-identical either way — pinned by tests).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import (
    OUTPUT_ATTRIBUTION,
    OUTPUT_METRICS,
    ExperimentDef,
    get,
)
from .spec import ExperimentSpec

__all__ = ["RunContext", "run_experiment", "run_summary", "render"]

RESULT_SCHEMA = 1
RESULT_TOOL = "repro-experiments"


class RunContext:
    """What a bench-kind run function sees: params + seed.

    Parameters are exposed both as attributes (``ctx.hosts``) and via
    ``ctx["hosts"]``; the seed rides along for experiments that drive
    a :class:`~repro.sim.rng.SimRng`.
    """

    __slots__ = ("params", "seed")

    def __init__(self, params: Dict[str, Any], seed: int) -> None:
        self.params = params
        self.seed = seed

    def __getitem__(self, name: str) -> Any:
        return self.params[name]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.params[name]
        except KeyError:
            raise AttributeError(name) from None


def _run_scenario_outputs(defn: ExperimentDef, spec: ExperimentSpec,
                          params: Dict[str, Any]) -> Dict[str, Any]:
    from ..telemetry.scenarios import run_scenario_build
    want_metrics = OUTPUT_METRICS in spec.outputs
    want_attribution = OUTPUT_ATTRIBUTION in spec.outputs
    result = run_scenario_build(
        defn.name, defn.scenario_build,
        interval_ns=params["interval_ns"],
        telemetry=want_metrics or want_attribution,
        causal=want_attribution,
        causal_sample=params["causal_sample"])
    outputs: Dict[str, Any] = {"summary": result.summary}
    if want_metrics:
        outputs[OUTPUT_METRICS] = result.metrics_snapshot()
    if want_attribution:
        outputs[OUTPUT_ATTRIBUTION] = result.attribution_report()
    return outputs


def run_experiment(spec: ExperimentSpec) -> Dict[str, Any]:
    """Run a validated spec; returns the schema-stable result dict."""
    defn = spec.resolve()
    params = defn.resolve_params(spec.params)
    if defn.kind == "scenario":
        outputs = _run_scenario_outputs(defn, spec, params)
    else:
        outputs = {"summary": defn.run(RunContext(params, spec.seed))}
    return {"schema": RESULT_SCHEMA,
            "tool": RESULT_TOOL,
            "experiment": defn.name,
            "params": params,
            "seed": spec.seed,
            "outputs": outputs}


def run_summary(name: str, seed: int = 0, **params: Any) \
        -> Dict[str, Any]:
    """Convenience: run one experiment, return just its summary."""
    spec = ExperimentSpec(experiment=name, params=params, seed=seed)
    return run_experiment(spec)["outputs"]["summary"]


def render(name: str, summary: Optional[Dict[str, Any]] = None,
           **params: Any) -> None:
    """Print an experiment's human table (running it if needed)."""
    defn = get(name)
    resolved = defn.resolve_params(params)
    if summary is None:
        summary = run_summary(name, **params)
    if defn.render is None:
        import json
        print(json.dumps(summary, indent=2))
        return
    defn.render(summary, resolved)
