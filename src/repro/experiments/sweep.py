"""Deterministic multiprocess parameter sweeps over experiments.

A sweep spec is plain JSON: one experiment, fixed base parameters, and
one list of values per swept axis.  The driver expands the cartesian
product (axes in sorted-name order), runs each point in its own
process (spawn context: full isolation, no inherited simulator state),
and merges the per-point results into one schema-stable report.

Determinism contract:

* point order and per-point seeds depend only on the spec (seeds
  derive via SHA-256, never via process-randomised ``hash()``);
* each point writes its result file atomically, so a killed sweep
  resumes by skipping every point whose file already exists and
  validates against the spec fingerprint;
* the merged report is assembled from point files in index order and
  contains nothing volatile (no wall-clock, no worker identity) — the
  same spec merges byte-identically at any ``--workers`` value.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .registry import OUTPUT_SUMMARY, ExperimentError
from .runner import RESULT_SCHEMA, run_experiment
from .spec import ExperimentSpec, SpecError

__all__ = ["SweepSpec", "SweepConflictError", "run_sweep",
           "load_sweep_spec", "validate_sweep_report",
           "SWEEP_SCHEMA", "SWEEP_TOOL"]

SWEEP_SCHEMA = 1
SWEEP_TOOL = "repro-sweep"
POINT_TOOL = "repro-sweep-point"
MERGED_NAME = "sweep.json"
SPEC_NAME = "spec.json"
POINTS_DIR = "points"


class SweepConflictError(ExperimentError):
    """The output directory belongs to a different sweep spec."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def point_seed(base_seed: int, index: int) -> int:
    """Stable per-point seed: never ``hash()``, which is per-process."""
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass
class SweepSpec:
    """A validated sweep: experiment + base params + swept axes."""

    experiment: str
    axes: Dict[str, List[Any]]
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: int = 0
    outputs: Tuple[str, ...] = (OUTPUT_SUMMARY,)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any],
                  where: str = "sweep spec") -> "SweepSpec":
        _require(isinstance(raw, Mapping),
                 f"{where}: expected a JSON object, "
                 f"got {type(raw).__name__}")
        schema = raw.get("schema", SWEEP_SCHEMA)
        _require(schema == SWEEP_SCHEMA,
                 f"{where}: unsupported schema {schema!r} "
                 f"(this tool writes {SWEEP_SCHEMA})")
        base = ExperimentSpec.from_dict(
            {key: raw[key] for key in ("experiment", "params", "seed",
                                       "outputs") if key in raw},
            where=where)
        _require("sweep" in raw, f"{where}: missing required key 'sweep'")
        axes_raw = raw["sweep"]
        _require(isinstance(axes_raw, Mapping) and axes_raw,
                 f"{where}: 'sweep' must be a non-empty object of "
                 "axis -> list of values")
        axes: Dict[str, List[Any]] = {}
        for axis in sorted(axes_raw):
            values = axes_raw[axis]
            _require(isinstance(values, list) and values,
                     f"{where}: sweep axis {axis!r} must be a "
                     "non-empty list")
            _require(axis not in base.params,
                     f"{where}: axis {axis!r} also appears in 'params'")
            axes[axis] = list(values)
        unknown = sorted(set(raw) - {"schema", "experiment", "params",
                                     "seed", "outputs", "sweep"})
        _require(not unknown,
                 f"{where}: unknown key(s) {', '.join(unknown)}")
        spec = cls(experiment=base.experiment, axes=axes,
                   params=dict(base.params), seed=base.seed,
                   outputs=base.outputs)
        for point in spec.points():   # fail before any process forks
            point.resolve()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": SWEEP_SCHEMA,
                "experiment": self.experiment,
                "params": dict(self.params),
                "seed": self.seed,
                "outputs": list(self.outputs),
                "sweep": {axis: list(values)
                          for axis, values in sorted(self.axes.items())}}

    def fingerprint(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def point_params(self) -> List[Dict[str, Any]]:
        """Cartesian product, axes iterated in sorted-name order."""
        names = sorted(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        return [dict(zip(names, combo)) for combo in combos]

    def points(self) -> List[ExperimentSpec]:
        out = []
        for index, overrides in enumerate(self.point_params()):
            out.append(ExperimentSpec(
                experiment=self.experiment,
                params={**self.params, **overrides},
                seed=point_seed(self.seed, index),
                outputs=self.outputs))
        return out


def load_sweep_spec(path: str) -> SweepSpec:
    """Parse + validate a sweep spec file; SpecError on any problem."""
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise SpecError(f"cannot read sweep spec {path!r}: {exc}") \
            from None
    except json.JSONDecodeError as exc:
        raise SpecError(f"sweep spec {path!r} is not valid JSON: {exc}") \
            from None
    return SweepSpec.from_dict(raw, where=path)


# --------------------------------------------------------------------------
# point execution (worker side)
# --------------------------------------------------------------------------


def _point_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, POINTS_DIR, f"point-{index:04d}.json")


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _run_point(out_dir: str, sweep_dict: Dict[str, Any],
               index: int) -> int:
    """Worker entry: run one point, write its file atomically."""
    sweep = SweepSpec.from_dict(sweep_dict)
    spec = sweep.points()[index]
    result = run_experiment(spec)
    payload = {"schema": SWEEP_SCHEMA,
               "tool": POINT_TOOL,
               "fingerprint": sweep.fingerprint(),
               "index": index,
               "point": sweep.point_params()[index],
               "result": result}
    _atomic_write_json(_point_path(out_dir, index), payload)
    return index


def _point_file_valid(path: str, fingerprint: str, index: int) -> bool:
    """A finished point we may skip on resume: parses and matches."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    return (isinstance(payload, dict)
            and payload.get("tool") == POINT_TOOL
            and payload.get("fingerprint") == fingerprint
            and payload.get("index") == index
            and isinstance(payload.get("result"), dict)
            and payload["result"].get("schema") == RESULT_SCHEMA)


# --------------------------------------------------------------------------
# the driver
# --------------------------------------------------------------------------


def run_sweep(sweep: SweepSpec, out_dir: str, workers: int = 1,
              progress: Optional[Callable[[str], None]] = None) \
        -> Dict[str, Any]:
    """Run (or resume) a sweep into ``out_dir``; returns the report.

    Raises :class:`SweepConflictError` when ``out_dir`` already holds a
    different sweep's spec — never silently mixes results.
    """
    say = progress or (lambda _line: None)
    fingerprint = sweep.fingerprint()
    os.makedirs(os.path.join(out_dir, POINTS_DIR), exist_ok=True)
    spec_path = os.path.join(out_dir, SPEC_NAME)
    if os.path.exists(spec_path):
        try:
            with open(spec_path, encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError):
            existing = None
        if not isinstance(existing, dict) \
                or existing.get("fingerprint") != fingerprint:
            raise SweepConflictError(
                f"output directory {out_dir!r} holds a different sweep "
                f"(spec fingerprint mismatch); pick a fresh --out or "
                f"remove it")
    else:
        _atomic_write_json(spec_path, {"fingerprint": fingerprint,
                                       **sweep.to_dict()})

    points = sweep.points()
    pending = [index for index in range(len(points))
               if not _point_file_valid(_point_path(out_dir, index),
                                        fingerprint, index)]
    say(f"sweep {sweep.experiment}: {len(points)} points, "
        f"{len(points) - len(pending)} already done, "
        f"{len(pending)} to run, workers={max(1, workers)}")

    if pending:
        if workers <= 1:
            for index in pending:
                _run_point(out_dir, sweep.to_dict(), index)
                say(f"  point {index:04d} done")
        else:
            context = multiprocessing.get_context("spawn")
            jobs = [(out_dir, sweep.to_dict(), index)
                    for index in pending]
            with context.Pool(processes=min(workers, len(pending))) \
                    as pool:
                for index in pool.imap_unordered(_run_point_star, jobs):
                    say(f"  point {index:04d} done")

    merged = merge_sweep(sweep, out_dir)
    _atomic_write_json(os.path.join(out_dir, MERGED_NAME), merged)
    say(f"merged report: {os.path.join(out_dir, MERGED_NAME)}")
    return merged


def _run_point_star(job: Tuple[str, Dict[str, Any], int]) -> int:
    return _run_point(*job)


def merge_sweep(sweep: SweepSpec, out_dir: str) -> Dict[str, Any]:
    """Assemble the merged report from point files, in index order."""
    fingerprint = sweep.fingerprint()
    merged_points = []
    for index in range(len(sweep.points())):
        path = _point_path(out_dir, index)
        if not _point_file_valid(path, fingerprint, index):
            raise ExperimentError(
                f"sweep point {index} missing or invalid at {path!r}; "
                f"re-run the sweep to fill it in")
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        result = payload["result"]
        merged_points.append({"index": index,
                              "point": payload["point"],
                              "params": result["params"],
                              "seed": result["seed"],
                              "outputs": result["outputs"]})
    return {"schema": SWEEP_SCHEMA,
            "tool": SWEEP_TOOL,
            "fingerprint": fingerprint,
            "experiment": sweep.experiment,
            "seed": sweep.seed,
            "outputs": list(sweep.outputs),
            "base_params": dict(sweep.params),
            "axes": {axis: list(values)
                     for axis, values in sorted(sweep.axes.items())},
            "points": merged_points}


def validate_sweep_report(report: Any) -> None:
    """Schema check for a merged report; ExperimentError on failure."""
    def check(condition: bool, message: str) -> None:
        if not condition:
            raise ExperimentError(f"invalid sweep report: {message}")

    check(isinstance(report, dict), "not a JSON object")
    check(report.get("schema") == SWEEP_SCHEMA,
          f"schema {report.get('schema')!r} != {SWEEP_SCHEMA}")
    check(report.get("tool") == SWEEP_TOOL,
          f"tool {report.get('tool')!r} != {SWEEP_TOOL!r}")
    for key in ("fingerprint", "experiment"):
        check(isinstance(report.get(key), str) and report[key],
              f"missing {key}")
    check(isinstance(report.get("seed"), int), "missing seed")
    check(isinstance(report.get("axes"), dict) and report["axes"],
          "missing axes")
    check(isinstance(report.get("base_params"), dict),
          "missing base_params")
    outputs = report.get("outputs")
    check(isinstance(outputs, list) and OUTPUT_SUMMARY in outputs,
          "outputs must be a list containing 'summary'")
    points = report.get("points")
    expected = 1
    for values in report["axes"].values():
        check(isinstance(values, list) and values, "malformed axis")
        expected *= len(values)
    check(isinstance(points, list) and len(points) == expected,
          f"expected {expected} points, got "
          f"{len(points) if isinstance(points, list) else 'none'}")
    for position, point in enumerate(points):
        check(isinstance(point, dict), f"point {position} not an object")
        check(point.get("index") == position,
              f"point {position} has index {point.get('index')!r}")
        for key in ("point", "params", "outputs"):
            check(isinstance(point.get(key), dict),
                  f"point {position} missing {key}")
        check(OUTPUT_SUMMARY in point["outputs"],
              f"point {position} missing summary output")
