"""Declarative experiment specs: what to run, with which knobs.

An :class:`ExperimentSpec` names a registered experiment, overrides a
subset of its typed parameters, pins a seed, and lists the output
documents wanted (``summary`` always; ``metrics`` / ``attribution``
for scenario-kind experiments).  Specs are plain JSON on disk, so a
sweep file, a CI job, and a one-off ``repro bench`` all speak the same
language.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple

from .registry import (
    OUTPUT_SUMMARY,
    ExperimentDef,
    ExperimentError,
    get,
)

__all__ = ["ExperimentSpec", "SpecError"]


class SpecError(ExperimentError):
    """A malformed spec document (bad JSON shape, bad field types)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclasses.dataclass
class ExperimentSpec:
    """One resolved-on-demand experiment invocation."""

    experiment: str
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: int = 0
    outputs: Tuple[str, ...] = (OUTPUT_SUMMARY,)

    def resolve(self) -> ExperimentDef:
        """Validate against the registry; returns the definition."""
        defn = get(self.experiment)
        defn.resolve_params(self.params)
        for output in self.outputs:
            if output not in defn.outputs:
                raise SpecError(
                    f"experiment {self.experiment!r} cannot produce "
                    f"output {output!r}; supported: "
                    f"{', '.join(defn.outputs)}")
        return defn

    def to_dict(self) -> Dict[str, Any]:
        return {"experiment": self.experiment,
                "params": dict(self.params),
                "seed": self.seed,
                "outputs": list(self.outputs)}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any],
                  where: str = "spec") -> "ExperimentSpec":
        _require(isinstance(raw, Mapping),
                 f"{where}: expected a JSON object, got {type(raw).__name__}")
        _require("experiment" in raw,
                 f"{where}: missing required key 'experiment'")
        name = raw["experiment"]
        _require(isinstance(name, str) and bool(name),
                 f"{where}: 'experiment' must be a non-empty string")
        params = raw.get("params", {})
        _require(isinstance(params, Mapping),
                 f"{where}: 'params' must be an object")
        seed = raw.get("seed", 0)
        _require(isinstance(seed, int) and not isinstance(seed, bool),
                 f"{where}: 'seed' must be an integer")
        outputs = raw.get("outputs", [OUTPUT_SUMMARY])
        _require(isinstance(outputs, (list, tuple)) and outputs
                 and all(isinstance(o, str) for o in outputs),
                 f"{where}: 'outputs' must be a non-empty list of strings")
        if OUTPUT_SUMMARY not in outputs:
            outputs = [OUTPUT_SUMMARY] + list(outputs)
        unknown = sorted(set(raw) - {"experiment", "params", "seed",
                                     "outputs"})
        _require(not unknown,
                 f"{where}: unknown key(s) {', '.join(unknown)}")
        return cls(experiment=name, params=dict(params), seed=seed,
                   outputs=tuple(outputs))
