"""The experiment registry: every runnable scenario/benchmark, by name.

An :class:`ExperimentDef` is the declarative description of one
experiment: a name, a one-line description, a typed parameter schema
(defaults included), the set of output documents it can produce, and
the function that runs it.  Definitions live in
:mod:`repro.experiments.defs` and register themselves at import time
via the :func:`experiment` decorator; everything else — the benchmark
CLIs in ``benchmarks/``, ``repro bench``/``repro list``, the sweep
driver, the telemetry scenario commands — resolves experiments through
this registry instead of hard-coding builders.

Two kinds exist:

* ``bench`` — the run function builds its own environments and returns
  a JSON-able summary dict (the numbers a benchmark table prints);
* ``scenario`` — the definition carries a ``scenario_build`` callable
  ``(Environment) -> summary`` and the generic runner attaches
  telemetry / causal tracing on demand, so one registration serves
  ``repro trace``, ``repro metrics``, ``repro why`` and sweeps alike.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["Param", "ExperimentDef", "ExperimentError",
           "UnknownExperimentError", "experiment", "register", "get",
           "names", "describe"]


class ExperimentError(ValueError):
    """A spec or registry problem the CLI reports and exits on."""


class UnknownExperimentError(ExperimentError):
    """Asked for a name the registry does not hold."""

    def __init__(self, name: str, kind: Optional[str] = None) -> None:
        self.name = name
        what = "scenario" if kind == "scenario" else "experiment"
        super().__init__(
            f"unknown {what} {name!r}; choose from "
            f"{', '.join(names(kind=kind))}")


@dataclasses.dataclass(frozen=True)
class Param:
    """One typed experiment parameter with its default value."""

    type: type
    default: Any
    help: str = ""

    def coerce(self, name: str, value: Any) -> Any:
        """Validate (and gently widen) a user-supplied value."""
        if self.type is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if self.type is list:
            if not isinstance(value, list):
                raise ExperimentError(
                    f"parameter {name!r} expects a list, "
                    f"got {value!r}")
            return value
        if not isinstance(value, self.type) \
                or (self.type is not bool and isinstance(value, bool)):
            raise ExperimentError(
                f"parameter {name!r} expects {self.type.__name__}, "
                f"got {value!r}")
        return value

    def parse(self, name: str, text: str) -> Any:
        """Parse a ``--set name=value`` CLI string into this type."""
        try:
            if self.type is bool:
                lowered = text.lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ValueError(text)
            if self.type is list:
                import json as _json
                value = _json.loads(text)
                return self.coerce(name, value)
            return self.type(text)
        except (ValueError, TypeError):
            raise ExperimentError(
                f"cannot parse {text!r} as {self.type.__name__} for "
                f"parameter {name!r}") from None


#: Outputs an experiment may be asked for.
OUTPUT_SUMMARY = "summary"
OUTPUT_METRICS = "metrics"
OUTPUT_ATTRIBUTION = "attribution"
ALL_OUTPUTS = (OUTPUT_SUMMARY, OUTPUT_METRICS, OUTPUT_ATTRIBUTION)


@dataclasses.dataclass(frozen=True)
class ExperimentDef:
    """A registered experiment: schema + run function + renderer."""

    name: str
    description: str
    run: Optional[Callable[..., Dict[str, Any]]]
    params: Mapping[str, Param]
    kind: str = "bench"
    outputs: Tuple[str, ...] = (OUTPUT_SUMMARY,)
    scenario_build: Optional[Callable[..., Dict[str, Any]]] = None
    render: Optional[Callable[[Dict[str, Any], Dict[str, Any]],
                              None]] = None

    def defaults(self) -> Dict[str, Any]:
        return {name: param.default
                for name, param in self.params.items()}

    def resolve_params(self, overrides: Mapping[str, Any]) \
            -> Dict[str, Any]:
        """Defaults with validated overrides applied, sorted by name."""
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            known = ", ".join(sorted(self.params)) or "(none)"
            raise ExperimentError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; known: {known}")
        resolved = self.defaults()
        for key, value in overrides.items():
            resolved[key] = self.params[key].coerce(key, value)
        return {key: resolved[key] for key in sorted(resolved)}


_REGISTRY: Dict[str, ExperimentDef] = {}


def register(defn: ExperimentDef) -> ExperimentDef:
    if defn.name in _REGISTRY:
        raise ExperimentError(
            f"experiment {defn.name!r} registered twice")
    bad = [o for o in defn.outputs if o not in ALL_OUTPUTS]
    if bad:
        raise ExperimentError(
            f"experiment {defn.name!r} declares unknown outputs {bad}")
    _REGISTRY[defn.name] = defn
    return defn


def experiment(name: str, description: str,
               params: Optional[Mapping[str, Param]] = None,
               render: Optional[Callable] = None):
    """Decorator: register a bench-kind experiment run function."""
    def wrap(fn: Callable[..., Dict[str, Any]]):
        register(ExperimentDef(name=name, description=description,
                               run=fn, params=dict(params or {}),
                               render=render))
        return fn
    return wrap


def _ensure_loaded() -> None:
    # Definitions self-register on import; cheap after the first call.
    from . import defs   # noqa: F401


def get(name: str, kind: Optional[str] = None) -> ExperimentDef:
    """Look up a definition; raises :class:`UnknownExperimentError`."""
    _ensure_loaded()
    defn = _REGISTRY.get(name)
    if defn is None or (kind is not None and defn.kind != kind):
        raise UnknownExperimentError(name, kind=kind)
    return defn


def names(kind: Optional[str] = None) -> List[str]:
    """Sorted registered names, optionally restricted to one kind."""
    _ensure_loaded()
    return sorted(name for name, defn in _REGISTRY.items()
                  if kind is None or defn.kind == kind)


def describe() -> List[Dict[str, Any]]:
    """One row per experiment, for ``repro list`` and docs."""
    _ensure_loaded()
    return [{"name": name,
             "kind": _REGISTRY[name].kind,
             "description": _REGISTRY[name].description,
             "params": {key: {"type": param.type.__name__,
                              "default": param.default,
                              "help": param.help}
                        for key, param in
                        sorted(_REGISTRY[name].params.items())},
             "outputs": list(_REGISTRY[name].outputs)}
            for name in names()]
