"""repro.experiments: declarative experiment specs, registry, sweeps.

The pieces:

* :mod:`~repro.experiments.registry` — every runnable experiment
  (benchmark builders and telemetry scenarios) registered by name with
  a typed parameter schema;
* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`, the JSON
  description of one invocation (experiment + params + seed + outputs);
* :mod:`~repro.experiments.runner` — run a spec, get a schema-stable
  result document;
* :mod:`~repro.experiments.sweep` — the deterministic multiprocess
  parameter-sweep driver behind ``repro sweep``.
"""

from __future__ import annotations

from .format import fmt_row, print_table
from .registry import (
    ALL_OUTPUTS,
    ExperimentDef,
    ExperimentError,
    Param,
    UnknownExperimentError,
    describe,
    experiment,
    get,
    names,
    register,
)
from .runner import RunContext, render, run_experiment, run_summary
from .spec import ExperimentSpec, SpecError
from .sweep import (
    SweepConflictError,
    SweepSpec,
    load_sweep_spec,
    run_sweep,
    validate_sweep_report,
)

__all__ = [
    "ALL_OUTPUTS",
    "ExperimentDef",
    "ExperimentError",
    "ExperimentSpec",
    "Param",
    "RunContext",
    "SpecError",
    "SweepConflictError",
    "SweepSpec",
    "UnknownExperimentError",
    "describe",
    "experiment",
    "fmt_row",
    "get",
    "load_sweep_spec",
    "names",
    "print_table",
    "register",
    "render",
    "run_experiment",
    "run_summary",
    "run_scenario",
    "run_sweep",
    "validate_sweep_report",
]


def run_scenario(name: str, **kwargs):
    """Back-compat passthrough to the telemetry scenario engine."""
    from ..telemetry.scenarios import run_scenario as _run
    return _run(name, **kwargs)
