"""Cluster builder: assemble a composable rack in a few lines.

Produces the architecture of Figure 1(b): host servers with FHAs,
fabric switches managed by a central fabric manager, and FAM/FAA
chassis behind FEAs.  The default shape is a single-switch star (the
Omega testbed); multi-switch trees and multi-domain fabrics are built
by passing explicit specs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .. import params
from ..mem.dram import DramDevice
from ..mem.nodes import (
    CcNumaNode,
    CpulessExpander,
    MemoryNode,
    NodeKind,
    NonCcNumaNode,
)
from ..pcie.manager import FabricManager
from ..pcie.switch import PortRole
from ..pcie.topology import Topology
from ..sim import Environment, Tracer
from .chassis import Accelerator, AcceleratorChassis, FamChassis
from .host import HostServer

__all__ = ["ClusterSpec", "FamSpec", "FaaSpec", "Cluster", "build_cluster"]


@dataclasses.dataclass
class FamSpec:
    """One memory chassis to instantiate."""

    name: str
    kind: NodeKind = NodeKind.CPULESS_NUMA
    capacity_bytes: int = 1 << 30
    modules: int = 1
    read_extra_ns: float = params.FAM_MEDIA_READ_NS
    write_extra_ns: float = params.FAM_MEDIA_WRITE_NS
    link_params: Optional[params.LinkParams] = None  # per-chassis link


@dataclasses.dataclass
class FaaSpec:
    """One accelerator chassis to instantiate."""

    name: str
    accelerators: int = 1
    setup_ns: float = 0.0


@dataclasses.dataclass
class ClusterSpec:
    """The whole rack."""

    hosts: int = 1
    fams: Sequence[FamSpec] = dataclasses.field(
        default_factory=lambda: [FamSpec(name="fam0")])
    faas: Sequence[FaaSpec] = dataclasses.field(default_factory=list)
    cores_per_host: int = 1
    local_bytes: int = 1 << 30
    scheduler: str = "fair"
    link_params: Optional[params.LinkParams] = None
    control_lane: bool = False
    map_all_fams: bool = True
    cache_configs: Optional[tuple] = None   # override host cache geometry


class Cluster:
    """A built rack: topology + hosts + chassis, ready to run."""

    def __init__(self, env: Environment, topology: Topology,
                 manager: FabricManager,
                 hosts: Dict[str, HostServer],
                 fams: Dict[str, FamChassis],
                 faas: Dict[str, AcceleratorChassis]) -> None:
        self.env = env
        self.topology = topology
        self.manager = manager
        self.hosts = hosts
        self.fams = fams
        self.faas = faas

    def host(self, index: int = 0) -> HostServer:
        return self.hosts[f"host{index}"]

    def fam(self, name_or_index=0) -> FamChassis:
        if isinstance(name_or_index, int):
            return self.fams[list(self.fams)[name_or_index]]
        return self.fams[name_or_index]

    def faa(self, name_or_index=0) -> AcceleratorChassis:
        if isinstance(name_or_index, int):
            return self.faas[list(self.faas)[name_or_index]]
        return self.faas[name_or_index]

    def endpoint_id(self, name: str) -> int:
        return self.topology.endpoints[name].global_id

    def describe(self) -> str:
        lines = ["composable cluster"]
        for host in self.hosts.values():
            lines.append(host.describe())
        for name, fam in self.fams.items():
            module = fam.modules[0]
            lines.append(f"FAM {name}: {len(fam.modules)} x "
                         f"{module.capacity_bytes >> 20} MiB "
                         f"({module.kind.value})")
        for name, faa in self.faas.items():
            lines.append(f"FAA {name}: "
                         f"{sorted(faa.accelerators)} accelerators")
        lines.append(self.topology.describe())
        return "\n".join(lines)


def _make_node(env: Environment, spec: FamSpec, index: int) -> MemoryNode:
    module_capacity = spec.capacity_bytes // spec.modules
    name = f"{spec.name}.mod{index}"
    media = DramDevice(env, name=f"{name}.media")
    common = dict(media=media, read_extra_ns=spec.read_extra_ns,
                  write_extra_ns=spec.write_extra_ns, name=name)
    if spec.kind is NodeKind.CPULESS_NUMA:
        return CpulessExpander(env, module_capacity, **common)
    if spec.kind is NodeKind.CC_NUMA:
        return CcNumaNode(env, module_capacity, **common)
    if spec.kind is NodeKind.NONCC_NUMA:
        return NonCcNumaNode(env, module_capacity, **common)
    raise ValueError(f"cannot build a chassis of kind {spec.kind}"
                     " (COMA clusters are built via repro.mem.ComaCluster)")


def build_cluster(env: Environment, spec: Optional[ClusterSpec] = None,
                  tracer: Optional[Tracer] = None) -> Cluster:
    """Build a star-topology composable rack from a spec."""
    spec = spec or ClusterSpec()
    if spec.hosts < 1:
        raise ValueError("need at least one host")
    topology = Topology(env, link_params=spec.link_params,
                        scheduler=spec.scheduler, tracer=tracer)
    topology.add_switch("sw0")

    hosts: Dict[str, HostServer] = {}
    for h in range(spec.hosts):
        name = f"host{h}"
        topology.add_endpoint(name)
        port = topology.connect_endpoint(
            "sw0", name, role=PortRole.UPSTREAM,
            control_lane=spec.control_lane)
        hosts[name] = HostServer(env, name, port,
                                 local_bytes=spec.local_bytes,
                                 cores=spec.cores_per_host,
                                 cache_configs=spec.cache_configs)

    fams: Dict[str, FamChassis] = {}
    for fam_spec in spec.fams:
        topology.add_endpoint(fam_spec.name)
        port = topology.connect_endpoint(
            "sw0", fam_spec.name, control_lane=spec.control_lane,
            link_params=fam_spec.link_params)
        if fam_spec.kind is NodeKind.CC_NUMA and fam_spec.modules != 1:
            raise ValueError("CC-NUMA chassis must have exactly one module")
        modules = [_make_node(env, fam_spec, i)
                   for i in range(fam_spec.modules)]
        fams[fam_spec.name] = FamChassis(env, port, modules,
                                         name=fam_spec.name)

    faas: Dict[str, AcceleratorChassis] = {}
    for faa_spec in spec.faas:
        topology.add_endpoint(faa_spec.name)
        port = topology.connect_endpoint(
            "sw0", faa_spec.name, control_lane=spec.control_lane)
        accelerators = [
            Accelerator(env, name=f"{faa_spec.name}.acc{i}",
                        setup_ns=faa_spec.setup_ns)
            for i in range(faa_spec.accelerators)]
        faas[faa_spec.name] = AcceleratorChassis(env, port, accelerators,
                                                 name=faa_spec.name)

    manager = FabricManager(topology)
    manager.configure()

    if spec.map_all_fams:
        for host in hosts.values():
            for fam_name, fam in fams.items():
                device_id = topology.endpoints[fam_name].global_id
                host.map_remote(fam_name, device_id, fam.capacity_bytes)

    return Cluster(env, topology, manager, hosts, fams, faas)
