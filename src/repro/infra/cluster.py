"""Cluster builder: assemble a composable rack in a few lines.

Produces the architecture of Figure 1(b): host servers with FHAs,
fabric switches managed by a central fabric manager, and FAM/FAA
chassis behind FEAs.  The default shape is a single-switch star (the
Omega testbed); multi-switch trees and multi-domain fabrics are built
by passing explicit specs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .. import params
from ..mem.dram import DramDevice
from ..mem.nodes import (
    CcNumaNode,
    CpulessExpander,
    MemoryNode,
    NodeKind,
    NonCcNumaNode,
)
from ..pcie.manager import FabricManager
from ..sim import Environment, Tracer
from ..topo import (
    EndpointSpec,
    LinkClassSpec,
    PodSpec,
    SwitchSpec,
    TopologyDescriptor,
    compile_topology,
)
from .chassis import Accelerator, AcceleratorChassis, FamChassis
from .host import HostServer

__all__ = ["ClusterSpec", "FamSpec", "FaaSpec", "Cluster",
           "build_cluster", "cluster_descriptor"]


@dataclasses.dataclass
class FamSpec:
    """One memory chassis to instantiate."""

    name: str
    kind: NodeKind = NodeKind.CPULESS_NUMA
    capacity_bytes: int = 1 << 30
    modules: int = 1
    read_extra_ns: float = params.FAM_MEDIA_READ_NS
    write_extra_ns: float = params.FAM_MEDIA_WRITE_NS
    link_params: Optional[params.LinkParams] = None  # per-chassis link


@dataclasses.dataclass
class FaaSpec:
    """One accelerator chassis to instantiate."""

    name: str
    accelerators: int = 1
    setup_ns: float = 0.0


@dataclasses.dataclass
class ClusterSpec:
    """The whole rack."""

    hosts: int = 1
    fams: Sequence[FamSpec] = dataclasses.field(
        default_factory=lambda: [FamSpec(name="fam0")])
    faas: Sequence[FaaSpec] = dataclasses.field(default_factory=list)
    cores_per_host: int = 1
    local_bytes: int = 1 << 30
    scheduler: str = "fair"
    link_params: Optional[params.LinkParams] = None
    control_lane: bool = False
    map_all_fams: bool = True
    cache_configs: Optional[tuple] = None   # override host cache geometry
    # Optional declarative wiring: when given, the fabric (switches,
    # links, endpoint attachments) compiles from this descriptor
    # instead of the derived single-switch star.  The descriptor must
    # provide an endpoint for every host/FAM/FAA name in this spec.
    descriptor: Optional[TopologyDescriptor] = None


class Cluster:
    """A built rack: topology + hosts + chassis, ready to run."""

    def __init__(self, env: Environment, topology: Topology,
                 manager: FabricManager,
                 hosts: Dict[str, HostServer],
                 fams: Dict[str, FamChassis],
                 faas: Dict[str, AcceleratorChassis]) -> None:
        self.env = env
        self.topology = topology
        self.manager = manager
        self.hosts = hosts
        self.fams = fams
        self.faas = faas

    def host(self, index: int = 0) -> HostServer:
        return self.hosts[f"host{index}"]

    def fam(self, name_or_index=0) -> FamChassis:
        if isinstance(name_or_index, int):
            return self.fams[list(self.fams)[name_or_index]]
        return self.fams[name_or_index]

    def faa(self, name_or_index=0) -> AcceleratorChassis:
        if isinstance(name_or_index, int):
            return self.faas[list(self.faas)[name_or_index]]
        return self.faas[name_or_index]

    def endpoint_id(self, name: str) -> int:
        return self.topology.endpoints[name].global_id

    def describe(self) -> str:
        lines = ["composable cluster"]
        for host in self.hosts.values():
            lines.append(host.describe())
        for name, fam in self.fams.items():
            module = fam.modules[0]
            lines.append(f"FAM {name}: {len(fam.modules)} x "
                         f"{module.capacity_bytes >> 20} MiB "
                         f"({module.kind.value})")
        for name, faa in self.faas.items():
            lines.append(f"FAA {name}: "
                         f"{sorted(faa.accelerators)} accelerators")
        lines.append(self.topology.describe())
        return "\n".join(lines)


def _make_node(env: Environment, spec: FamSpec, index: int) -> MemoryNode:
    module_capacity = spec.capacity_bytes // spec.modules
    name = f"{spec.name}.mod{index}"
    media = DramDevice(env, name=f"{name}.media")
    common = dict(media=media, read_extra_ns=spec.read_extra_ns,
                  write_extra_ns=spec.write_extra_ns, name=name)
    if spec.kind is NodeKind.CPULESS_NUMA:
        return CpulessExpander(env, module_capacity, **common)
    if spec.kind is NodeKind.CC_NUMA:
        return CcNumaNode(env, module_capacity, **common)
    if spec.kind is NodeKind.NONCC_NUMA:
        return NonCcNumaNode(env, module_capacity, **common)
    raise ValueError(f"cannot build a chassis of kind {spec.kind}"
                     " (COMA clusters are built via repro.mem.ComaCluster)")


def _link_class_from_params(lp: params.LinkParams) -> LinkClassSpec:
    return LinkClassSpec(lanes=lp.lanes, gt_per_s=lp.gt_per_s,
                         flit_bytes=lp.flit_bytes,
                         propagation_ns=lp.propagation_ns,
                         credits=lp.credits)


def cluster_descriptor(spec: ClusterSpec,
                       name: str = "cluster_star") -> TopologyDescriptor:
    """Derive the single-switch star descriptor a spec implies.

    This is the declarative twin of the historical hand-wired builder:
    hosts upstream, FAM/FAA chassis downstream, one switch, per-FAM
    link classes where a :class:`FamSpec` overrides the link.  The t2
    committed shape (``repro/topo/shapes/t2_star.json``) is exactly
    this derivation for ``ClusterSpec(hosts=1)`` — pinned by tests.
    """
    link_classes: Dict[str, LinkClassSpec] = {}
    default_link_class = None
    if spec.link_params is not None:
        link_classes["cluster"] = _link_class_from_params(spec.link_params)
        default_link_class = "cluster"
    endpoints = [
        EndpointSpec(name=f"host{h}", switch="sw0", role="upstream",
                     control_lane=spec.control_lane)
        for h in range(spec.hosts)]
    for fam_spec in spec.fams:
        fam_class = None
        if fam_spec.link_params is not None:
            link_classes[fam_spec.name] = \
                _link_class_from_params(fam_spec.link_params)
            fam_class = fam_spec.name
        endpoints.append(EndpointSpec(
            name=fam_spec.name, switch="sw0", link_class=fam_class,
            control_lane=spec.control_lane))
    for faa_spec in spec.faas:
        endpoints.append(EndpointSpec(
            name=faa_spec.name, switch="sw0",
            control_lane=spec.control_lane))
    return TopologyDescriptor(
        name=name,
        description=f"single-switch star: {spec.hosts} host(s), "
                    f"{len(spec.fams)} FAM, {len(spec.faas)} FAA",
        scheduler=spec.scheduler,
        link_classes=link_classes,
        default_link_class=default_link_class,
        pods=(PodSpec(name="pod0", domain=0,
                      switches=(SwitchSpec(name="sw0"),),
                      endpoints=tuple(endpoints)),)).validate()


def build_cluster(env: Environment, spec: Optional[ClusterSpec] = None,
                  tracer: Optional[Tracer] = None) -> Cluster:
    """Build a composable rack from a spec.

    The fabric wiring always goes through the declarative topology
    compiler: either the spec's explicit ``descriptor`` or the derived
    single-switch star (:func:`cluster_descriptor`).  Hosts and
    chassis then attach to the compiled endpoints by name.
    """
    spec = spec or ClusterSpec()
    if spec.hosts < 1:
        raise ValueError("need at least one host")
    descriptor = spec.descriptor or cluster_descriptor(spec)
    fabric = compile_topology(descriptor, env, tracer=tracer,
                              configure=False)
    topology = fabric.topology

    expected = ([f"host{h}" for h in range(spec.hosts)]
                + [fam_spec.name for fam_spec in spec.fams]
                + [faa_spec.name for faa_spec in spec.faas])
    missing = [name for name in expected
               if name not in topology.endpoints]
    if missing:
        raise ValueError(
            f"descriptor {descriptor.name!r} has no endpoint(s) "
            f"{', '.join(missing)} required by the cluster spec; it "
            f"provides: {', '.join(sorted(topology.endpoints))}")

    hosts: Dict[str, HostServer] = {}
    for h in range(spec.hosts):
        name = f"host{h}"
        hosts[name] = HostServer(env, name, topology.port_of(name),
                                 local_bytes=spec.local_bytes,
                                 cores=spec.cores_per_host,
                                 cache_configs=spec.cache_configs)

    fams: Dict[str, FamChassis] = {}
    for fam_spec in spec.fams:
        if fam_spec.kind is NodeKind.CC_NUMA and fam_spec.modules != 1:
            raise ValueError("CC-NUMA chassis must have exactly one module")
        modules = [_make_node(env, fam_spec, i)
                   for i in range(fam_spec.modules)]
        fams[fam_spec.name] = FamChassis(env,
                                         topology.port_of(fam_spec.name),
                                         modules, name=fam_spec.name)

    faas: Dict[str, AcceleratorChassis] = {}
    for faa_spec in spec.faas:
        accelerators = [
            Accelerator(env, name=f"{faa_spec.name}.acc{i}",
                        setup_ns=faa_spec.setup_ns)
            for i in range(faa_spec.accelerators)]
        faas[faa_spec.name] = AcceleratorChassis(
            env, topology.port_of(faa_spec.name), accelerators,
            name=faa_spec.name)

    manager = fabric.manager
    manager.configure()

    if spec.map_all_fams:
        for host in hosts.values():
            for fam_name, fam in fams.items():
                device_id = topology.endpoints[fam_name].global_id
                host.map_remote(fam_name, device_id, fam.capacity_bytes)

    return Cluster(env, topology, manager, hosts, fams, faas)
