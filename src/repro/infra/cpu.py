"""The host CPU core model: synchronous loads/stores with limited MLP.

Section 3, difference #1: memory-fabric requests are generated
transparently by the memory hierarchy and the pipeline stalls until
they answer, so "the throughput of a memory fabric that a core can
drive depends on its channel bandwidth capacity and the depth of the
CPU pipeline".  The model is exactly that: a front end that issues one
memory op per ``issue_ns``, and a window of ``window`` outstanding ops
(the LSQ/MSHR budget).  Throughput is therefore
``min(1/issue_ns, window/latency)`` — the formula the Table 2 MOPS
calibration in EXPERIMENTS.md is built on.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Tuple

from ..sim import Environment, Event, Resource, StatSeries

__all__ = ["CpuCore", "DEFAULT_ISSUE_NS"]

#: Front-end issue interval fitted to Table 2's L1 row:
#: 1 / 357.4 MOPS = 2.8 ns per op.
DEFAULT_ISSUE_NS = 1e3 / 357.4


class CpuCore:
    """One core driving a :class:`~repro.mem.HostMemorySystem`."""

    def __init__(self, env: Environment, mem,
                 issue_ns: float = DEFAULT_ISSUE_NS,
                 window: int = 4,
                 name: str = "core") -> None:
        if issue_ns <= 0:
            raise ValueError(f"issue_ns must be > 0, got {issue_ns}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.env = env
        self.mem = mem
        self.issue_ns = issue_ns
        self.window = window
        self.name = name
        self.ops_retired = 0

    def run(self, trace: Iterable[Tuple[int, bool]],
            window: Optional[int] = None,
            latencies: Optional[StatSeries] = None
            ) -> Generator[Event, None, StatSeries]:
        """Execute a trace of ``(addr, is_write)`` ops; returns latencies.

        The generator completes when every op has retired.  ``window``
        overrides the core's default outstanding-op budget (benchmarks
        use this to calibrate per-level MLP).
        """
        stats = latencies if latencies is not None \
            else StatSeries(f"{self.name}.lat")
        env = self.env
        slots = Resource(env, capacity=window or self.window)
        inflight = []
        # Hoisted per-trace: one issue tick per op makes this loop the
        # per-op overhead of every benchmark.  The issue timeouts come
        # from (and return to) the environment's free list, so the
        # steady state reuses one pooled Timeout per issue slot.
        timeout = env.timeout
        process = env.process
        request_slot = slots.request
        one_op = self._one_op
        append = inflight.append
        issue_ns = self.issue_ns
        op_name = f"{self.name}.op"
        for addr, is_write in trace:
            yield timeout(issue_ns)
            request = request_slot()
            yield request
            append(process(one_op(addr, is_write, slots, request, stats),
                           name=op_name))
        if inflight:
            yield env.all_of(inflight)
        return stats

    def _one_op(self, addr: int, is_write: bool, slots: Resource,
                request, stats: StatSeries) -> Generator[Event, None, None]:
        start = self.env.now
        yield from self.mem.access(addr, is_write)
        stats.add(self.env.now - start, time=self.env.now)
        self.ops_retired += 1
        slots.release(request)
