"""FAM and FAA chassis: standalone boxes behind one endpoint adapter.

Section 2.2: a FAM chassis encloses several memory modules plus a
controller (the Omega testbed holds six CXL E3.S modules); an FAA
chassis holds accelerators (GigaIO Fabrex: up to eight).  The
controller steers requests to the right module/accelerator and is the
natural place for the chassis-level concurrency limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from .. import params
from ..fabric.flit import Packet, PacketKind
from ..fabric.transaction import TransactionPort
from ..mem.nodes import MemoryNode, NodeKind
from ..sim import Environment, Event
from .adapters import FabricEndpointAdapter

__all__ = ["FamChassis", "AcceleratorChassis", "Accelerator"]


class FamChassis:
    """A fabric-attached memory chassis: modules + controller + FEA."""

    def __init__(self, env: Environment, port: TransactionPort,
                 modules: List[MemoryNode],
                 name: str = "fam-chassis") -> None:
        if not modules:
            raise ValueError("a FAM chassis needs at least one module")
        self.env = env
        self.name = name
        self.modules = list(modules)
        self.port = port
        self._module_capacity = modules[0].capacity_bytes
        if any(m.capacity_bytes != self._module_capacity for m in modules):
            raise ValueError("all modules in a chassis must be equal-sized")
        # Coherent modules serialize their directory updates; plain
        # expanders enjoy module-level parallelism.
        coherent = any(m.kind is NodeKind.CC_NUMA for m in modules)
        if coherent and len(modules) > 1:
            # Snoop addresses must match host-visible offsets 1:1, so a
            # coherent chassis holds exactly one module.
            raise ValueError("a CC-NUMA chassis holds exactly one module")
        self.fea = FabricEndpointAdapter(
            env, port, self._controller,
            concurrency=1 if coherent else max(8, 2 * len(modules)),
            name=f"{name}.fea")

    @property
    def capacity_bytes(self) -> int:
        return self._module_capacity * len(self.modules)

    def module_of(self, addr: int) -> MemoryNode:
        index = addr // self._module_capacity
        if not 0 <= index < len(self.modules):
            raise IndexError(f"address {addr:#x} beyond chassis capacity")
        return self.modules[index]

    def _controller(self, request: Packet
                    ) -> Generator[Event, None, Optional[Packet]]:
        """Steer the request to its module (FEA integrity duty)."""
        try:
            module = self.module_of(request.addr)
        except IndexError:
            response = request.make_response(nbytes=0)
            response.meta["fault"] = True
            return response
        # Modules address locally within their slice.
        offset = request.addr % self._module_capacity
        steered = Packet(kind=request.kind, channel=request.channel,
                         src=request.src, dst=request.dst, addr=offset,
                         nbytes=request.nbytes, tag=request.tag,
                         birth_ns=request.birth_ns, meta=request.meta)
        response = yield from module.service(steered, self.port)
        if response is not None:
            response.addr = request.addr
        return response


class Accelerator:
    """One fabric-attached accelerator: a registry of named kernels.

    A kernel is ``fn(request) -> (compute_ns, result)``; the chassis
    charges the compute time on the simulated clock and ships the
    result back in the response metadata.
    """

    def __init__(self, env: Environment, name: str,
                 setup_ns: float = 0.0) -> None:
        self.env = env
        self.name = name
        self.setup_ns = setup_ns
        self._kernels: Dict[str, Callable] = {}
        self.invocations = 0

    def register(self, kernel_name: str, fn: Callable) -> None:
        if kernel_name in self._kernels:
            raise ValueError(f"kernel {kernel_name!r} already registered")
        self._kernels[kernel_name] = fn

    def kernels(self) -> List[str]:
        return sorted(self._kernels)

    def invoke(self, request: Packet
               ) -> Generator[Event, None, Optional[Packet]]:
        kernel_name = request.meta.get("kernel")
        fn = self._kernels.get(kernel_name)
        response = request.make_response()
        if fn is None:
            response.meta["fault"] = True
            response.meta["error"] = f"unknown kernel {kernel_name!r}"
            return response
        if self.setup_ns:
            yield self.env.timeout(self.setup_ns)
        compute_ns, result = fn(request)
        if compute_ns > 0:
            yield self.env.timeout(compute_ns)
        self.invocations += 1
        response.meta["result"] = result
        return response


class AcceleratorChassis:
    """A fabric-attached accelerator chassis (FAA) behind one FEA."""

    def __init__(self, env: Environment, port: TransactionPort,
                 accelerators: List[Accelerator],
                 name: str = "faa-chassis") -> None:
        if not accelerators:
            raise ValueError("an FAA chassis needs at least one accelerator")
        self.env = env
        self.name = name
        self.accelerators = {a.name: a for a in accelerators}
        if len(self.accelerators) != len(accelerators):
            raise ValueError("accelerator names must be unique")
        self.port = port
        self.fea = FabricEndpointAdapter(
            env, port, self._controller,
            concurrency=len(accelerators), name=f"{name}.fea")

    def _controller(self, request: Packet
                    ) -> Generator[Event, None, Optional[Packet]]:
        target = request.meta.get("accelerator")
        accel = self.accelerators.get(target)
        if accel is None and len(self.accelerators) == 1:
            accel = next(iter(self.accelerators.values()))
        if accel is None:
            response = request.make_response(nbytes=0)
            response.meta["fault"] = True
            response.meta["error"] = f"no accelerator {target!r}"
            yield self.env.timeout(0)
            return response
        response = yield from accel.invoke(request)
        return response
