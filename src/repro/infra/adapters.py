"""Fabric host adapters (FHA) and endpoint adapters (FEA).

Figure 1(b) of the paper: the FHA sits at a host root port and converts
channel requests into fabric flits; the FEA sits next to a remote
device, parses flits and drives device-dependent primitives.  Both add
a fixed protocol-processing latency and keep counters; the FEA also
performs the integrity/steering duties the paper mentions (modelled as
bounds checking and per-module steering in the chassis layer).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from .. import params
from ..fabric.flit import Channel, Packet, PacketKind
from ..fabric.transaction import TransactionPort
from ..sim import Environment, Event

__all__ = ["FabricHostAdapter", "FabricEndpointAdapter"]


class FabricHostAdapter:
    """The host-side adapter: turns memory accesses into fabric requests.

    Provides region backends for the host's
    :class:`~repro.mem.AddressMap` (loads/stores to remote FAM ranges)
    and answers inbound CXL.cache snoops against the host's caches.
    """

    def __init__(self, env: Environment, port: TransactionPort,
                 mem_system=None,
                 processing_ns: float = params.FHA_PROCESSING_NS,
                 name: str = "fha") -> None:
        self.env = env
        self.port = port
        self.mem_system = mem_system
        self.processing_ns = processing_ns
        self.name = name
        self.remote_reads = 0
        self.remote_writes = 0
        self.snoops_served = 0
        self._region_bases: Dict[int, int] = {}
        port.serve(self._handle, concurrency=4)

    def register_region(self, device_id: int, host_base: int) -> None:
        """Record where ``device_id``'s memory sits in host addresses.

        Needed to translate inbound snoop addresses (device-relative)
        back into the host physical addresses the caches are indexed by.
        """
        self._region_bases[device_id] = host_base

    # -- outbound: the backend installed in the host address map ----------

    def remote_backend(self, device_id: int):
        """Backend callable for one remote region (device ``device_id``)."""

        def backend(addr: int, nbytes: int, is_write: bool,
                    trace=None) -> Generator[Event, None, None]:
            yield self.env.timeout(self.processing_ns)
            kind = PacketKind.MEM_WR if is_write else PacketKind.MEM_RD
            packet = Packet(kind=kind, channel=Channel.CXL_MEM,
                            src=self.port.port_id, dst=device_id,
                            addr=addr, nbytes=nbytes, trace=trace)
            response = yield from self.port.request(packet)
            if response.meta.get("fault"):
                raise PermissionError(
                    f"{self.name}: device {device_id} faulted access "
                    f"to {addr:#x}")
            if is_write:
                self.remote_writes += 1
            else:
                self.remote_reads += 1

        return backend

    def evict_notice(self, device_id: int,
                     addr: int) -> Generator[Event, None, None]:
        """Tell a CC-NUMA home node this host dropped/flushed a line."""
        packet = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                        src=self.port.port_id, dst=device_id, addr=addr,
                        nbytes=params.CACHELINE_BYTES,
                        meta={"evict": True})
        yield from self.port.request(packet)

    # -- inbound: snoops from CC-NUMA home nodes ---------------------------

    def _handle(self, request: Packet
                ) -> Generator[Event, None, Optional[Packet]]:
        yield self.env.timeout(self.processing_ns)
        if request.kind is PacketKind.SNP_INV:
            self.snoops_served += 1
            dirty = False
            if self.mem_system is not None:
                base = self._region_bases.get(request.src, 0)
                dirty = self.mem_system.invalidate(base + request.addr)
            response = request.make_response()
            response.meta["was_dirty"] = dirty
            if dirty:
                # The dirty data rides back with the snoop response.
                response.nbytes = params.CACHELINE_BYTES
            return response
        if request.kind in (PacketKind.IO_RD, PacketKind.IO_WR,
                            PacketKind.MEM_RD, PacketKind.MEM_WR):
            # A host does not serve memory; fault politely.
            response = request.make_response(nbytes=0)
            response.meta["fault"] = True
            return response
        return None


class FabricEndpointAdapter:
    """The device-side adapter fronting a FAM/FAA chassis.

    Adds protocol processing latency and steers requests into the
    chassis controller's handler.
    """

    def __init__(self, env: Environment, port: TransactionPort,
                 device_handler,
                 processing_ns: float = params.FEA_PROCESSING_NS,
                 concurrency: int = 4,
                 name: str = "fea") -> None:
        self.env = env
        self.port = port
        self.processing_ns = processing_ns
        self.name = name
        self.requests_served = 0
        self._device_handler = device_handler
        port.serve(self._handle, concurrency=concurrency)

    def _handle(self, request: Packet
                ) -> Generator[Event, None, Optional[Packet]]:
        yield self.env.timeout(self.processing_ns)
        self.requests_served += 1
        response = yield from self._device_handler(request)
        return response
