"""Composable-infrastructure components (Figure 1b of the paper).

Hosts (:mod:`repro.infra.host`, :mod:`repro.infra.cpu`), adapters
(:mod:`repro.infra.adapters`), FAM/FAA chassis
(:mod:`repro.infra.chassis`), and the rack-level builder
(:mod:`repro.infra.cluster`).
"""

from .adapters import FabricEndpointAdapter, FabricHostAdapter
from .chassis import Accelerator, AcceleratorChassis, FamChassis
from .cluster import (
    Cluster,
    ClusterSpec,
    FaaSpec,
    FamSpec,
    build_cluster,
)
from .cpu import DEFAULT_ISSUE_NS, CpuCore
from .host import HostServer, flat_dram_backend

__all__ = [
    "FabricEndpointAdapter",
    "FabricHostAdapter",
    "Accelerator",
    "AcceleratorChassis",
    "FamChassis",
    "Cluster",
    "ClusterSpec",
    "FaaSpec",
    "FamSpec",
    "build_cluster",
    "DEFAULT_ISSUE_NS",
    "CpuCore",
    "HostServer",
    "flat_dram_backend",
]
