"""A host server: cores + cache hierarchy + local DIMMs + FHA.

The host side of Figure 1(b).  The address map is laid out as
``[0, local_size)`` for local DIMMs, followed by one region per mapped
FAM chassis — mirroring how CXL HDM decoders splice device memory into
the host physical address space.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from .. import params
from ..fabric.transaction import TransactionPort
from ..mem.hierarchy import AddressMap, HostMemorySystem, Region
from ..sim import Environment, Event
from .adapters import FabricHostAdapter
from .cpu import CpuCore

__all__ = ["HostServer", "flat_dram_backend"]


def flat_dram_backend(env: Environment,
                      read_ns: float = params.LOCAL_MEM_READ_NS,
                      write_ns: float = params.LOCAL_MEM_WRITE_NS):
    """Local-DIMM backend charging Table 2's calibrated flat latencies."""

    def backend(addr: int, nbytes: int,
                is_write: bool) -> Generator[Event, None, None]:
        lines = max(1, -(-nbytes // params.CACHELINE_BYTES))
        base = write_ns if is_write else read_ns
        # Additional lines stream at DRAM bus rate.
        yield env.timeout(base + (lines - 1) * params.DRAM_BUS_NS_PER_CACHELINE)

    return backend


class HostServer:
    """One server: cores, hierarchy, local DRAM, and a fabric port."""

    def __init__(self, env: Environment, name: str,
                 port: TransactionPort,
                 local_bytes: int = 1 << 30,
                 cores: int = 1,
                 cache_configs=None) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.env = env
        self.name = name
        self.local_bytes = local_bytes
        self.address_map = AddressMap()
        self.address_map.add(Region(
            start=0, size=local_bytes, name=f"{name}.dram",
            backend=flat_dram_backend(env)))
        self.mem = HostMemorySystem(env, self.address_map,
                                    cache_configs=cache_configs,
                                    name=f"{name}.mem")
        self.fha = FabricHostAdapter(env, port, mem_system=self.mem,
                                     name=f"{name}.fha")
        self.cores: List[CpuCore] = [
            CpuCore(env, self.mem, name=f"{name}.core{i}")
            for i in range(cores)]
        self._remote_regions: Dict[str, Region] = {}

    @property
    def port(self) -> TransactionPort:
        return self.fha.port

    # -- mapping remote memory -------------------------------------------

    def map_remote(self, chassis_name: str, device_id: int,
                   size: int) -> Region:
        """Splice a FAM chassis into this host's address space."""
        if chassis_name in self._remote_regions:
            raise ValueError(f"{chassis_name!r} already mapped")
        start = self.address_map.span
        region = Region(start=start, size=size,
                        name=chassis_name,
                        backend=self.fha.remote_backend(device_id),
                        is_remote=True)
        self.address_map.add(region)
        self.fha.register_region(device_id, start)
        self._remote_regions[chassis_name] = region
        return region

    def map_interleaved(self, region_name: str,
                        targets: List[tuple],
                        size: int,
                        granularity: int = 4096) -> Region:
        """Stripe one region across several FAM chassis (HDM interleave).

        ``targets`` is a list of ``(chassis_name, device_id)``; chunk
        ``i`` of ``granularity`` bytes lands on target ``i % n``.  Like
        CXL's HDM interleaving, this aggregates bandwidth: a streaming
        scan drives all chassis (and their switch ports) in parallel.
        """
        if region_name in self._remote_regions:
            raise ValueError(f"{region_name!r} already mapped")
        if not targets:
            raise ValueError("need at least one interleave target")
        if granularity < params.CACHELINE_BYTES:
            raise ValueError("granularity below one cacheline")
        backends = [self.fha.remote_backend(device_id)
                    for _, device_id in targets]
        ways = len(targets)

        def interleaved_backend(addr: int, nbytes: int,
                                is_write: bool
                                ) -> Generator[Event, None, None]:
            # Split the access at granularity boundaries and issue the
            # pieces to their chassis concurrently.
            pieces = []
            offset = 0
            while offset < nbytes:
                piece_addr = addr + offset
                chunk_index = piece_addr // granularity
                way = chunk_index % ways
                within = piece_addr % granularity
                take = min(granularity - within, nbytes - offset)
                # Device-local address: collapse the stripe.
                local = (chunk_index // ways) * granularity + within
                pieces.append((way, local, take))
                offset += take
            if len(pieces) == 1:
                way, local, take = pieces[0]
                yield from backends[way](local, take, is_write)
                return
            fetches = [self.env.process(
                _piece(backends[way], local, take, is_write))
                for way, local, take in pieces]
            yield self.env.all_of(fetches)

        def _piece(backend, local, take, is_write):
            yield from backend(local, take, is_write)

        start = self.address_map.span
        region = Region(start=start, size=size, name=region_name,
                        backend=interleaved_backend, is_remote=True)
        self.address_map.add(region)
        for _, device_id in targets:
            self.fha.register_region(device_id, start)
        self._remote_regions[region_name] = region
        return region

    def remote_region(self, chassis_name: str) -> Region:
        return self._remote_regions[chassis_name]

    def remote_base(self, chassis_name: str) -> int:
        return self._remote_regions[chassis_name].start

    # -- convenience ------------------------------------------------------

    def core(self, index: int = 0) -> CpuCore:
        return self.cores[index]

    def describe(self) -> str:
        lines = [f"host {self.name}: {len(self.cores)} cores, "
                 f"{self.local_bytes >> 20} MiB local DRAM"]
        for region in self.address_map.regions():
            kind = "remote" if region.is_remote else "local"
            lines.append(f"  [{region.start:#014x}, {region.end:#014x}) "
                         f"{kind:<6} {region.name}")
        return "\n".join(lines)
