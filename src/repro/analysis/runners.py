"""Canonical sanitized experiment runs for ``repro check --sanitize``.

Each runner builds a fresh ``Environment(sanitize=True)``, drives a
representative slice of an experiment through it, closes with an
explicit drain audit, and returns the sanitizer plus a small summary
dict.  They double as the CI smoke for the sanitizer head: a clean
tree must produce zero findings on every runner.

* ``t2``      — the Table 2 memory-hierarchy latency walk (one host,
  local + remote reads and writes through the full cache/fabric
  stack).
* ``credits`` — a contended :class:`~repro.pcie.credits.CreditDomain`
  under the ramp-up policy with hot and bursty flows; conservation is
  audited at every periodic rebalance.
* ``arbiter`` — reservation traffic through the DP#4
  :class:`~repro.core.arbiter.FabricArbiter`, so every control
  message doubles as a conservation checkpoint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from .sanitizers import RuntimeSanitizer

__all__ = ["SANITIZED_EXPERIMENTS", "run_sanitized"]


def _run_t2() -> Tuple[RuntimeSanitizer, Dict[str, Any]]:
    from ..infra import ClusterSpec, build_cluster
    from ..sim import Environment

    env = Environment(sanitize=True)
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    base = host.remote_base("fam0")
    latencies: Dict[str, float] = {}

    def measure():
        cases = [("local_read", 0x40000, False),
                 ("local_write", 0x80000, True),
                 ("remote_read", base + 0x40000, False),
                 ("remote_write", base + 0x80000, True)]
        for label, addr, is_write in cases:
            start = env.now
            yield from host.mem.access(addr, is_write)
            latencies[label] = env.now - start

    proc = env.process(measure(), name="t2-measure")
    env.run(until=10_000_000, until_event=proc)
    sanitizer = env.sanitizer
    sanitizer.on_drain()
    return sanitizer, {"experiment": "t2", "latencies_ns": latencies,
                       "events": env.stats["events_processed"]}


def _run_credits() -> Tuple[RuntimeSanitizer, Dict[str, Any]]:
    from ..pcie.credits import CreditDomain, RampUpPolicy
    from ..sim import Environment

    env = Environment(sanitize=True)
    domain = CreditDomain(env, budget=32, policy=RampUpPolicy(),
                          rebalance_ns=1_000.0, name="sanity-egress")
    for flow in ("hot", "bursty", "quiet"):
        domain.register(flow)
    domain.start()
    done = {"hot": 0, "bursty": 0, "quiet": 0}

    def traffic(flow: str, hold_ns: float, gap_ns: float, count: int):
        for _ in range(count):
            yield domain.acquire(flow)
            yield env.timeout(hold_ns)
            domain.release(flow)
            done[flow] += 1
            if gap_ns:
                yield env.timeout(gap_ns)

    env.process(traffic("hot", 40.0, 0.0, 400), name="hot")
    env.process(traffic("bursty", 60.0, 900.0, 40), name="bursty")
    env.process(traffic("quiet", 50.0, 4_000.0, 10), name="quiet")
    env.run(until=60_000.0)
    domain.rebalance_now()
    sanitizer = env.sanitizer
    sanitizer.on_drain()
    return sanitizer, {"experiment": "credits", "completed": dict(done),
                       "grants": {f: domain.granted(f)
                                  for f in domain.flow_names()},
                       "events": env.stats["events_processed"]}


def _run_arbiter() -> Tuple[RuntimeSanitizer, Dict[str, Any]]:
    from ..core import UniFabric
    from ..infra import ClusterSpec, build_cluster
    from ..pcie.credits import CreditDomain
    from ..sim import Environment, run_proc

    env = Environment(sanitize=True)
    cluster = build_cluster(env, ClusterSpec(hosts=1, control_lane=True))
    uni = UniFabric(env, cluster, with_arbiter=True)
    domain = CreditDomain(env, budget=24, name="egress0")
    for flow in ("a", "b"):
        domain.register(flow)
    uni.arbiter.manage("egress0", domain)
    client = uni.arbiter_client("host0")
    replies = []

    def control():
        replies.append((yield from client.reserve("egress0", "a", 8)))
        replies.append((yield from client.reserve("egress0", "b", 4)))
        replies.append((yield from client.query("egress0")))
        replies.append((yield from client.reclaim("egress0", "a")))

    run_proc(env, control())
    sanitizer = env.sanitizer
    sanitizer.on_drain()
    return sanitizer, {"experiment": "arbiter",
                       "control_messages": uni.arbiter.control_messages,
                       "grants": replies[2].get("grants", {}),
                       "events": env.stats["events_processed"]}


#: experiment name -> runner (the ``--sanitize`` choices)
SANITIZED_EXPERIMENTS: Dict[str, Callable[
    [], Tuple[RuntimeSanitizer, Dict[str, Any]]]] = {
    "t2": _run_t2,
    "credits": _run_credits,
    "arbiter": _run_arbiter,
}


def run_sanitized(name: str) -> Tuple[RuntimeSanitizer, Dict[str, Any]]:
    """Run one named experiment under the sanitizers."""
    try:
        runner = SANITIZED_EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown sanitized experiment {name!r}; choose from "
            f"{sorted(SANITIZED_EXPERIMENTS)}") from None
    return runner()
