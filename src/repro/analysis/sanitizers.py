"""Runtime sanitizers for the simulation kernel (``sanitize=True``).

``Environment(sanitize=True)`` attaches a :class:`RuntimeSanitizer`
that watches four invariant families while a model runs:

* **Credit conservation** — every :class:`~repro.pcie.credits.
  CreditDomain` built on a sanitized environment self-registers and is
  audited at each rebalance: per flow,
  ``available + in_flight == granted + retire_debt`` (the debt term
  accounts for the domain's lazy shrink).  A credit that leaves a pool
  without accounting is a *leak*; a release without an acquire is a
  *negative credit*.
* **Event lifecycle** — events still pending at drain time with
  waiters attached are reported as scheduled-but-never-triggered, and
  a callback appended to an already-processed (dead) event — which
  would silently never fire — is reported at the append site.
* **Write-write races** — two different processes mutating the same
  :class:`~repro.sim.resources.Store` / :class:`~repro.sim.resources.
  Resource` at the same timestamp: deterministic today, but the order
  is an accident of sequence numbers, so any refactor can flip it.
* **Drain-time deadlocks** — when the event queue drains while
  processes are still alive, each blocked process is named along with
  the event/resource it waits on.

The sanitizer is strictly additive: it never changes scheduling, so a
sanitized run is event-for-event identical to a plain one (only event
*recycling* is disabled, which is invisible to model code).  The cost
is about a 4x slowdown of the pure-timeout kernel microbenchmark (the
worst case: every event pays the bookkeeping and pooling is off) —
see ``docs/ARCHITECTURE.md`` — which is why it is opt-in and off the
PR-1 fast path.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["Finding", "RuntimeSanitizer", "SanitizerError"]


class SanitizerError(AssertionError):
    """Raised by :meth:`RuntimeSanitizer.assert_clean` on findings."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One invariant violation observed at runtime."""

    kind: str        # credit-leak | credit-negative | stale-event |
                     # dead-event-callback | write-race | deadlock
    time: float      # simulated time of detection
    message: str

    def format(self) -> str:
        return f"[{self.kind}] t={self.time:.1f}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _DeadCallbacks(list):
    """Guard installed as ``event.callbacks`` once an event is dead.

    Appending a callback here can never fire it; record the mistake
    instead of silently dropping it.  (The kernel itself never appends
    — it routes processed events through the re-fire path.)
    """

    __slots__ = ("_sanitizer", "_event_desc")

    def __init__(self, sanitizer: "RuntimeSanitizer",
                 event_desc: str) -> None:
        super().__init__()
        self._sanitizer = sanitizer
        self._event_desc = event_desc

    def append(self, callback: Any) -> None:
        self._sanitizer.note(
            "dead-event-callback",
            f"callback {_callback_name(callback)} added to already-"
            f"processed {self._event_desc}; it will never fire")
        super().append(callback)


def _callback_name(callback: Any) -> str:
    owner = getattr(callback, "__self__", None)
    name = getattr(callback, "__qualname__",
                   getattr(callback, "__name__", repr(callback)))
    if owner is not None and hasattr(owner, "name"):
        return f"{name} of {owner.name!r}"
    return str(name)


def _describe_event(event: Any) -> str:
    """A human-readable name for an event and, if any, its resource."""
    cls = type(event).__name__
    resource = getattr(event, "resource", None)
    if resource is not None:
        return (f"{cls} on Resource(capacity={resource.capacity}, "
                f"users={len(resource.users)}, "
                f"queued={resource.queue_len})")
    store = getattr(event, "store", None)
    if store is not None:
        return (f"{cls} on {type(store).__name__}"
                f"(len={len(store.items)}, capacity={store.capacity})")
    container = getattr(event, "container", None)
    if container is not None:
        return (f"{cls} on Container(level={container.level}, "
                f"capacity={container.capacity})")
    name = getattr(event, "name", None)
    if name:
        return f"{cls} {name!r}"
    return f"{cls} at {id(event):#x}"


class RuntimeSanitizer:
    """Per-environment invariant watcher (see the module docstring).

    All hooks are cheap when nothing is wrong; findings accumulate in
    :attr:`findings` and are also available as a formatted
    :meth:`report`.
    """

    def __init__(self, env: Any) -> None:
        self.env = env
        self.findings: List[Finding] = []
        #: pending (not yet processed) events, id -> event
        self._live: Dict[int, Any] = {}
        #: registered credit domains: id -> (label, domain)
        self._domains: Dict[int, Tuple[str, Any]] = {}
        #: last writer per Store/Resource: id -> (time, process, opname)
        self._writes: Dict[int, Tuple[float, Any, str]] = {}
        #: objects already reported at drain, to keep on_drain idempotent
        self._drain_reported: Set[int] = set()

    # -- bookkeeping -------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.findings

    def note(self, kind: str, message: str) -> None:
        # One finding per distinct problem: a leaked credit would
        # otherwise re-report at every subsequent rebalance.
        for finding in self.findings:
            if finding.kind == kind and finding.message == message:
                return
        self.findings.append(Finding(kind=kind, time=self.env.now,
                                     message=message))

    # -- kernel hooks ------------------------------------------------------

    def on_created(self, event: Any) -> None:
        """An event entered the world (called from ``Event.__init__``)."""
        self._live[id(event)] = event

    def on_processed(self, event: Any) -> None:
        """An event's callbacks ran; it is dead from here on.

        Non-pooled model-visible events get a :class:`_DeadCallbacks`
        guard so late ``callbacks.append`` calls are caught.  Pooled
        kernel classes (``Timeout``, the internal hooks) keep the
        ``None`` sentinel; model code never appends to those, and the
        kernel's processed-event checks rely on it.
        """
        self._live.pop(id(event), None)
        from ..sim import engine as _engine
        cls = event.__class__
        if cls is not _engine.Timeout and cls is not _engine._Hook:
            event.callbacks = _DeadCallbacks(self, _describe_event(event))

    def on_write(self, obj: Any, opname: str) -> None:
        """A Store/Resource state mutation; detect same-time racers."""
        now = self.env.now
        writer = self.env.active_process
        key = id(obj)
        prev = self._writes.get(key)
        if prev is not None and prev[0] == now and prev[1] is not writer:
            first = getattr(prev[1], "name", "<top-level>")
            second = getattr(writer, "name", "<top-level>")
            self.note(
                "write-race",
                f"write-write race on {type(obj).__name__} at "
                f"{id(obj):#x}: {prev[2]} by {first!r} and {opname} by "
                f"{second!r} at the same timestamp; the outcome depends "
                "on scheduling order only")
        self._writes[key] = (now, writer, opname)

    def on_drain(self) -> None:
        """The event queue drained: report deadlocks and stale events.

        Daemon processes (``env.process(..., daemon=True)`` — port
        receivers, link senders, rebalance timers) idle forever by
        design, so they are exempt, as are events only daemons wait on.
        When called before the queue has actually drained (a runner
        stopping at ``until_event``), pending events could still wake
        everyone, so only the credit audit runs.
        """
        from ..sim import engine as _engine
        if self.env.peek() != float("inf"):
            self.audit_credit_domains()
            return
        blocked_targets: Set[int] = set()
        for key in sorted(self._live):
            event = self._live[key]
            if not isinstance(event, _engine.Process):
                continue
            if event.daemon or event.triggered \
                    or id(event) in self._drain_reported:
                continue
            target = event.target
            self._drain_reported.add(id(event))
            if target is not None:
                blocked_targets.add(id(target))
                self.note(
                    "deadlock",
                    f"process {event.name!r} is blocked forever on "
                    f"{_describe_event(target)} (queue drained)")
            else:
                self.note(
                    "deadlock",
                    f"process {event.name!r} never finished and waits "
                    "on nothing (queue drained)")
        for key in sorted(self._live):
            event = self._live[key]
            if isinstance(event, _engine.Process):
                continue
            if event.triggered or id(event) in self._drain_reported:
                continue
            waiters = [w for w in [event._waiter,
                                   *(event.callbacks or ())]
                       if w is not None]
            if id(event) in blocked_targets or not waiters:
                continue   # already named via the blocked process / inert
            if all(getattr(getattr(w, "__self__", None), "daemon", False)
                   for w in waiters):
                continue   # only idle services wait on it
            self._drain_reported.add(id(event))
            self.note(
                "stale-event",
                f"{_describe_event(event)} was created and waited on "
                "but never triggered")
        self.audit_credit_domains()

    def audit_credit_domains(self) -> None:
        """Re-audit every registered credit domain right now."""
        for _key, (label, domain) in sorted(self._domains.items()):
            self.check_credit_domain(domain, label=label)

    # -- credit domains ----------------------------------------------------

    def register_credit_domain(self, domain: Any,
                               label: Optional[str] = None) -> None:
        """Track a CreditDomain; audited at rebalance and at drain."""
        self._domains[id(domain)] = (label or domain.name, domain)

    def check_credit_domain(self, domain: Any,
                            label: Optional[str] = None) -> None:
        """Audit ``available + in_flight == granted + retire_debt``."""
        name = label or domain.name
        for problem in domain.conservation_problems():
            kind = ("credit-negative" if "negative" in problem
                    else "credit-leak")
            self.note(kind, f"credit domain {name!r}: {problem}")

    # -- reporting ---------------------------------------------------------

    def report(self) -> str:
        if not self.findings:
            return "sanitizer: clean (no findings)"
        lines = [f"sanitizer: {len(self.findings)} finding(s)"]
        lines.extend("  " + f.format() for f in self.findings)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "tool": "fcc-sanitize",
            "count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def assert_clean(self) -> None:
        if self.findings:
            raise SanitizerError(self.report())
