"""FCC007: a telemetry span created but not used as a context manager.

``span(env, ...)`` and ``telemetry.span(...)`` return a context
manager; the duration event is only recorded when the ``with`` block
closes it.  A bare call —

    span(env, "phase.compute", track="app")     # leaked!

— allocates the span, records nothing, and silently drops the timing
the caller believed it captured.  The same goes for storing the
context manager and never entering it.

Accepted usages:

* the call is a ``with`` item (``with span(env, ...):``);
* the call is assigned to a name that some ``with`` item in the same
  module later enters (``s = span(...)`` ... ``with s:``);
* the call is returned, so entering it is the caller's job;
* the call is handed to ``ExitStack.enter_context(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["SpanContextCheck"]


def _is_span_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "span"
    return isinstance(func, ast.Attribute) and func.attr == "span"


class SpanContextCheck(LintCheck):
    code = "FCC007"
    slug = "span-context"
    summary = ("span(...) not used as a context manager; the duration "
               "is recorded only when the `with` block exits")
    rationale = (
        "span(env, ...) returns a context manager; calling it without "
        "entering it (`with span(...):`) records nothing — the begin/end "
        "pair fires in __enter__/__exit__ — so the timed region silently "
        "vanishes from every trace.")
    example_fix = (
        "bad:   span(env, \"switch.fwd\"); do_work()\n"
        "good:  with span(env, \"switch.fwd\"):\n           do_work()")

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        allowed: Set[int] = set()
        with_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expression = item.context_expr
                    if _is_span_call(expression):
                        allowed.add(id(expression))
                    elif isinstance(expression, ast.Name):
                        with_names.add(expression.id)
            elif isinstance(node, ast.Return):
                if _is_span_call(node.value):
                    allowed.add(id(node.value))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "enter_context"):
                for argument in node.args:
                    if _is_span_call(argument):
                        allowed.add(id(argument))
        # Second pass, once all `with <name>:` entries are known:
        # assigning to a with-entered name is the deferred-enter idiom.
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and _is_span_call(node.value)
                    and all(isinstance(target, ast.Name)
                            and target.id in with_names
                            for target in node.targets)):
                allowed.add(id(node.value))
        for node in ast.walk(tree):
            if _is_span_call(node) and id(node) not in allowed:
                yield self.hit(
                    source, node,
                    "span context manager is never entered; wrap the "
                    "timed region in `with span(...):` (or return the "
                    "manager / hand it to enter_context)")
