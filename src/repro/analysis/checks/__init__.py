"""The fcc-check rule set.

============  ==================  ==================================
code          slug                flags
============  ==================  ==================================
``FCC001``    ``seeded-rng``      ``random`` / ``numpy.random``
                                  module use instead of the seeded
                                  :class:`repro.sim.SimRng` stream
``FCC002``    ``wall-clock``      ``time.time`` / ``datetime.now`` /
                                  ``perf_counter`` calls that break
                                  replayability (``benchmarks/`` is
                                  exempt by design)
``FCC003``    ``generator-return``  a generator process returning a
                                  value before its first ``yield``
``FCC004``    ``mutable-state``   mutable default arguments and
                                  module-level mutable containers
``FCC005``    ``unordered-iter``  iteration over unordered ``set``
                                  values feeding deterministic code
``FCC006``    ``eager-format``    f-string / ``%`` / ``.format``
                                  arguments built per-event inside
                                  ``record``/``span``/``instant``/
                                  ``inc``/``observe`` telemetry calls
``FCC007``    ``span-context``    ``span(...)`` context managers that
                                  are never entered, so the duration
                                  event is silently dropped
============  ==================  ==================================

To add a rule: subclass :class:`repro.analysis.lint.LintCheck` in a
new module here, give it the next free ``FCCnnn`` code and a slug, and
append the class to :data:`CHECKS`.  Fixture-test it in
``tests/test_analysis_lint.py`` (one bad fixture per rule, and keep
``tests/fixtures/lint/clean.py`` clean).

These rules are all *per-file*.  Their interprocedural closure —
FCC101..FCC103 over the whole package at once — lives in
:mod:`repro.analysis.program`.
"""

from .eager_format import EagerFormatCheck
from .generator_return import GeneratorReturnCheck
from .mutable_state import MutableStateCheck
from .rng_use import SeededRngCheck
from .span_context import SpanContextCheck
from .unordered_iter import UnorderedIterCheck
from .wall_clock import WallClockCheck

#: every registered rule, in code order
CHECKS = [
    SeededRngCheck,
    WallClockCheck,
    GeneratorReturnCheck,
    MutableStateCheck,
    UnorderedIterCheck,
    EagerFormatCheck,
    SpanContextCheck,
]

__all__ = ["CHECKS", "SeededRngCheck", "WallClockCheck",
           "GeneratorReturnCheck", "MutableStateCheck",
           "UnorderedIterCheck", "EagerFormatCheck",
           "SpanContextCheck"]
