"""FCC003: a generator process must not return a value before yielding.

Model processes are generator functions: the kernel only sees them at
``yield`` points.  A ``return value`` that executes before the first
``yield`` makes the process finish in zero simulated time with the
value smuggled out through ``StopIteration`` — almost always a
refactor accident (someone converted a plain function into a process,
or an early-exit short-circuits the whole model).  Nothing crashes;
the experiment just silently loses a participant.

The rule flags the statically certain case: inside a generator
function (a ``def`` whose own body contains ``yield``/``yield from``,
ignoring nested defs), an *unconditional* ``return <value>`` at the
top level of the body before the first ``yield`` — every execution of
such a generator ends without yielding.  Conditional early exits
(``if miss: return False`` ahead of the main loop) are the idiomatic
zero-sim-time fast path of ``yield from`` helpers and are allowed, as
are bare ``return`` guards.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["GeneratorReturnCheck"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class GeneratorReturnCheck(LintCheck):
    code = "FCC003"
    slug = "generator-return"
    summary = ("generator process returns a value before its first "
               "yield (finishes in zero simulated time)")
    rationale = (
        "A simulation process is a generator; `return x` before the first "
        "yield means the process ends at spawn time without ever blocking "
        "on an event, so its whole body runs at t=0 and any value is "
        "silently discarded by env.process().  Almost always a forgotten "
        "yield or a helper that should be called with `yield from`.")
    example_fix = (
        "bad:   def proc(env):\n           return compute()   # never "
        "yields\n"
        "good:  def proc(env):\n           yield env.timeout(10.0)\n"
        "           return compute()   # retrieved via `yield from proc(env)`")

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(func, _FUNCTION_NODES):
                continue
            yields: List[int] = []
            for node in _own_nodes(func):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yields.append(node.lineno)
            if not yields:
                continue
            first_yield = min(yields)
            # Only *unconditional* returns: direct statements of the
            # function body, never nested in if/try/loop.
            for stmt in func.body:
                if not (isinstance(stmt, ast.Return)
                        and stmt.value is not None):
                    continue
                if (isinstance(stmt.value, ast.Constant)
                        and stmt.value.value is None):
                    continue
                if stmt.lineno < first_yield:
                    yield self.hit(
                        source, stmt,
                        f"generator `{func.name}` unconditionally "
                        f"returns a value on line {stmt.lineno}, before "
                        f"its first yield (line {first_yield}); the "
                        "process always ends without yielding an Event")
