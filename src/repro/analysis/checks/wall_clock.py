"""FCC002: wall-clock reads break replayability.

Simulated time is ``env.now``; the host's clock must never leak into
model state, or a replay of the same seed on a different machine (or
the same machine under load) diverges.  This rule flags reads of the
host clock — ``time.time``/``perf_counter``/``monotonic`` and the
``datetime`` "now" family — anywhere outside ``benchmarks/``, which
measures wall-clock on purpose.

The kernel's own busy-time counters (``Environment.stats``) are the
one legitimate in-tree exception: they feed a perf report, never the
schedule.  Those sites carry ``# fcc: allow[wall-clock]`` pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["WallClockCheck"]

#: wall-clock functions in the ``time`` module
_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: "now"-family constructors on datetime/date classes
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


class WallClockCheck(LintCheck):
    code = "FCC002"
    slug = "wall-clock"
    summary = ("wall-clock read in simulation code; use env.now "
               "(benchmarks/ is exempt)")
    rationale = (
        "Simulated time is env.now; a host-clock read (time.time, "
        "perf_counter, datetime.now) leaking into model state makes the "
        "same seed produce different runs on a loaded machine.  "
        "benchmarks/ measures wall-clock on purpose and is exempt; the "
        "kernel's own perf counters carry pragmas because they feed a "
        "report, never the schedule.")
    example_fix = (
        "bad:   start = time.perf_counter(); ...; lat = "
        "time.perf_counter() - start\n"
        "good:  start = env.now; yield from port.send(flit); lat = "
        "env.now - start")
    exempt = ("/benchmarks/",)

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        time_aliases: Set[str] = set()
        datetime_mod_aliases: Set[str] = set()
        datetime_cls_aliases: Set[str] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCS:
                            yield self.hit(
                                source, node,
                                f"from-import of wall-clock "
                                f"`time.{alias.name}`; simulated time "
                                "is env.now")
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_cls_aliases.add(
                                alias.asname or alias.name)

        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            value = func.value
            if (isinstance(value, ast.Name) and value.id in time_aliases
                    and func.attr in _TIME_FUNCS):
                yield self.hit(source, node,
                               f"wall-clock call `{value.id}.{func.attr}()`; "
                               "simulated time is env.now")
            elif func.attr in _DATETIME_FUNCS:
                # datetime.now(), date.today(), datetime.datetime.now()
                if isinstance(value, ast.Name) and (
                        value.id in datetime_cls_aliases
                        or value.id in datetime_mod_aliases):
                    yield self.hit(source, node,
                                   f"wall-clock call "
                                   f"`{value.id}.{func.attr}()`; "
                                   "simulated time is env.now")
                elif (isinstance(value, ast.Attribute)
                      and isinstance(value.value, ast.Name)
                      and value.value.id in datetime_mod_aliases
                      and value.attr in ("datetime", "date")):
                    yield self.hit(source, node,
                                   f"wall-clock call `datetime."
                                   f"{value.attr}.{func.attr}()`; "
                                   "simulated time is env.now")
