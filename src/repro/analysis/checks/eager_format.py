"""FCC006: eager string formatting in per-event telemetry calls.

Telemetry and trace sinks — ``tracer.record(...)``, ``span(env, ...)``,
``telemetry.instant(...)``, ``counter.inc(...)``,
``histogram.observe(...)`` — sit on simulation hot paths and run once
*per event*.  Formatting a string argument at the call site
(an f-string, ``"%" %`` or ``"...".format(...)``) pays the formatting
cost on every event even though the sink just stores the value, and on
the telemetry-off path it defeats the one-``is None``-branch design.

The blessed idiom is to format once, at component construction time:
metric names are built there (``registry.counter(f"link.{name}.flits")``
— ``counter``/``gauge``/``histogram`` lookups are deliberately *not*
flagged), span/instant names are constant strings, and event payloads
pass raw values (``flow=flow``) the exporter serializes lazily.

The rule flags a formatted argument only when it actually interpolates
something — a placeholder-free f-string is constant and harmless.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["EagerFormatCheck"]

#: method names that record one telemetry/trace event per call
_SINK_METHODS = frozenset({"record", "span", "instant", "inc", "observe"})

#: bare function names with the same per-event contract
_SINK_FUNCS = frozenset({"span"})


def _eager_format_kind(node: ast.AST) -> Optional[str]:
    """The formatting idiom ``node`` evaluates eagerly, if any."""
    if isinstance(node, ast.JoinedStr):
        if any(isinstance(part, ast.FormattedValue)
               for part in node.values):
            return "f-string"
        return None
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)):
        return "%-interpolation"
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)):
        return "str.format"
    return None


def _sink_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _SINK_FUNCS:
        return func.id
    return None


class EagerFormatCheck(LintCheck):
    code = "FCC006"
    slug = "eager-format"
    summary = ("string formatted per-event inside a telemetry/trace "
               "call; format once at construction or pass raw values")
    rationale = (
        "An f-string / %-format / .format argument inside a per-event "
        "telemetry call (record/span/instant/inc/observe) is built on "
        "every event even when telemetry is off, turning a one-branch "
        "no-op into allocation on the hot path.  Hoist the formatting to "
        "construction time or pass the raw value.")
    example_fix = (
        "bad:   tracer.record(env.now, f\"fwd {flit!r}\")   # per-event "
        "repr\n"
        "good:  self._site = f\"pcie.{name}.egress\"         # once, in "
        "__init__\n"
        "       tracer.record(env.now, self._site)")

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_name(node)
            if sink is None:
                continue
            arguments = list(node.args)
            arguments.extend(kw.value for kw in node.keywords)
            for argument in arguments:
                kind = _eager_format_kind(argument)
                if kind is not None:
                    yield self.hit(
                        source, argument,
                        f"{kind} argument formatted on every "
                        f"`{sink}(...)` event; hoist the formatting to "
                        "construction time or pass the raw value")
