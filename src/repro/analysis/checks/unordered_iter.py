"""FCC005: iterating an unordered ``set`` is a determinism hazard.

Anything iterated in model code eventually feeds the scheduler —
registration order becomes sequence-number order becomes the tie-break
at equal timestamps.  ``set`` iteration order depends on insertion
history *and* hash randomization of the element types, so a loop over
a set can reorder otherwise-identical runs.  The fix is always the
same: ``sorted(...)`` the set (or keep a list/dict, which preserve
insertion order).

Statically we cannot know every variable's type, so the rule flags the
syntactically certain cases: ``for``/comprehension iteration directly
over a set literal, a ``set(...)``/``frozenset(...)`` call, or a set
algebra method (``union``/``intersection``/``difference``/
``symmetric_difference``) — except when wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["UnorderedIterCheck"]

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _unordered_reason(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"a {func.id}(...) call"
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return f"a .{func.attr}(...) result"
    return None


class UnorderedIterCheck(LintCheck):
    code = "FCC005"
    slug = "unordered-iter"
    summary = ("iteration over an unordered set; wrap in sorted() "
               "before it feeds the scheduler")
    rationale = (
        "Iteration order eventually becomes scheduler registration order, "
        "which becomes the tie-break at equal timestamps.  set iteration "
        "depends on insertion history and hash randomization, so a loop "
        "over a set can reorder otherwise-identical runs.  Wrap the set in "
        "sorted(), or keep a list/dict (both preserve insertion order).")
    example_fix = (
        "bad:   for flow in {f.name for f in flows}: domain.register(flow)\n"
        "good:  for flow in sorted(f.name for f in flows): "
        "domain.register(flow)")

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        for node in ast.walk(tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_node in iters:
                reason = _unordered_reason(iter_node)
                if reason is not None:
                    yield self.hit(
                        source, iter_node,
                        f"iteration over {reason} has no stable order; "
                        "wrap it in sorted()")
