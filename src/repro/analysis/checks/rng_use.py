"""FCC001: sim code must draw randomness from ``repro.sim.SimRng``.

A direct ``random`` or ``numpy.random`` module use inside simulation
code either taps interpreter-global state (``random.random``) or
builds a side stream the seed does not govern end to end
(``np.random.default_rng``).  Both silently decouple a run from its
seed: adding one draw anywhere reshuffles every draw after it.  The
blessed path is an explicit :class:`repro.sim.SimRng` handed down from
the experiment seed (fork sub-streams with ``rng.fork(tag)``, get a
seeded numpy generator with ``rng.numpy_generator()``).

``repro/sim/rng.py`` itself is exempt — it is the one module allowed
to touch the underlying generators.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["SeededRngCheck"]


class SeededRngCheck(LintCheck):
    code = "FCC001"
    slug = "seeded-rng"
    summary = ("direct random/numpy.random use; draw from the seeded "
               "repro.sim.SimRng stream instead")
    rationale = (
        "Global RNG state decouples a run from its seed: one extra draw "
        "anywhere reshuffles every draw after it, and numpy's module-level "
        "generator is shared across experiments in one interpreter.  All "
        "randomness must flow from the experiment seed through an explicit "
        "repro.sim.SimRng (fork sub-streams with rng.fork(tag)).")
    example_fix = (
        "bad:   import random; delay = random.random() * 10\n"
        "good:  delay = rng.uniform(0.0, 10.0)   # rng: SimRng from the "
        "experiment seed\n"
        "numpy: gen = rng.numpy_generator()      # instead of "
        "np.random.default_rng()")
    exempt = ("repro/sim/rng.py",)

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        numpy_random_aliases: Set[str] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                        yield self.hit(source, node,
                                       "import of the global `random` "
                                       "module; use repro.sim.SimRng")
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(
                            alias.asname or "numpy")
                        yield self.hit(source, node,
                                       "import of `numpy.random`; use "
                                       "SimRng.numpy_generator()")
                    elif alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.hit(source, node,
                                   "from-import of the global `random` "
                                   "module; use repro.sim.SimRng")
                elif node.module == "numpy.random":
                    yield self.hit(source, node,
                                   "from-import of `numpy.random`; use "
                                   "SimRng.numpy_generator()")
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(
                                alias.asname or "random")
                            yield self.hit(
                                source, node,
                                "from-import of numpy's `random` "
                                "submodule; use "
                                "SimRng.numpy_generator()")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            # `<numpy-alias>.random.<anything>` — flag the inner
            # `np.random` attribute once per use site.
            if (node.attr == "random" and isinstance(value, ast.Name)
                    and value.id in numpy_aliases):
                yield self.hit(source, node,
                               f"`{value.id}.random` module use; draw "
                               "from SimRng.numpy_generator()")
            elif (isinstance(value, ast.Name)
                  and (value.id in random_aliases
                       or value.id in numpy_random_aliases)):
                yield self.hit(source, node,
                               f"`{value.id}.{node.attr}` draws from "
                               "global RNG state; use repro.sim.SimRng")
