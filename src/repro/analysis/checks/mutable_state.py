"""FCC004: mutable defaults and module-level mutable state.

Both are cross-run state smuggled past the seed:

* A mutable default argument (``def f(x, acc=[])``) is evaluated once
  at import; every call shares it, so the *order experiments run in*
  changes results.
* A module-level ``list``/``dict``/``set`` survives between
  environments in one interpreter — two back-to-back runs of the same
  seeded experiment can observe different state (exactly the bug class
  the determinism tests exist to catch).

``UPPER_CASE`` module-level names are treated as constants by
convention and allowed (the catalog tables); dunder names
(``__all__``) are always allowed.  Where a module-level registry is
genuinely intended (e.g. a check registry filled at import and never
mutated after), annotate the line with ``# fcc: allow[mutable-state]``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..lint import LintCheck, SourceFile, Violation

__all__ = ["MutableStateCheck"]

_CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CALLS
    return False


class MutableStateCheck(LintCheck):
    code = "FCC004"
    slug = "mutable-state"
    summary = ("mutable default argument or module-level mutable "
               "container (cross-run state)")
    rationale = (
        "Mutable defaults are evaluated once at import and shared by every "
        "call, and a module-level list/dict/set survives between "
        "environments in one interpreter — both smuggle state across runs "
        "past the seed, so experiment *order* changes results.  UPPER_CASE "
        "constants and dunders are allowed by convention.")
    example_fix = (
        "bad:   def record(sample, acc=[]): acc.append(sample)\n"
        "good:  def record(sample, acc=None):\n"
        "           acc = [] if acc is None else acc")

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        # -- mutable default arguments, anywhere -------------------------
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = func.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_literal(default):
                    name = getattr(func, "name", "<lambda>")
                    yield self.hit(
                        source, default,
                        f"mutable default argument in `{name}`; "
                        "default to None and build inside the body")

        # -- module-level mutable containers -----------------------------
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            if not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if _CONSTANT_NAME.match(name):
                    continue
                yield self.hit(
                    source, stmt,
                    f"module-level mutable state `{name}`; scope it to "
                    "the Environment/experiment or mark it a constant")
