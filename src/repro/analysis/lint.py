"""The fcc-check static lint framework.

A *check* is a small class that walks a parsed module and yields
:class:`Violation` records.  Checks are registered in
:mod:`repro.analysis.checks` and share this infrastructure:

* **Sources.**  :func:`run_lint` accepts files or directories; a
  directory is walked recursively for ``*.py`` (skipping
  ``__pycache__`` and hidden directories).  With no paths it lints the
  installed ``repro`` package itself — the CI gate.
* **Exemptions.**  A check may declare ``exempt`` path fragments
  (e.g. the blessed RNG module is allowed to touch ``random``); a
  fragment matches anywhere in the file's ``/``-joined path.
* **Pragmas.**  A line ending in ``# fcc: allow[rule, ...]`` (rule
  slug or FCC code) suppresses those rules on that line;
  ``# fcc: allow`` suppresses every rule.  Use pragmas to document the
  rare legitimate exception, e.g. the kernel's wall-clock perf
  counters that never feed back into scheduling.

Checks are pure ``ast`` consumers — no imports are executed, so the
lint can safely run over broken or dependency-missing code.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["Violation", "SourceFile", "LintCheck", "run_lint",
           "violations_to_json", "iter_source_files",
           "default_lint_roots"]

#: ``# fcc: allow`` or ``# fcc: allow[slug-or-code, ...]``
_PRAGMA = re.compile(r"#\s*fcc:\s*allow(?:\[([A-Za-z0-9_,\-\s]+)\])?")


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    ``end_line`` is the last physical line of the offending statement
    (== ``line`` for single-line sites); pragma suppression honors any
    line in the ``[line, end_line]`` span, so a ``# fcc: allow[...]``
    on the closing paren of a multi-line call still counts.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.rule}] {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class SourceFile:
    """A parsed module plus its pragma map."""

    def __init__(self, path: Path, text: Optional[str] = None) -> None:
        self.path = path
        self.text = path.read_text() if text is None else text
        self.display = path.as_posix()
        # Pragmas: line number -> suppressed rule slugs/codes ('*' = all).
        self.allowed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self.allowed[lineno] = {"*"}
            else:
                self.allowed[lineno] = {
                    r.strip().lower() for r in rules.split(",") if r.strip()}

    def parse(self) -> ast.Module:
        return ast.parse(self.text, filename=self.display)

    def suppressed(self, violation: Violation) -> bool:
        # A multi-line statement is reported at its first line but may
        # carry the pragma on any of its physical lines (typically the
        # closing one); scan the statement's whole span.
        last = max(violation.end_line, violation.line)
        for lineno in range(violation.line, last + 1):
            rules = self.allowed.get(lineno)
            if not rules:
                continue
            if ("*" in rules or violation.rule in rules
                    or violation.code.lower() in rules):
                return True
        return False


class LintCheck:
    """Base class for one lint rule.

    Subclasses set ``code`` (``FCCnnn``), ``slug`` (the human rule
    name used in pragmas), ``summary``, optionally ``exempt`` path
    fragments, and implement :meth:`violations`.
    """

    code: str = "FCC000"
    slug: str = "base"
    summary: str = ""
    #: why the rule exists — shown by ``repro check --explain FCCnnn``
    rationale: str = ""
    #: a minimal bad/good pair demonstrating the fix, for --explain
    example_fix: str = ""
    #: path fragments (``/``-separated) this rule never applies to
    exempt: Sequence[str] = ()

    def applies_to(self, source: SourceFile) -> bool:
        haystack = "/" + source.path.resolve().as_posix().lstrip("/")
        return not any(fragment in haystack for fragment in self.exempt)

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, source: SourceFile, node: ast.AST,
            message: str) -> Violation:
        line = getattr(node, "lineno", 0)
        return Violation(path=source.display,
                         line=line,
                         col=getattr(node, "col_offset", 0),
                         code=self.code, rule=self.slug, message=message,
                         end_line=getattr(node, "end_lineno", None) or line)


def default_lint_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    return Path(__file__).resolve().parents[1]


def default_lint_roots() -> List[Path]:
    """The no-path lint targets: the package, plus — when running from
    a source checkout — ``tests/`` and ``benchmarks/`` beside ``src/``.

    Test and benchmark code feeds the same determinism contract as the
    package (a wall-clock read in a golden-table test is just as
    corrosive), so the CI gate covers all three.  Installed-package
    runs simply won't find the sibling directories.
    """
    package = default_lint_root()
    roots = [package]
    checkout = package.parent.parent
    for sibling in ("tests", "benchmarks"):
        candidate = checkout / sibling
        if candidate.is_dir():
            roots.append(candidate)
    return roots


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into ``*.py`` files, depth-first sorted.

    Directories named ``fixtures`` are skipped during recursive walks:
    lint fixtures *intentionally* violate rules (they are the lint's
    own test inputs), so they only lint when named explicitly.
    """
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                parts = child.relative_to(path).parts
                if any(p == "__pycache__" or p == "fixtures"
                       or p.startswith(".") for p in parts):
                    continue
                yield child
        elif path.suffix == ".py":
            yield path


def all_checks() -> List[LintCheck]:
    """Fresh instances of every registered check."""
    from .checks import CHECKS
    return [cls() for cls in CHECKS]


def run_lint(paths: Optional[Sequence[Path]] = None,
             checks: Optional[Iterable[LintCheck]] = None) -> List[Violation]:
    """Lint ``paths`` (default: the repro package); returns violations.

    Unparseable files produce a single ``FCC000 [syntax]`` violation
    rather than aborting the run.
    """
    targets = [Path(p) for p in paths] if paths else default_lint_roots()
    active = list(checks) if checks is not None else all_checks()
    found: List[Violation] = []
    for file_path in iter_source_files(targets):
        source = SourceFile(file_path)
        try:
            tree = source.parse()
        except SyntaxError as exc:
            found.append(Violation(
                path=source.display, line=exc.lineno or 0,
                col=exc.offset or 0, code="FCC000", rule="syntax",
                message=f"could not parse: {exc.msg}"))
            continue
        for check in active:
            if not check.applies_to(source):
                continue
            for violation in check.violations(source, tree):
                if not source.suppressed(violation):
                    found.append(violation)
    found.sort()
    return found


def violations_to_json(violations: Sequence[Violation]) -> Dict[str, object]:
    """Schema-stable JSON payload for ``repro check --lint --json``."""
    return {
        "schema": 1,
        "tool": "fcc-check",
        "count": len(violations),
        "violations": [v.to_dict() for v in violations],
    }
