"""The fcc-check static lint framework.

A *check* is a small class that walks a parsed module and yields
:class:`Violation` records.  Checks are registered in
:mod:`repro.analysis.checks` and share this infrastructure:

* **Sources.**  :func:`run_lint` accepts files or directories; a
  directory is walked recursively for ``*.py`` (skipping
  ``__pycache__`` and hidden directories).  With no paths it lints the
  installed ``repro`` package itself — the CI gate.
* **Exemptions.**  A check may declare ``exempt`` path fragments
  (e.g. the blessed RNG module is allowed to touch ``random``); a
  fragment matches anywhere in the file's ``/``-joined path.
* **Pragmas.**  A line ending in ``# fcc: allow[rule, ...]`` (rule
  slug or FCC code) suppresses those rules on that line;
  ``# fcc: allow`` suppresses every rule.  Use pragmas to document the
  rare legitimate exception, e.g. the kernel's wall-clock perf
  counters that never feed back into scheduling.

Checks are pure ``ast`` consumers — no imports are executed, so the
lint can safely run over broken or dependency-missing code.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["Violation", "SourceFile", "LintCheck", "run_lint",
           "violations_to_json", "iter_source_files"]

#: ``# fcc: allow`` or ``# fcc: allow[slug-or-code, ...]``
_PRAGMA = re.compile(r"#\s*fcc:\s*allow(?:\[([A-Za-z0-9_,\-\s]+)\])?")


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.rule}] {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class SourceFile:
    """A parsed module plus its pragma map."""

    def __init__(self, path: Path, text: Optional[str] = None) -> None:
        self.path = path
        self.text = path.read_text() if text is None else text
        self.display = path.as_posix()
        # Pragmas: line number -> suppressed rule slugs/codes ('*' = all).
        self.allowed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self.allowed[lineno] = {"*"}
            else:
                self.allowed[lineno] = {
                    r.strip().lower() for r in rules.split(",") if r.strip()}

    def parse(self) -> ast.Module:
        return ast.parse(self.text, filename=self.display)

    def suppressed(self, violation: Violation) -> bool:
        rules = self.allowed.get(violation.line)
        if not rules:
            return False
        return ("*" in rules or violation.rule in rules
                or violation.code.lower() in rules)


class LintCheck:
    """Base class for one lint rule.

    Subclasses set ``code`` (``FCCnnn``), ``slug`` (the human rule
    name used in pragmas), ``summary``, optionally ``exempt`` path
    fragments, and implement :meth:`violations`.
    """

    code: str = "FCC000"
    slug: str = "base"
    summary: str = ""
    #: path fragments (``/``-separated) this rule never applies to
    exempt: Sequence[str] = ()

    def applies_to(self, source: SourceFile) -> bool:
        haystack = "/" + source.path.resolve().as_posix().lstrip("/")
        return not any(fragment in haystack for fragment in self.exempt)

    def violations(self, source: SourceFile,
                   tree: ast.Module) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, source: SourceFile, node: ast.AST,
            message: str) -> Violation:
        return Violation(path=source.display,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0),
                         code=self.code, rule=self.slug, message=message)


def default_lint_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    return Path(__file__).resolve().parents[1]


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                parts = child.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".")
                       for p in parts):
                    continue
                yield child
        elif path.suffix == ".py":
            yield path


def all_checks() -> List[LintCheck]:
    """Fresh instances of every registered check."""
    from .checks import CHECKS
    return [cls() for cls in CHECKS]


def run_lint(paths: Optional[Sequence[Path]] = None,
             checks: Optional[Iterable[LintCheck]] = None) -> List[Violation]:
    """Lint ``paths`` (default: the repro package); returns violations.

    Unparseable files produce a single ``FCC000 [syntax]`` violation
    rather than aborting the run.
    """
    targets = [Path(p) for p in paths] if paths else [default_lint_root()]
    active = list(checks) if checks is not None else all_checks()
    found: List[Violation] = []
    for file_path in iter_source_files(targets):
        source = SourceFile(file_path)
        try:
            tree = source.parse()
        except SyntaxError as exc:
            found.append(Violation(
                path=source.display, line=exc.lineno or 0,
                col=exc.offset or 0, code="FCC000", rule="syntax",
                message=f"could not parse: {exc.msg}"))
            continue
        for check in active:
            if not check.applies_to(source):
                continue
            for violation in check.violations(source, tree):
                if not source.suppressed(violation):
                    found.append(violation)
    found.sort()
    return found


def violations_to_json(violations: Sequence[Violation]) -> Dict[str, object]:
    """Schema-stable JSON payload for ``repro check --lint --json``."""
    return {
        "schema": 1,
        "tool": "fcc-check",
        "count": len(violations),
        "violations": [v.to_dict() for v in violations],
    }
