"""The whole-program rules: FCC101, FCC102, FCC103.

==========  ====================  =====================================
code        slug                  flags
==========  ====================  =====================================
``FCC101``  ``process-taint``     a spawned simulation process
                                  transitively reaches a wall-clock /
                                  global-RNG / unordered-iteration
                                  sink (the interprocedural closure of
                                  FCC001/002/005)
``FCC102``  ``static-write-race``  an order-sensitive read-modify-
                                  write of a shared attribute, with no
                                  intervening ``yield``, in code
                                  reachable from two or more spawned
                                  processes
``FCC103``  ``batch-protocol``    a scheduler participating in the
                                  batched-egress protocol violates the
                                  structural rules the switch sweep's
                                  elision accounting relies on
==========  ====================  =====================================

To add a whole-program rule: subclass :class:`ProgramCheck`, give it
the next free ``FCC1nn`` code, and append it to
:data:`PROGRAM_CHECKS`; :func:`run_program` handles pragma
suppression and sorting.  Fixture projects live under
``tests/fixtures/program/`` — one *bad* and one *clean* package per
rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..checks.rng_use import SeededRngCheck
from ..checks.unordered_iter import UnorderedIterCheck
from ..checks.wall_clock import WallClockCheck
from ..lint import LintCheck, Violation
from .callgraph import CallGraph, SpawnSite, build_callgraph
from .index import ClassInfo, FunctionInfo, ProjectIndex, build_index

__all__ = ["ProgramCheck", "DeterminismTaintCheck", "StaticWriteRaceCheck",
           "BatchProtocolCheck", "PROGRAM_CHECKS", "run_program"]

#: the per-file rules whose hits become FCC101 taint *sinks*
_SINK_CHECKS: Sequence[type] = (SeededRngCheck, WallClockCheck,
                                UnorderedIterCheck)

_SINK_KIND = {"FCC001": "global-RNG", "FCC002": "wall-clock",
              "FCC005": "unordered-iteration"}


class ProgramCheck(LintCheck):
    """Base class for one whole-program rule.

    Same contract as :class:`~repro.analysis.lint.LintCheck` — code,
    slug, summary, rationale, example_fix — but
    :meth:`program_violations` sees the :class:`ProjectIndex` and
    :class:`CallGraph` instead of a single file.
    """

    def program_violations(self, index: ProjectIndex,
                           graph: CallGraph) -> Iterator[Violation]:
        raise NotImplementedError

    def violations(self, source, tree):   # pragma: no cover - not used
        raise TypeError(f"{self.code} is a whole-program check; "
                        "run it through run_program()")

    def at(self, path: str, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 0)
        return Violation(
            path=path, line=line,
            col=getattr(node, "col_offset", 0), code=self.code,
            rule=self.slug, message=message,
            end_line=getattr(node, "end_lineno", None) or line)


# ---------------------------------------------------------------------------
# FCC101: interprocedural determinism taint
# ---------------------------------------------------------------------------

class DeterminismTaintCheck(ProgramCheck):
    code = "FCC101"
    slug = "process-taint"
    summary = ("a simulation process transitively reaches a "
               "wall-clock/global-RNG/unordered-iteration sink")
    rationale = (
        "FCC001/002/005 judge one file at a time, so a determinism "
        "hazard hiding behind a helper in another module goes unseen: "
        "the process is clean, the helper is 'just a function'.  This "
        "rule closes the gap interprocedurally — every env.process(...) "
        "/ run_proc(...) spawn root is traversed through the project "
        "call graph (including yield-from chains), and any reachable "
        "sink taints the whole path.  A pragma on the sink line clears "
        "the taint for every process reaching it.")
    example_fix = (
        "bad:   # proc.py: yield env.timeout(helper.jitter())\n"
        "       # helper.py: return time.perf_counter() % 5.0\n"
        "good:  thread the Environment (env.now) or a SimRng stream "
        "into the helper instead of reading ambient state")

    #: cap on reported sink sites per (spawn, function) pair
    max_sites = 3

    def _collect_sinks(self, index: ProjectIndex) -> Dict[
            str, List[Tuple[Violation, str]]]:
        """function qualname -> [(sink violation, kind), ...]."""
        sinks: Dict[str, List[Tuple[Violation, str]]] = {}
        checks = [cls() for cls in _SINK_CHECKS]
        for info in index.modules.values():
            for check in checks:
                if not check.applies_to(info.source):
                    continue
                for violation in check.violations(info.source,
                                                  info.tree):
                    if info.source.suppressed(violation):
                        continue
                    func = index.function_at(info.name, violation.line)
                    if func is None:
                        continue   # module-level: not process code
                    kind = _SINK_KIND.get(violation.code,
                                          violation.rule)
                    sinks.setdefault(func.qualname, []).append(
                        (violation, kind))
        return sinks

    def program_violations(self, index: ProjectIndex,
                           graph: CallGraph) -> Iterator[Violation]:
        sinks = self._collect_sinks(index)
        if not sinks:
            return
        reported: Set[Tuple[str, int, str, str]] = set()
        for spawn in graph.spawns:
            spawn_path = index.modules[spawn.module].source.display
            for qualname in sorted(
                    graph.reachable_from(iter([spawn.root]))):
                hits = sinks.get(qualname)
                if not hits:
                    continue
                key = (spawn.module, spawn.lineno, spawn.root, qualname)
                if key in reported:
                    continue
                reported.add(key)
                chain = graph.shortest_chain(spawn.root, qualname) or \
                    [spawn.root, qualname]
                sites = ", ".join(
                    f"{v.path}:{v.line} ({kind})"
                    for v, kind in hits[:self.max_sites])
                more = len(hits) - self.max_sites
                if more > 0:
                    sites += f" and {more} more"
                node = _FakeNode(spawn.lineno, spawn.end_lineno)
                yield self.at(
                    spawn_path, node,
                    f"process {spawn.root!r} spawned here reaches "
                    f"determinism sink(s) {sites} via "
                    f"{' -> '.join(chain)}; a replay of the same seed "
                    "can diverge on this path")


class _FakeNode:
    """Line-span carrier for violations not anchored to one ast node."""

    def __init__(self, lineno: int, end_lineno: Optional[int] = None,
                 col_offset: int = 0) -> None:
        self.lineno = lineno
        self.end_lineno = end_lineno or lineno
        self.col_offset = col_offset


# ---------------------------------------------------------------------------
# FCC102: static same-timestamp write-race detection
# ---------------------------------------------------------------------------

#: augmented ops that commute with themselves (counter updates): two
#: processes incrementing at one timestamp land on the same total
#: regardless of dispatch order, so they are not order-sensitive
_COMMUTATIVE_AUG = (ast.Add, ast.Sub)


class StaticWriteRaceCheck(ProgramCheck):
    code = "FCC102"
    slug = "static-write-race"
    summary = ("read-modify-write of a shared attribute with no "
               "intervening yield, reachable from >= 2 processes")
    rationale = (
        "The runtime sanitizer flags two processes mutating one store "
        "at the same timestamp — but only on paths a scenario happens "
        "to exercise.  Statically, the same hazard is an attribute "
        "that is *read* and then *stored* with no yield in between "
        "(the window executes atomically, so when two process "
        "instances wake at one timestamp, the final value depends "
        "only on kernel dispatch order) in code reachable from two or "
        "more spawn sites, or from one spawn site inside a loop.  "
        "Commutative `+=`/`-=` counter updates are exempt: any "
        "dispatch order yields the same total.")
    example_fix = (
        "bad:   depth = self.depth        # acquire\n"
        "       self.depth = depth + self.step   # store: last writer "
        "wins at equal timestamps\n"
        "good:  self.depth += self.step   # commutative update, or "
        "route through one owner process / a Store")

    def _shared_key(self, node: ast.expr,
                    params: Set[str]) -> Optional[Tuple[str, str]]:
        """(receiver, attr) for `self.x` / `param.x`, else None."""
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        if isinstance(value, ast.Name) and (value.id == "self"
                                            or value.id in params):
            return (value.id, node.attr)
        return None

    def _windows(self, func: FunctionInfo) -> Iterator[
            Tuple[ast.AST, Tuple[str, str], int]]:
        """(store node, shared key, acquire line) RMW windows."""
        args = getattr(func.node, "args", None)
        params: Set[str] = set()
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                params.add(arg.arg)
        params.discard("self")
        # Events in *execution* order: RHS before target for assigns,
        # so `self.x = self.x + 1` sees the load first, and a yield
        # embedded in an expression clears windows at the right spot.
        events: List[Tuple[str, object]] = []

        def emit(node: ast.AST) -> None:
            if node is not func.node and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)):
                return   # nested defs run on their own schedule
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    emit(node.value)
                events.append(("yield", None))
                return
            if isinstance(node, ast.Assign):
                emit(node.value)
                for target in node.targets:
                    emit(target)
                return
            if isinstance(node, ast.AugAssign):
                emit(node.value)
                key = self._shared_key(node.target, params)
                if key is not None and not isinstance(
                        node.op, _COMMUTATIVE_AUG):
                    events.append(("rmw", (node, key)))
                return   # target handled above; don't re-emit it
            if isinstance(node, ast.Attribute):
                key = self._shared_key(node, params)
                if key is not None:
                    if isinstance(node.ctx, ast.Load):
                        events.append(("load", (node, key)))
                    elif isinstance(node.ctx, ast.Store):
                        events.append(("store", (node, key)))
                else:
                    emit(node.value)   # e.g. the `self.a` in `self.a.b`
                return
            for child in ast.iter_child_nodes(node):
                emit(child)

        emit(func.node)
        pending: Dict[Tuple[str, str], int] = {}
        for kind, payload in events:
            if kind == "yield":
                pending.clear()
            elif kind == "rmw":
                node, key = payload
                yield node, key, node.lineno
            elif kind == "load":
                node, key = payload
                pending.setdefault(key, node.lineno)
            elif kind == "store":
                node, key = payload
                acquired = pending.pop(key, None)
                if acquired is not None:
                    yield node, key, acquired

    def program_violations(self, index: ProjectIndex,
                           graph: CallGraph) -> Iterator[Violation]:
        reachable = graph.process_reachable()
        for qualname in sorted(reachable):
            func = index.functions.get(qualname)
            if func is None:
                continue
            sites = reachable[qualname]
            weight = sum(2 if s.in_loop else 1 for s in sites)
            if weight < 2:
                continue
            path = index.modules[func.module].source.display
            spawn_desc = ", ".join(
                f"{s.module}:{s.lineno}" + (" (in loop)"
                                            if s.in_loop else "")
                for s in sorted(sites,
                                key=lambda s: (s.module, s.lineno)))
            for store, key, acquire_line in self._windows(func):
                receiver, attr = key
                yield self.at(
                    path, store,
                    f"`{receiver}.{attr}` is read (line "
                    f"{acquire_line}) and stored with no intervening "
                    f"yield in {qualname!r}, reachable from "
                    f"{len(sites)} spawn site(s) [{spawn_desc}]; two "
                    "instances waking at one timestamp race on "
                    "dispatch order")


# ---------------------------------------------------------------------------
# FCC103: batch-protocol conformance
# ---------------------------------------------------------------------------

#: method calls that mutate their receiver — forbidden while planning
_MUTATORS = frozenset({
    "pop", "popleft", "append", "appendleft", "remove", "clear",
    "extend", "insert", "add", "discard", "update", "setdefault",
    "sort", "reverse",
})

#: calls that create or trigger kernel events — forbidden while
#: planning (the sweep's elision ledger assumes a pure plan).  Note
#: `.get` is deliberately absent: it is ambiguous with dict.get, and
#: a Store.get would already trip the purity rules via its waiters.
_EVENT_CREATORS = frozenset({
    "event", "timeout", "timeout_at", "process", "schedule",
    "succeed", "fail", "request", "put", "_trigger",
})

_PROTOCOL_METHODS = ("peek_ready", "plan_ready_run", "commit_head")


def _is_trivial(node: ast.AST) -> bool:
    """A body that only raises / passes (the abstract base shape)."""
    body = list(getattr(node, "body", []))
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    return all(isinstance(stmt, (ast.Raise, ast.Pass)) for stmt in body)


def _rooted_in_self(node: ast.expr) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _queue_keys(node: ast.AST) -> Set[object]:
    """Constant keys used to pick a queue off ``self._queues``."""
    keys: Set[object] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Subscript) \
                and isinstance(child.value, ast.Attribute) \
                and _rooted_in_self(child.value) \
                and isinstance(child.slice, ast.Constant):
            keys.add(child.slice.value)
        elif isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Attribute) \
                and child.func.attr == "get" \
                and _rooted_in_self(child.func.value) \
                and child.args \
                and isinstance(child.args[0], ast.Constant):
            keys.add(child.args[0].value)
    return keys


class BatchProtocolCheck(ProgramCheck):
    code = "FCC103"
    slug = "batch-protocol"
    summary = ("batchable-scheduler protocol violation: impure plan, "
               "kernel events while planning, or commit/peek mismatch")
    rationale = (
        "The switch's batched egress sweep plans a whole head run with "
        "plan_ready_run, then retires entries one serialization "
        "boundary at a time with commit_head — and credits the elided "
        "scalar events to the kernel ledger on the assumption that "
        "planning observed state without changing it.  A plan that "
        "mutates the scheduler or creates kernel events desynchronizes "
        "staging-queue occupancy (and back-pressure instants) from the "
        "scalar loop, silently breaking the bit-identity contract; a "
        "commit_head that removes anything but the head peek_ready "
        "inspected serves flits in a different order than the plan "
        "promised.")
    example_fix = (
        "bad:   def plan_ready_run(self, limit):\n"
        "           run.append(self._queues['all'].pop(0))  # dequeues "
        "while planning\n"
        "good:  plan from queue.items by index (pure), dequeue only in "
        "commit_head via items.pop(0), one entry per call")

    def _participates(self, index: ProjectIndex,
                      cls: ClassInfo) -> bool:
        claimed = cls.class_attrs.get("batchable")
        if isinstance(claimed, ast.Constant) and claimed.value is True:
            return True
        return any(
            name in cls.methods and not _is_trivial(
                cls.methods[name].node)
            for name in _PROTOCOL_METHODS)

    def _purity_violations(self, path: str, func: FunctionInfo,
                           ) -> Iterator[Violation]:
        label = func.name
        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute,
                                           ast.Subscript)) \
                            and _rooted_in_self(target):
                        yield self.at(
                            path, node,
                            f"{label} stores to scheduler state "
                            "while planning; the sweep requires a "
                            "pure plan (mutate only in commit_head)")
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, (ast.Attribute,
                                            ast.Subscript)) \
                        and _rooted_in_self(node.target):
                    yield self.at(
                        path, node,
                        f"{label} mutates scheduler state while "
                        "planning; the sweep requires a pure plan")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute,
                                           ast.Subscript)) \
                            and _rooted_in_self(target):
                        yield self.at(
                            path, node,
                            f"{label} deletes scheduler state while "
                            "planning; the sweep requires a pure plan")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _MUTATORS \
                        and _rooted_in_self(node.func.value):
                    yield self.at(
                        path, node,
                        f"{label} calls .{attr}(...) on scheduler "
                        "state while planning; the run must stay "
                        "staged until commit_head retires it")
                elif attr in _EVENT_CREATORS:
                    yield self.at(
                        path, node,
                        f"{label} calls .{attr}(...) while planning; "
                        "a plan must not create or trigger kernel "
                        "events (the sweep's elision ledger assumes "
                        "none)")
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield self.at(
                    path, node,
                    f"{label} yields: planning must be synchronous "
                    "inspection, not a process")

    def _commit_violations(self, path: str, func: FunctionInfo,
                           peek_keys: Set[object],
                           ) -> Iterator[Violation]:
        commit_keys = _queue_keys(func.node)
        if peek_keys and commit_keys and not (peek_keys & commit_keys):
            yield self.at(
                path, func.node,
                f"commit_head retires queue "
                f"{sorted(map(repr, commit_keys))} but peek_ready "
                f"inspects {sorted(map(repr, peek_keys))}; the sweep "
                "would serve a different queue than it planned")
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "pop":
                if not node.args:
                    yield self.at(
                        path, node,
                        "commit_head pops the *tail* (.pop() with no "
                        "index); it must retire the head entry "
                        "peek_ready inspected (.pop(0) / .popleft())")
                elif not (isinstance(node.args[0], ast.Constant)
                          and node.args[0].value == 0):
                    yield self.at(
                        path, node,
                        "commit_head removes a non-head entry; the "
                        "sweep plans head runs, so only .pop(0) / "
                        ".popleft() keeps plan and service in step")

    def program_violations(self, index: ProjectIndex,
                           graph: CallGraph) -> Iterator[Violation]:
        for qualname in sorted(index.classes):
            cls = index.classes[qualname]
            if not self._participates(index, cls):
                continue
            path = index.modules[cls.module].source.display
            claimed = cls.class_attrs.get("batchable")
            claims = isinstance(claimed, ast.Constant) \
                and claimed.value is True
            if claims:
                for name in _PROTOCOL_METHODS:
                    impl = index.mro_method(qualname, name)
                    if impl is None or _is_trivial(impl.node):
                        yield self.at(
                            path, cls.node,
                            f"{cls.name} sets batchable = True but "
                            f"{name} is missing or abstract; the "
                            "switch sweep would crash or corrupt "
                            "service order at runtime")
            for name in ("peek_ready", "plan_ready_run"):
                impl = cls.methods.get(name)
                if impl is not None and not _is_trivial(impl.node):
                    yield from self._purity_violations(path, impl)
            commit = cls.methods.get("commit_head")
            if commit is not None and not _is_trivial(commit.node):
                peek_keys: Set[object] = set()
                peek = index.mro_method(qualname, "peek_ready")
                if peek is not None and not _is_trivial(peek.node):
                    peek_keys = _queue_keys(peek.node)
                yield from self._commit_violations(path, commit,
                                                   peek_keys)


#: every registered whole-program rule, in code order
PROGRAM_CHECKS: List[type] = [
    DeterminismTaintCheck,
    StaticWriteRaceCheck,
    BatchProtocolCheck,
]


def all_program_checks() -> List[ProgramCheck]:
    return [cls() for cls in PROGRAM_CHECKS]


def run_program(root: Optional[Path] = None,
                package: Optional[str] = None,
                checks: Optional[Sequence[ProgramCheck]] = None,
                ) -> List[Violation]:
    """Index ``root`` (default: the repro package) and run every
    whole-program check; returns sorted, pragma-filtered violations.
    """
    index = build_index(root, package)
    graph = build_callgraph(index)
    active = list(checks) if checks is not None else \
        all_program_checks()
    sources = {info.source.display: info.source
               for info in index.modules.values()}
    found: List[Violation] = []
    for display, lineno, col, msg in index.syntax_errors:
        found.append(Violation(
            path=display, line=lineno, col=col, code="FCC000",
            rule="syntax", message=f"could not parse: {msg}"))
    for check in active:
        for violation in check.program_violations(index, graph):
            source = sources.get(violation.path)
            if source is not None and source.suppressed(violation):
                continue
            found.append(violation)
    found.sort()
    return found
