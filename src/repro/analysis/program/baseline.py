"""Baseline suppression for ``repro check --program``.

A baseline turns "the tree must be spotless" into "the tree must not
get *worse*": known findings recorded in a committed
``fcc-baseline.json`` are reported as warnings, anything new fails.
That makes it safe to land the analyzer before every pre-existing
hazard is fixed, and each baselined entry is a visible TODO in review.

Entries match on ``(code, path, message)`` — deliberately **not** on
line numbers, which drift with every unrelated edit.  The file is
plain JSON so diffs review well:

.. code-block:: json

    {"schema": 1, "tool": "fcc-check-program",
     "baseline": [{"code": "FCC102", "path": "src/repro/x.py",
                   "message": "..."}]}

``stale`` entries (present in the baseline, no longer reported) are
surfaced too, so the file shrinks as hazards get fixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from ..lint import Violation

__all__ = ["Baseline", "BaselineError", "load_baseline",
           "split_by_baseline", "baseline_payload"]


class BaselineError(ValueError):
    """A baseline file that cannot be used (bad JSON / bad schema)."""


class Baseline:
    """A loaded suppression set; see the module docstring."""

    def __init__(self, entries: Sequence[Dict[str, str]],
                 path: str = "") -> None:
        self.path = path
        self.entries: List[Dict[str, str]] = list(entries)
        self._keys: Set[Tuple[str, str, str]] = {
            self.key_of(entry) for entry in self.entries}

    @staticmethod
    def key_of(entry: Dict[str, str]) -> Tuple[str, str, str]:
        return (str(entry.get("code", "")),
                _normalize(str(entry.get("path", ""))),
                str(entry.get("message", "")))

    def covers(self, violation: Violation) -> bool:
        return (violation.code, _normalize(violation.path),
                violation.message) in self._keys

    def stale_entries(self, violations: Sequence[Violation],
                      ) -> List[Dict[str, str]]:
        """Entries no longer matched by any current violation."""
        live = {(v.code, _normalize(v.path), v.message)
                for v in violations}
        return [entry for entry in self.entries
                if self.key_of(entry) not in live]

    def __len__(self) -> int:
        return len(self.entries)


def _normalize(path: str) -> str:
    """Compare by trailing package-relative path, absolute or not."""
    pure = path.replace("\\", "/")
    for marker in ("/src/", "/tests/", "/benchmarks/"):
        idx = pure.rfind(marker)
        if idx >= 0:
            return pure[idx + 1:]
    return pure.lstrip("/")


def load_baseline(path: Path) -> Baseline:
    """Load and validate a baseline file."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") \
            from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: "
                            f"{exc}") from None
    if not isinstance(payload, dict) \
            or not isinstance(payload.get("baseline"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'baseline' "
            "list")
    entries = []
    for i, entry in enumerate(payload["baseline"]):
        if not isinstance(entry, dict) or "code" not in entry \
                or "path" not in entry or "message" not in entry:
            raise BaselineError(
                f"baseline {path} entry {i} needs code/path/message")
        entries.append(entry)
    return Baseline(entries, path=str(path))


def split_by_baseline(violations: Sequence[Violation],
                      baseline: Baseline,
                      ) -> Tuple[List[Violation], List[Violation]]:
    """(new, baselined) — new findings fail, baselined ones warn."""
    new: List[Violation] = []
    known: List[Violation] = []
    for violation in violations:
        (known if baseline.covers(violation) else new).append(
            violation)
    return new, known


def baseline_payload(violations: Sequence[Violation],
                     ) -> Dict[str, object]:
    """A baseline document covering ``violations`` (for bootstrap:
    ``repro check --program --json | ...``, or hand-edit from this).
    """
    return {
        "schema": 1,
        "tool": "fcc-check-program",
        "baseline": [
            {"code": v.code, "path": _normalize(v.path),
             "message": v.message}
            for v in violations],
    }
