"""Whole-program analysis (``repro check --program``).

Where :mod:`repro.analysis.lint` judges one file at a time, this
subpackage parses the whole package **once** into a
:class:`~repro.analysis.program.index.ProjectIndex` — module table,
class/symbol resolution, import graph — derives a
:class:`~repro.analysis.program.callgraph.CallGraph` (ordinary calls,
``yield from`` process chains, ``env.process(...)`` /
``run_proc(...)`` spawn sites), and runs *interprocedural* checks over
it:

* **FCC101** (``process-taint``) — a simulation process transitively
  reaches a wall-clock / global-RNG / unordered-iteration sink in
  another function or module, where the per-file rules FCC001/002/005
  cannot see it.
* **FCC102** (``static-write-race``) — an order-sensitive store to a
  shared attribute reachable from two or more spawned processes with
  no intervening ``yield`` between the acquire (load) and the store:
  the static counterpart of the runtime write-race sanitizer.
* **FCC103** (``batch-protocol``) — classes participating in the
  batched-egress protocol (``batchable = True`` or implementing
  ``peek_ready`` / ``plan_ready_run`` / ``commit_head``) must satisfy
  the structural rules the switch's elision relies on: a pure plan, no
  kernel-event creation while planning, and a ``commit_head`` that
  retires the same queue head ``peek_ready`` inspects.

Results are ordinary :class:`~repro.analysis.lint.Violation` records:
``# fcc: allow[...]`` pragmas suppress at the reported line, a
committed ``fcc-baseline.json`` (``--baseline``) downgrades known
findings to warnings so only *new* hazards fail CI, and ``--sarif``
exports SARIF 2.1.0 for code-scanning upload.
"""

from .baseline import Baseline, load_baseline, split_by_baseline
from .callgraph import CallGraph
from .checks import PROGRAM_CHECKS, ProgramCheck, run_program
from .index import ProjectIndex, build_index
from .sarif import violations_to_sarif

__all__ = [
    "Baseline",
    "CallGraph",
    "PROGRAM_CHECKS",
    "ProgramCheck",
    "ProjectIndex",
    "build_index",
    "load_baseline",
    "run_program",
    "split_by_baseline",
    "violations_to_sarif",
]
