"""Call graph over a :class:`~repro.analysis.program.index.ProjectIndex`.

Edges are resolved conservatively — an edge exists only when the
callee can be pinned to a project function — through these idioms:

* plain calls to module-level names (defined locally or imported);
* ``mod.func(...)`` through an imported project module alias;
* ``self.method(...)`` via the enclosing class and its project bases;
* ``ClassName(...)`` -> ``ClassName.__init__``;
* ``var.method(...)`` where ``var`` is a local assigned
  ``ClassName(...)`` in the same function, or a parameter annotated
  with a project class;
* ``yield from <call>`` — the process-chaining idiom — with a
  unique-method-name fallback: if exactly one project class defines
  the method, the chain resolves even without type information (the
  ``yield from host.mem.access(...)`` shape).

Spawn sites — where a generator becomes a simulation *process* — are
calls matching ``<anything>.process(<call>, ...)`` (the
``Environment.process`` idiom) and ``run_proc(env, <call>)``; the
inner call's target is the spawned root.  A spawn site records whether
it sits inside a loop, which the write-race check uses as "two or more
instances of this process may run".
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .index import ClassInfo, FunctionInfo, ProjectIndex

__all__ = ["CallEdge", "SpawnSite", "CallGraph", "build_callgraph"]


@dataclasses.dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``node``."""

    caller: str                  # FunctionInfo.qualname
    callee: str                  # FunctionInfo.qualname
    lineno: int
    is_yield_from: bool


@dataclasses.dataclass(frozen=True)
class SpawnSite:
    """One ``env.process(gen(...))`` / ``run_proc(env, gen(...))``."""

    spawner: str                 # enclosing function qualname ('' = top)
    root: str                    # spawned generator's qualname
    module: str
    lineno: int
    end_lineno: int
    in_loop: bool                # lexically inside for/while: >1 instance

    @property
    def key(self) -> Tuple[str, int]:
        return (self.module, self.lineno)


class CallGraph:
    """Resolved edges + spawn sites, with reachability queries."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: List[CallEdge] = []
        self.spawns: List[SpawnSite] = []
        self._out: Dict[str, List[CallEdge]] = {}

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)

    def callees(self, qualname: str) -> List[CallEdge]:
        return self._out.get(qualname, [])

    def reachable_from(self, roots: Iterator[str]) -> Set[str]:
        """Transitive closure over call edges from the given roots."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._out.get(current, ()):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def process_reachable(self) -> Dict[str, List[SpawnSite]]:
        """function qualname -> spawn sites whose process reaches it."""
        result: Dict[str, List[SpawnSite]] = {}
        for spawn in self.spawns:
            for qualname in self.reachable_from(iter([spawn.root])):
                sites = result.setdefault(qualname, [])
                if spawn not in sites:
                    sites.append(spawn)
        return result

    def shortest_chain(self, root: str,
                       target: str) -> Optional[List[str]]:
        """Fewest-edges call path root -> target (BFS), or None."""
        if root == target:
            return [root]
        parents: Dict[str, str] = {root: ""}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for edge in self._out.get(current, ()):
                if edge.callee in parents:
                    continue
                parents[edge.callee] = current
                if edge.callee == target:
                    chain = [target]
                    while chain[-1] != root:
                        chain.append(parents[chain[-1]])
                    return chain[::-1]
                queue.append(edge.callee)
        return None


def _call_name(node: ast.expr) -> Optional[str]:
    """Dotted source text of a call target, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        inner = _call_name(node.value)
        return f"{inner}.{node.attr}" if inner else None
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Collects call edges + spawn sites within one function body."""

    def __init__(self, graph: CallGraph, func: FunctionInfo,
                 cls: Optional[ClassInfo]) -> None:
        self.graph = graph
        self.index = graph.index
        self.func = func
        self.cls = cls
        self.loop_depth = 0
        #: local var -> class qualname, from `var = ClassName(...)`
        #: assignments and annotated parameters
        self.local_types: Dict[str, str] = {}
        self._collect_param_types()

    # -- type seeding ------------------------------------------------------

    def _collect_param_types(self) -> None:
        args = getattr(self.func.node, "args", None)
        if args is None:
            return
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.annotation is None:
                continue
            name = _call_name(arg.annotation)
            if name is None:
                continue
            resolved = self.index.resolve(self.func.module, name)
            if resolved in self.index.classes:
                self.local_types[arg.arg] = resolved

    # -- resolution --------------------------------------------------------

    def _resolve_call(self, call: ast.Call,
                      from_yield: bool = False) -> Optional[str]:
        """The project function a call lands in, or None."""
        func = call.func
        index = self.index
        module = self.func.module
        # self.method(...) / cls attribute chains
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and self.cls is not None:
                    target = index.mro_method(self.cls.qualname,
                                              func.attr)
                    if target is not None:
                        return target.qualname
                # var.method(...) with a known local type
                cls_qual = self.local_types.get(value.id)
                if cls_qual is not None:
                    target = index.mro_method(cls_qual, func.attr)
                    if target is not None:
                        return target.qualname
            dotted = _call_name(func)
            if dotted is not None:
                resolved = index.resolve(module, dotted)
                if resolved in index.functions:
                    return resolved
                if resolved in index.classes:
                    init = index.mro_method(resolved, "__init__")
                    return init.qualname if init is not None else None
            # unique-method-name fallback, for process chains only:
            # `yield from host.mem.access(...)` must link even though
            # we cannot type `host.mem`.  Restricted to yield-from to
            # keep plain-call false edges out of the graph.
            if from_yield:
                owners = index.method_index.get(func.attr, ())
                if len(owners) == 1:
                    target = index.classes[owners[0]].methods[func.attr]
                    return target.qualname
            return None
        if isinstance(func, ast.Name):
            resolved = index.resolve(module, func.id)
            if resolved in index.functions:
                return resolved
            if resolved in index.classes:
                init = index.mro_method(resolved, "__init__")
                return init.qualname if init is not None else None
        return None

    def _record(self, call: ast.Call, from_yield: bool) -> None:
        callee = self._resolve_call(call, from_yield=from_yield)
        if callee is not None:
            self.graph.add_edge(CallEdge(
                caller=self.func.qualname, callee=callee,
                lineno=call.lineno, is_yield_from=from_yield))

    def _spawn_root(self, call: ast.Call) -> Optional[ast.Call]:
        """The generator call spawned by this node, if it is a spawn."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "process":
            if call.args and isinstance(call.args[0], ast.Call):
                return call.args[0]
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name == "run_proc" and len(call.args) >= 2 \
                and isinstance(call.args[1], ast.Call):
            return call.args[1]
        return None

    # -- visitors ----------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:          # noqa: N802
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:      # noqa: N802
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_FunctionDef(self, node) -> None:           # noqa: N802
        if node is self.func.node:
            self.generic_visit(node)
        # nested defs are indexed separately; don't double-walk

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:    # noqa: N802
        if isinstance(node.value, ast.Call):
            name = _call_name(node.value.func)
            if name is not None:
                resolved = self.index.resolve(self.func.module, name)
                if resolved in self.index.classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.local_types[target.id] = resolved
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:  # noqa: N802
        if isinstance(node.value, ast.Call):
            self._record(node.value, from_yield=True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:        # noqa: N802
        spawned = self._spawn_root(node)
        if spawned is not None:
            root = self._resolve_call(spawned, from_yield=True)
            if root is not None:
                self.graph.spawns.append(SpawnSite(
                    spawner=self.func.qualname, root=root,
                    module=self.func.module, lineno=node.lineno,
                    end_lineno=getattr(node, "end_lineno", node.lineno),
                    in_loop=self.loop_depth > 0))
        else:
            self._record(node, from_yield=False)
        self.generic_visit(node)


class _TopLevelWalker(_FunctionWalker):
    """Spawn sites can also appear at module top level (scripts)."""

    def __init__(self, graph: CallGraph, module: str,
                 tree: ast.Module) -> None:
        top = FunctionInfo(
            qualname=f"{module}.<module>", module=module, cls=None,
            name="<module>", node=tree, lineno=0,
            end_lineno=10**9, is_generator=False)
        super().__init__(graph, top, None)

    def visit_FunctionDef(self, node) -> None:           # noqa: N802
        pass   # real functions are walked by their own walker

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node) -> None:              # noqa: N802
        pass


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Walk every indexed function once and resolve its edges."""
    graph = CallGraph(index)
    for info in index.modules.values():
        for func in info.functions.values():
            cls = index.class_of(func)
            _FunctionWalker(graph, func, cls).visit(func.node)
        _TopLevelWalker(graph, info.name, info.tree).visit(info.tree)
    return graph
