"""SARIF 2.1.0 export for fcc-check findings.

SARIF (Static Analysis Results Interchange Format) is what code
hosts' code-scanning UIs ingest; ``repro check --program --sarif``
emits one ``run`` whose driver lists every registered rule (per-file
and whole-program) with its rationale, and one ``result`` per
violation.  Baselined findings are exported at ``note`` level with
``baselineState: "unchanged"``; new findings are ``error``.

The subset written here is deliberately small and schema-stable — the
same properties every mainstream SARIF consumer reads — and is
validated structurally by ``tests/test_analysis_program.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..lint import Violation

__all__ = ["violations_to_sarif"]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptor(check) -> Dict[str, object]:
    descriptor: Dict[str, object] = {
        "id": check.code,
        "name": check.slug,
        "shortDescription": {"text": check.summary},
    }
    if check.rationale:
        descriptor["fullDescription"] = {"text": check.rationale}
    if check.example_fix:
        descriptor["help"] = {"text": check.example_fix}
    return descriptor


def _result(violation: Violation, level: str,
            baseline_state: Optional[str]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": violation.code,
        "level": level,
        "message": {"text": f"[{violation.rule}] {violation.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": violation.path},
                "region": {
                    "startLine": max(violation.line, 1),
                    "startColumn": violation.col + 1,
                    "endLine": max(violation.end_line,
                                   violation.line, 1),
                },
            },
        }],
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def violations_to_sarif(new: Sequence[Violation],
                        baselined: Sequence[Violation] = (),
                        ) -> Dict[str, object]:
    """Build the SARIF document; ``new`` fail-level, ``baselined``
    note-level."""
    from ..lint import all_checks
    from .checks import all_program_checks
    rules: List[Dict[str, object]] = []
    seen = set()
    for check in list(all_checks()) + list(all_program_checks()):
        if check.code not in seen:
            seen.add(check.code)
            rules.append(_rule_descriptor(check))
    results = [_result(v, "error", "new" if baselined else None)
               for v in new]
    results += [_result(v, "note", "unchanged") for v in baselined]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "fcc-check",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
