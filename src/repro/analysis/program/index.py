"""The ProjectIndex: every module of a package, parsed once.

The index is the shared substrate of all whole-program checks.  It is
a pure ``ast`` structure — nothing is imported or executed — built in
one pass over the package directory:

* **Module table** — dotted module name -> :class:`ModuleInfo`
  (its :class:`~repro.analysis.lint.SourceFile`, parsed tree, and
  symbol tables).
* **Symbol resolution** — per module, the mapping from a local name to
  the dotted project symbol it denotes: ``from ..sim import
  Environment`` binds ``Environment`` to ``repro.sim.Environment``;
  re-exports through ``__init__`` chase one level per hop.
* **Functions and classes** — every function/method keyed by its
  qualified name ``module.Class.method`` / ``module.func``, with line
  spans (for mapping per-file violations onto enclosing functions),
  generator-ness, and per-class base-name lists for method lookup.
* **Import graph** — module -> set of project modules it imports,
  so tooling can reason about layering without re-parsing.

Everything downstream (call graph, taint, conformance) is derived
from this object; building it on the full ``repro`` package takes
well under a second.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import SourceFile, iter_source_files

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex",
           "build_index"]


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str                 # module.Class.method / module.func
    module: str                   # dotted module name
    cls: Optional[str]            # class qualname within module, or None
    name: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    lineno: int
    end_lineno: int
    is_generator: bool

    @property
    def display(self) -> str:
        return self.qualname


@dataclasses.dataclass
class ClassInfo:
    """One class definition and its (unresolved) base names."""

    qualname: str                 # module.Class
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str]              # source-level base expressions
    methods: Dict[str, FunctionInfo] = dataclasses.field(
        default_factory=dict)
    class_attrs: Dict[str, ast.expr] = dataclasses.field(
        default_factory=dict)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module plus its symbol tables."""

    name: str                     # dotted name, e.g. repro.sim.engine
    source: SourceFile
    tree: ast.Module
    #: local name -> dotted target ("repro.sim.Environment" or module)
    symbols: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = dataclasses.field(
        default_factory=dict)     # local qualname ("f", "C.m") -> info
    classes: Dict[str, ClassInfo] = dataclasses.field(
        default_factory=dict)     # local name -> info
    imports: Set[str] = dataclasses.field(default_factory=set)
    is_package: bool = False      # an __init__.py module


def _function_is_generator(node: ast.AST) -> bool:
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return False


def _base_name(node: ast.expr) -> Optional[str]:
    """`Foo` -> "Foo", `mod.Foo` -> "mod.Foo", else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        inner = _base_name(node.value)
        return f"{inner}.{node.attr}" if inner else None
    return None


class ProjectIndex:
    """See the module docstring; build with :func:`build_index`."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        #: files that failed to parse: (display path, line, col, msg)
        self.syntax_errors: List[Tuple[str, int, int, str]] = []
        #: every function in the project, by global qualname
        self.functions: Dict[str, FunctionInfo] = {}
        #: every class, by global qualname module.Class
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> class qualnames defining it (for unique-name
        #: fallback resolution of attribute calls)
        self.method_index: Dict[str, List[str]] = {}

    # -- queries -----------------------------------------------------------

    def resolve(self, module: str, name: str) -> Optional[str]:
        """Resolve a (possibly dotted) local name to a project symbol.

        Chases import aliases one module at a time, including one-level
        re-exports through package ``__init__`` modules.  Returns a
        dotted name present in :attr:`functions`, :attr:`classes`, or
        :attr:`modules` — or ``None`` for anything outside the project.
        """
        seen: Set[Tuple[str, str]] = set()
        while True:
            if (module, name) in seen:
                return None
            seen.add((module, name))
            info = self.modules.get(module)
            if info is None:
                return None
            head, _, rest = name.partition(".")
            target = info.symbols.get(head)
            if target is None:
                # a module-local definition?
                candidate = f"{module}.{name}"
                if (candidate in self.functions
                        or candidate in self.classes
                        or candidate in self.modules):
                    return candidate
                return None
            dotted = target + ("." + rest if rest else "")
            if (dotted in self.functions or dotted in self.classes
                    or dotted in self.modules):
                return dotted
            # chase a re-export: target is "pkg.mod.sym" — recurse into
            # the module part with the trailing symbol
            mod_part, _, sym = dotted.rpartition(".")
            if mod_part in self.modules and sym:
                module, name = mod_part, sym
                continue
            return None

    def function_at(self, module: str,
                    lineno: int) -> Optional[FunctionInfo]:
        """The innermost function of ``module`` containing ``lineno``."""
        best: Optional[FunctionInfo] = None
        info = self.modules.get(module)
        if info is None:
            return None
        for func in info.functions.values():
            if func.lineno <= lineno <= func.end_lineno:
                if best is None or func.lineno > best.lineno:
                    best = func
        return best

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def class_of(self, func: FunctionInfo) -> Optional[ClassInfo]:
        if func.cls is None:
            return None
        return self.classes.get(f"{func.module}.{func.cls}")

    def mro_method(self, cls_qualname: str,
                   method: str) -> Optional[FunctionInfo]:
        """Look up ``method`` on a class or its project base classes."""
        seen: Set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                resolved = self.resolve(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None


def _module_name(package: str, root: Path, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def _resolve_relative(module: str, package: str, level: int,
                      target: Optional[str],
                      is_pkg: bool) -> Optional[str]:
    """Absolute dotted module for a ``from ...x import y`` statement."""
    if level == 0:
        return target
    parts = module.split(".")
    # level 1 from a plain module means "its package": drop the module
    # leaf, then one more component per extra level.
    drop = level if not is_pkg else level - 1
    if drop >= len(parts):
        return None
    base = parts[:len(parts) - drop]
    if target:
        base.append(target)
    return ".".join(base)


def _index_module(index: ProjectIndex, info: ModuleInfo) -> None:
    module = info.name
    package = index.package

    def add_function(node, cls_name: Optional[str]) -> FunctionInfo:
        local = f"{cls_name}.{node.name}" if cls_name else node.name
        qualname = f"{module}.{local}"
        func = FunctionInfo(
            qualname=qualname, module=module, cls=cls_name,
            name=node.name, node=node, lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno),
            is_generator=_function_is_generator(node))
        info.functions[local] = func
        index.functions[qualname] = func
        return func

    for node in info.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package \
                        or alias.name.startswith(package + "."):
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    info.symbols[local] = target
                    info.imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, package, node.level,
                                     node.module, info.is_package)
            if base is None or not (base == package
                                    or base.startswith(package + ".")):
                continue
            info.imports.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.symbols[alias.asname or alias.name] = \
                    f"{base}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, None)
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{module}.{node.name}", module=module,
                name=node.name, node=node,
                bases=[b for b in map(_base_name, node.bases) if b])
            info.classes[node.name] = cls
            index.classes[cls.qualname] = cls
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    cls.methods[child.name] = add_function(
                        child, node.name)
                    index.method_index.setdefault(
                        child.name, []).append(cls.qualname)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            cls.class_attrs[target.id] = child.value
                elif isinstance(child, ast.AnnAssign) \
                        and child.value is not None \
                        and isinstance(child.target, ast.Name):
                    cls.class_attrs[child.target.id] = child.value


def build_index(root: Optional[Path] = None,
                package: Optional[str] = None) -> ProjectIndex:
    """Parse a package directory into a :class:`ProjectIndex`.

    ``root`` defaults to the installed ``repro`` package; ``package``
    defaults to the directory's name.  Unparseable files are skipped
    here — :func:`~repro.analysis.program.checks.run_program` surfaces
    them as ``FCC000 [syntax]`` via the per-file machinery instead.
    """
    from ..lint import default_lint_root
    root = Path(root) if root is not None else default_lint_root()
    package = package or root.name
    index = ProjectIndex(root, package)
    for path in iter_source_files([root]):
        source = SourceFile(path)
        try:
            tree = source.parse()
        except SyntaxError as exc:
            index.syntax_errors.append(
                (source.display, exc.lineno or 0, exc.offset or 0,
                 exc.msg or "could not parse"))
            continue
        name = _module_name(package, root, path)
        info = ModuleInfo(name=name, source=source, tree=tree,
                          is_package=path.name == "__init__.py")
        index.modules[name] = info
    # Two passes: symbols may point at modules indexed later.
    for info in index.modules.values():
        _index_module(index, info)
    return index
