"""Correctness tooling: static lint + runtime sanitizers (``fcc-check``).

The repository's reproduction contract is *determinism*: a run is a
pure function of its seed, and the paper-shape numbers (Table 2, C2,
A1) must be bit-stable across refactors.  The bugs that silently break
that contract — a wall-clock call, an unseeded RNG, a leaked credit, a
process blocked forever on an event nobody will trigger — do not
crash; they just quietly move numbers.  This package proves the
invariants instead of sampling them:

* :mod:`repro.analysis.lint` — an AST-based, pluggable static checker
  (stdlib ``ast`` only) with per-file determinism rules
  FCC001..FCC007; see :mod:`repro.analysis.checks`.
* :mod:`repro.analysis.program` — the whole-program engine: one
  :class:`~repro.analysis.program.ProjectIndex` over the package, a
  conservative call graph, and interprocedural rules FCC101..FCC103
  (determinism taint, static write-race, batch-protocol conformance)
  with baseline gating and SARIF export.
* :mod:`repro.analysis.sanitizers` — opt-in runtime sanitizers hooked
  into the simulation kernel via ``Environment(sanitize=True)``:
  credit conservation, event lifecycle, same-timestamp write-write
  races, and a drain-time deadlock reporter.
* :mod:`repro.analysis.runners` — canonical sanitized experiment runs
  for ``repro check --sanitize <experiment>``.

All heads surface through ``python -m repro check`` (also installed
as the ``repro`` console script): ``--lint``, ``--program``,
``--sanitize``, ``--explain``.
"""

from .lint import LintCheck, Violation, run_lint, violations_to_json
from .sanitizers import Finding, RuntimeSanitizer

__all__ = [
    "Finding",
    "LintCheck",
    "RuntimeSanitizer",
    "Violation",
    "run_lint",
    "violations_to_json",
]
