"""UniFabric: a reproduction of *Fabric-Centric Computing* (HOTOS '23).

A discrete-event-simulated CXL memory fabric and composable
infrastructure, plus the FCC runtime the paper proposes: elastic
transactions and managed data movement (DP#1), the node-type-conscious
unified heap (DP#2), idempotent tasks and cooperative scalable
functions (DP#3), and the fabric central arbitrator (DP#4).

Quickstart::

    from repro import Environment, ClusterSpec, build_cluster, UniFabric

    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=2))
    uni = UniFabric(env, cluster)
    heap = uni.heap("host0")
    obj = heap.allocate(4096)              # lands in the fastest tier

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from . import params
from .core import (
    ArbiterClient,
    ETrans,
    FabricArbiter,
    FailureInjector,
    FunctionChassis,
    HandlerResult,
    IdempotentTask,
    Message,
    MovementOrchestrator,
    ScalableFunction,
    SmartPointer,
    Task,
    TaskRuntime,
    UniFabric,
    UnifiedHeap,
)
from .infra import (
    Cluster,
    ClusterSpec,
    CpuCore,
    FaaSpec,
    FamSpec,
    HostServer,
    build_cluster,
)
from .mem import NodeKind
from .sim import Environment, SimRng, StatSeries, Tracer
from .telemetry import MetricRegistry, Telemetry, TimelineSampler, span

__version__ = "1.0.0"

__all__ = [
    "params",
    "ArbiterClient",
    "ETrans",
    "FabricArbiter",
    "FailureInjector",
    "FunctionChassis",
    "HandlerResult",
    "IdempotentTask",
    "Message",
    "MovementOrchestrator",
    "ScalableFunction",
    "SmartPointer",
    "Task",
    "TaskRuntime",
    "UniFabric",
    "UnifiedHeap",
    "Cluster",
    "ClusterSpec",
    "CpuCore",
    "FaaSpec",
    "FamSpec",
    "HostServer",
    "build_cluster",
    "NodeKind",
    "Environment",
    "SimRng",
    "StatSeries",
    "Tracer",
    "MetricRegistry",
    "Telemetry",
    "TimelineSampler",
    "span",
    "__version__",
]
