"""Physical-layer model of one Flex Bus link direction.

Models what section 2.1 describes: framing/(de-)serialization of flits
at the configured lane width and transfer rate, 68 B / 256 B flit modes,
and x4/x8/x16 bifurcation.  The physical layer is a pure timing model —
it owns the wire (a unit resource: one flit serializes at a time) and
charges serialization plus propagation delay per flit.
"""

from __future__ import annotations

from typing import Generator, Optional

from .. import params
from ..sim import Environment, Event, Resource, Tracer
from .flit import Flit

__all__ = ["PhysicalLayer", "bifurcate"]


class PhysicalLayer:
    """Timing model for one unidirectional physical link.

    ``transmit`` is a process-style generator: it acquires the wire,
    waits the serialization time of the flit, releases the wire, then
    waits the propagation delay.  Back-to-back flits therefore pipeline
    correctly (the wire frees before the previous flit lands).
    """

    def __init__(self, env: Environment, link_params: params.LinkParams,
                 name: str = "phys", tracer: Optional[Tracer] = None) -> None:
        if link_params.lanes not in params.LANE_WIDTHS:
            raise ValueError(
                f"unsupported bifurcation x{link_params.lanes}; "
                f"must be one of {params.LANE_WIDTHS}")
        if link_params.flit_bytes not in (params.FLIT_BYTES_SMALL,
                                          params.FLIT_BYTES_LARGE):
            raise ValueError(f"unsupported flit size {link_params.flit_bytes}")
        self.env = env
        self.params = link_params
        self.name = name
        self.tracer = tracer
        self._wire = Resource(env, capacity=1)
        self.flits_sent = 0
        self.bytes_sent = 0

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        return self.params.bytes_per_ns

    def serialization_ns(self, flit: Flit) -> float:
        return self.params.serialization_ns(flit.size_bytes)

    def serialize(self, flit: Flit) -> Generator[Event, None, None]:
        """Acquire the wire and push one flit's bits onto it."""
        with self._wire.request() as grant:
            yield grant
            yield self.env.timeout(self.serialization_ns(flit))
        self.flits_sent += 1
        self.bytes_sent += flit.size_bytes
        if self.tracer is not None:
            self.tracer.record(self.env.now, "phys.tx", link=self.name,
                               flit=repr(flit), bytes=flit.size_bytes)

    def transmit(self, flit: Flit) -> Generator[Event, None, None]:
        """Serialize one flit onto the wire and propagate it."""
        yield from self.serialize(flit)
        yield self.env.timeout(self.params.propagation_ns)

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of the elapsed window the wire spent serializing."""
        if elapsed_ns <= 0:
            return 0.0
        busy = self.bytes_sent / self.bandwidth_bytes_per_ns
        return min(1.0, busy / elapsed_ns)


def bifurcate(link_params: params.LinkParams, ways: int) -> list:
    """Split an x16 link into ``ways`` equal narrower links.

    Models Flex Bus bifurcation: an x16 port can be configured as
    2 x8 or 4 x4.  Credits are split evenly too.
    """
    if ways not in (2, 4):
        raise ValueError(f"can only bifurcate 2 or 4 ways, got {ways}")
    if link_params.lanes % ways != 0:
        raise ValueError(
            f"x{link_params.lanes} does not split {ways} ways")
    lanes = link_params.lanes // ways
    if lanes not in params.LANE_WIDTHS:
        raise ValueError(f"resulting width x{lanes} unsupported")
    credits = max(1, link_params.credits // ways)
    return [
        params.LinkParams(lanes=lanes, gt_per_s=link_params.gt_per_s,
                          flit_bytes=link_params.flit_bytes,
                          propagation_ns=link_params.propagation_ns,
                          credits=credits)
        for _ in range(ways)
    ]
