"""Flit and packet definitions for the simulated memory fabric.

A *packet* is a transaction-layer message (a memory read request, a
completion with data, a snoop...).  The link layer fragments packets
into *flits* — the fixed-size units that credits, serialization, and
switching operate on (section 2.1 of the paper: 68 B and 256 B flit
modes).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Dict, List, Optional

from .. import params

__all__ = ["Channel", "PacketKind", "Packet", "Flit", "TagAllocator",
           "fragment", "Reassembler"]


class Channel(enum.Enum):
    """CXL transaction-layer channels plus the DP#4 control lane."""

    CXL_IO = "cxl.io"
    CXL_MEM = "cxl.mem"
    CXL_CACHE = "cxl.cache"
    CONTROL = "control"      # dedicated in-band arbiter lane (DP#4)


class PacketKind(enum.Enum):
    """Transaction-layer opcodes (a practical subset of CXL's)."""

    MEM_RD = "MemRd"            # read request (no payload)
    MEM_WR = "MemWr"            # write request (carries payload)
    MEM_RD_DATA = "MemData"     # read completion (carries payload)
    MEM_WR_ACK = "Cmp"          # write completion (no payload)
    SNP_INV = "SnpInv"          # snoop-invalidate (CXL.cache)
    SNP_RSP = "RspI"            # snoop response
    IO_RD = "IoRd"              # non-coherent PCIe-style read
    IO_WR = "IoWr"              # non-coherent PCIe-style write
    IO_CPL = "IoCpl"            # PCIe-style completion
    CTRL_REQ = "CtrlReq"        # arbiter control-plane request
    CTRL_RSP = "CtrlRsp"        # arbiter control-plane response


#: Kinds that carry a data payload of ``nbytes`` on the wire.
PAYLOAD_KINDS = frozenset({
    PacketKind.MEM_WR, PacketKind.MEM_RD_DATA, PacketKind.IO_WR,
    PacketKind.IO_CPL,
})

#: Request kinds, for which a response with the same tag is expected.
REQUEST_KINDS = frozenset({
    PacketKind.MEM_RD, PacketKind.MEM_WR, PacketKind.SNP_INV,
    PacketKind.IO_RD, PacketKind.IO_WR, PacketKind.CTRL_REQ,
})

#: request kind -> matching response kind
RESPONSE_FOR = {
    PacketKind.MEM_RD: PacketKind.MEM_RD_DATA,
    PacketKind.MEM_WR: PacketKind.MEM_WR_ACK,
    PacketKind.SNP_INV: PacketKind.SNP_RSP,
    PacketKind.IO_RD: PacketKind.IO_CPL,
    PacketKind.IO_WR: PacketKind.IO_CPL,
    PacketKind.CTRL_REQ: PacketKind.CTRL_RSP,
}

_packet_counter = itertools.count()


@dataclasses.dataclass
class Packet:
    """A transaction-layer message routed through the fabric.

    ``src`` and ``dst`` are fabric port identifiers (PBR IDs assigned by
    the fabric manager).  ``tag`` pairs a response with its request.
    ``meta`` carries model-level annotations (ownership, QoS class...)
    that a real fabric would encode in header bits.  ``trace`` is the
    causal :class:`~repro.telemetry.causal.TraceContext` riding with a
    sampled transaction (None for untraced packets — the common case),
    and responses inherit it so end-to-end latency attributes to one
    trace id.
    """

    kind: PacketKind
    channel: Channel
    src: int
    dst: int
    addr: int = 0
    nbytes: int = params.CACHELINE_BYTES
    tag: int = 0
    birth_ns: float = 0.0
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    trace: Optional[Any] = None
    uid: int = dataclasses.field(default_factory=lambda: next(_packet_counter))

    @property
    def wire_bytes(self) -> int:
        """Bytes this packet occupies on the wire (header + payload)."""
        header = 16
        payload = self.nbytes if self.kind in PAYLOAD_KINDS else 0
        return header + payload

    def make_response(self, kind: Optional[PacketKind] = None,
                      nbytes: Optional[int] = None) -> "Packet":
        """Build the response packet for this request (src/dst swapped)."""
        if self.kind not in RESPONSE_FOR:
            raise ValueError(f"{self.kind} is not a request kind")
        response_kind = kind or RESPONSE_FOR[self.kind]
        if nbytes is None:
            nbytes = self.nbytes if response_kind in PAYLOAD_KINDS else 0
        return Packet(kind=response_kind, channel=self.channel,
                      src=self.dst, dst=self.src, addr=self.addr,
                      nbytes=nbytes, tag=self.tag, birth_ns=self.birth_ns,
                      meta=dict(self.meta), trace=self.trace)

    def __repr__(self) -> str:
        return (f"<Packet {self.kind.value} {self.channel.value} "
                f"{self.src}->{self.dst} addr={self.addr:#x} "
                f"tag={self.tag} {self.nbytes}B>")


@dataclasses.dataclass(eq=False)
class Flit:
    """A fixed-size link-layer unit.

    ``index``/``total`` locate the flit within its parent packet;
    reassembly completes when all ``total`` flits arrived.  ``flow`` is
    stamped by switches with the ingress-port flow name for per-flow
    credit accounting.  ``cspan`` holds the open causal span id while
    the flit sits in a queue whose enqueue and dequeue sides are
    different code paths (tx queue, egress scheduler); stages are
    sequential per flit so one slot suffices.
    """

    packet: Packet
    index: int
    total: int
    size_bytes: int
    vc: int = 0
    flow: Optional[str] = None
    cspan: Optional[int] = None

    @property
    def is_tail(self) -> bool:
        return self.index == self.total - 1

    def transport_key(self) -> tuple:
        """The (size, VC) signature the batched fast paths key on.

        Flits sharing a transport key serialize at the same per-flit
        rate and draw credits from the same pool, so a queued run of
        them has a closed-form schedule.  The link sender's vectorized
        transport and the switch's batched egress sweep batch exactly
        such homogeneous head runs and fall back to the scalar per-flit
        path on the first mismatch (see ARCHITECTURE.md section 13).
        """
        return (self.size_bytes, self.vc)

    def __repr__(self) -> str:
        return (f"<Flit {self.index + 1}/{self.total} of pkt {self.packet.uid} "
                f"vc={self.vc} {self.size_bytes}B>")


class TagAllocator:
    """Allocates transaction tags from a bounded namespace.

    Real adapters have a finite tag space (outstanding-request limit);
    exhausting it is a modelled back-pressure condition, so ``allocate``
    raises when empty and callers gate on :meth:`available`.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._free = list(range(capacity - 1, -1, -1))
        self._inflight: set = set()

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return len(self._inflight)

    def allocate(self) -> int:
        if not self._free:
            raise RuntimeError("tag space exhausted")
        tag = self._free.pop()
        self._inflight.add(tag)
        return tag

    def free(self, tag: int) -> None:
        if tag not in self._inflight:
            raise ValueError(f"tag {tag} not in flight")
        self._inflight.remove(tag)
        self._free.append(tag)


def fragment(packet: Packet,
             flit_bytes: int = params.FLIT_BYTES_SMALL,
             vc: int = 0) -> List[Flit]:
    """Fragment a packet into link-layer flits."""
    total = params.flit_count(packet.wire_bytes, flit_bytes)
    return [Flit(packet=packet, index=i, total=total,
                 size_bytes=flit_bytes, vc=vc)
            for i in range(total)]


class Reassembler:
    """Rebuilds packets from (possibly interleaved) flit streams."""

    def __init__(self) -> None:
        self._partial: Dict[int, int] = {}
        self._completed: set = set()

    def push(self, flit: Flit) -> Optional[Packet]:
        """Account one flit; return the packet once it is complete."""
        uid = flit.packet.uid
        if uid in self._completed:
            raise ValueError(f"duplicate flit for packet {uid}")
        seen = self._partial.get(uid, 0) + 1
        if seen > flit.total:
            raise ValueError(f"duplicate flit for packet {uid}")
        if seen == flit.total:
            self._partial.pop(uid, None)
            self._completed.add(uid)
            if len(self._completed) > 100_000:
                self._completed.clear()  # bound memory on long runs
            return flit.packet
        self._partial[uid] = seen
        return None

    @property
    def pending_packets(self) -> int:
        return len(self._partial)
