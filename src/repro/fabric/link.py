"""Link layer: reliable flit transmission with credit-based flow control.

Implements what section 2.1 describes for the Flex Bus link layer:

* hop-by-hop **credit-based flow control** — the sender may only push a
  flit when it holds a credit for the receiver's buffer on that virtual
  channel;
* a **credit update protocol** — the receiver returns credits after a
  configurable update cadence (piggybacking delay);
* an **overcommitment scheme** — the receiver may grant more credits
  than buffer slots to improve utilization of bursty channels;
* **ack/retry reliability** — flits that fail CRC (injected error rate)
  are retransmitted;
* an optional **dedicated control lane** (design principle #4) — a thin
  reserved slice of bandwidth that arbiter traffic uses without taking
  data-path credits.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

try:
    import numpy as _np
except ImportError:      # pragma: no cover - numpy ships with the toolchain
    _np = None

from .. import params
from ..sim import Container, Environment, Event, SimRng, Store, Tracer
from ..telemetry.causal import CREDIT_STALL, QUEUEING, SERIALIZATION, WIRE
from .flit import Channel, Flit
from .phys import PhysicalLayer

__all__ = ["LinkLayer"]

#: Events the scalar sender spends per flit beyond the rx StorePut
#: (which both paths pay): the tx-queue StoreGet, the credit
#: ContainerGet, the wire Request grant, the serialization Timeout,
#: the ``_propagate`` start hook, the propagation Timeout, and the
#: propagation process completion.  The vector path spends one initial
#: StoreGet + one bulk credit get + one wire grant + k delivery hooks
#: + one completion Timeout, so a k-flit batch elides
#: ``7k - (k + 4) = 6k - 4`` events; crediting them via
#: ``Environment.credit_elided`` keeps ``events_processed``
#: bit-identical to the scalar path (pinned by the batch-identity
#: tests).
_SCALAR_EVENTS_PER_FLIT = 7


class LinkLayer:
    """One unidirectional fabric link with CFC.

    The receiving component drains :attr:`rx` and must call
    :meth:`consume` for every flit it takes; that is what returns the
    credit to the sender (after the credit-update delay).
    """

    def __init__(self, env: Environment,
                 link_params: Optional[params.LinkParams] = None,
                 vcs: int = 2,
                 name: str = "link",
                 tracer: Optional[Tracer] = None,
                 overcommit: float = 1.0,
                 credit_update_ns: float = params.CREDIT_UPDATE_INTERVAL_NS,
                 control_lane: bool = False,
                 error_rate: float = 0.0,
                 rng: Optional[SimRng] = None,
                 tx_queue_capacity: float = float("inf")) -> None:
        if vcs < 1:
            raise ValueError(f"need at least one VC, got {vcs}")
        if overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1.0, got {overcommit}")
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        self.env = env
        self.params = link_params or params.LinkParams()
        self.name = name
        self.vcs = vcs
        self.tracer = tracer
        self.credit_update_ns = credit_update_ns
        self.error_rate = error_rate
        self.rng = rng or SimRng(0)
        self.phys = PhysicalLayer(env, self.params, name=f"{name}.phys",
                                  tracer=tracer)

        initial = int(self.params.credits * overcommit)
        self._credit_pools: List[Container] = [
            Container(env, capacity=max(initial, self.params.credits) * 4,
                      init=initial)
            for _ in range(vcs)
        ]
        self._tx_queues: List[Store] = [
            Store(env, capacity=tx_queue_capacity) for _ in range(vcs)]
        self.rx: Store = Store(env)
        self.retransmissions = 0
        self.max_rx_occupancy = 0
        self._rx_occupancy = 0
        self._granted = [initial] * vcs

        # Telemetry is cached once; every hot-path hook below is a
        # single `is None` branch when observability is off.
        self._tel = tel = env.telemetry
        self._causal = tel.causal if tel is not None else None
        if self._causal is not None:
            # Sites are formatted once here, never per event.
            self._site_txq = f"link.{name}.txq"
            self._site_credit = f"link.{name}.credit"
            self._site_serialize = f"link.{name}.serialize"
            self._site_wire = f"link.{name}.wire"
        if tel is not None:
            registry = tel.registry
            self._m_flits = registry.counter(f"link.{name}.flits")
            self._m_bytes = registry.counter(f"link.{name}.bytes")
            self._m_retries = registry.counter(f"link.{name}.retries")
            tel.add_probe(f"link.{name}.rx_occupancy",
                          lambda: self._rx_occupancy,
                          track=f"link.{name}")
            for vc in range(vcs):
                pool = self._credit_pools[vc]
                queue = self._tx_queues[vc]
                tel.add_probe(f"link.{name}.vc{vc}.credits",
                              lambda p=pool: p.level,
                              track=f"link.{name}")
                tel.add_probe(f"link.{name}.vc{vc}.tx_backlog",
                              lambda q=queue: len(q),
                              track=f"link.{name}")

        # Vectorized transport: legal only when nothing can observe the
        # per-flit intermediate events.  The static part of the predicate
        # is evaluated once; `_managed` / `_direct_used` flip to True the
        # first time an allocator or a switch egress touches the credit
        # pools, which permanently routes this link back to the scalar
        # path (those callers share the pools / the wire and must see
        # per-flit interleaving).
        self._managed = False
        self._direct_used = False
        self._vector_ok = (
            _np is not None
            and env._batch
            and env._sanitizer is None
            and self._tel is None
            and tracer is None
            and error_rate == 0.0
            and vcs == 1
            and not control_lane
            and tx_queue_capacity == float("inf"))
        # Credit returns only need the event chain to be unobservable —
        # the wire and tx queues are not involved, so multi-VC and
        # bounded-queue links still qualify.
        self._fast_credit = (env._batch and env._sanitizer is None
                             and self._tel is None)

        self.control_lane_enabled = control_lane
        if control_lane:
            ctrl_bw = params.LinkParams(
                lanes=4, gt_per_s=self.params.gt_per_s
                * params.CONTROL_LANE_FRACTION * 4,
                flit_bytes=params.FLIT_BYTES_SMALL,
                propagation_ns=self.params.propagation_ns)
            self._control_phys = PhysicalLayer(env, ctrl_bw,
                                               name=f"{name}.ctrl")
            self._control_queue: Store = Store(env)
            env.process(self._control_sender(), name=f"{name}.ctrl-tx",
                        daemon=True)
        for vc in range(vcs):
            env.process(self._sender(vc), name=f"{name}.tx{vc}", daemon=True)

    # -- sending ----------------------------------------------------------

    def send(self, flit: Flit) -> Event:
        """Enqueue a flit for transmission; fires when queued (not sent)."""
        if self._causal is not None and flit.packet.trace is not None:
            # Residency in the tx queue, closed by the sender loop when
            # it dequeues the flit (HoL time behind earlier flits).
            flit.cspan = self._causal.begin(
                flit.packet.trace, self.env.now, QUEUEING, self._site_txq)
        if self.control_lane_enabled and flit.packet.channel is Channel.CONTROL:
            return self._control_queue.put(flit)
        if not 0 <= flit.vc < self.vcs:
            raise ValueError(f"flit VC {flit.vc} out of range")
        return self._tx_queues[flit.vc].put(flit)

    def tx_backlog(self, vc: int) -> int:
        return len(self._tx_queues[vc])

    def transmit_direct(self, flit: Flit) -> Generator[Event, None, None]:
        """Synchronously push one flit: credit, then wire.

        Used by switch egress pipelines so *their* scheduler — not the
        link's per-VC queues — decides wire order.  The caller blocks
        until the flit has been serialized (and so observes link-level
        backpressure directly); propagation overlaps with the next flit.
        """
        self._direct_used = True
        if self.control_lane_enabled and flit.packet.channel is Channel.CONTROL:
            yield from self._transmit_reliably(self._control_phys, flit)
            self.env.process(self._propagate(flit))
            return
        credit = self._credit_pools[flit.vc].get(1)
        if self._causal is not None and flit.packet.trace is not None:
            self._causal.wait(flit.packet.trace, credit, CREDIT_STALL,
                              self._site_credit)
        yield credit
        yield from self._transmit_reliably(self.phys, flit)
        self.env.process(self._propagate(flit))

    def _propagate(self, flit: Flit) -> Generator[Event, None, None]:
        wire = None
        if self._causal is not None and flit.packet.trace is not None:
            wire = self._causal.begin(flit.packet.trace, self.env.now,
                                      WIRE, self._site_wire)
        yield self.env.timeout(self.params.propagation_ns)
        if wire is not None:
            self._causal.end(flit.packet.trace, self.env.now, wire)
        self._deliver(flit)

    # -- credit management (exposed to allocators / the arbiter) ----------

    def credits_available(self, vc: int) -> float:
        return self._credit_pools[vc].level

    def credits_granted(self, vc: int) -> int:
        return self._granted[vc]

    def grant_credits(self, vc: int, n: int) -> None:
        """Give the sender ``n`` extra credits on ``vc`` (allocator API)."""
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        self._managed = True
        self._granted[vc] += n
        self._credit_pools[vc].put(n)

    def revoke_credits(self, vc: int, n: int) -> Event:
        """Take back ``n`` credits; completes once they are reclaimable."""
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        self._managed = True
        self._granted[vc] = max(0, self._granted[vc] - n)
        return self._credit_pools[vc].get(n)

    # -- receiving --------------------------------------------------------

    def consume(self, flit: Flit) -> None:
        """Receiver took ``flit`` out of its buffer: return the credit."""
        self._rx_occupancy -= 1
        if flit.packet.channel is Channel.CONTROL and self.control_lane_enabled:
            return  # control lane is credit-free
        if self._fast_credit:
            # One future hook + the ContainerPut replace the scalar
            # four-event credit-return process (start hook, timeout,
            # put, completion); the put lands at the identical time.
            # The two elided events are credited where the scalar path
            # would have dispatched them — the start hook here, the
            # process completion inside the delayed hook — so a run
            # that ends with credit returns still pending counts the
            # same events either way.
            env = self.env
            pool = self._credit_pools[flit.vc]

            def _put(event, env=env, pool=pool):
                pool.put(1)
                env.credit_elided(1)

            env._schedule_hook_at(env.now + self.credit_update_ns,
                                  _put, True, None)
            env.credit_elided(1)
            return
        self.env.process(self._return_credit(flit.vc),
                         name=f"{self.name}.credit-return")

    # -- internals ---------------------------------------------------------

    def _return_credit(self, vc: int) -> Generator[Event, None, None]:
        yield self.env.timeout(self.credit_update_ns)
        yield self._credit_pools[vc].put(1)

    def _gather_run(self, queue: Store, pool: Container,
                    first: Flit) -> Optional[List[Flit]]:
        """Pull the homogeneous same-size prefix of the tx backlog.

        Returns ``None`` unless at least one more flit of ``first``'s
        size is queued and a credit is available for every flit taken —
        the scalar path must not have been able to block on credits
        anywhere inside the run, or timings would differ.
        """
        items = queue.items
        key = first.transport_key()
        limit = min(len(items), int(pool.level) - 1)
        n = 0
        while n < limit and items[n].transport_key() == key:
            n += 1
        if n == 0:
            return None
        run = [first]
        run.extend(items[:n])
        del items[:n]
        return run

    def _transmit_vector(self, pool: Container,
                         run: List[Flit]) -> Generator[Event, None, None]:
        """Serialize a homogeneous run with one closed-form schedule.

        The scalar path's per-flit chain is deterministic here (no
        credit stalls, no wire contention, no retries), so serialization
        boundaries are the running sum ``now + i*ser_ns`` — computed
        with ``cumsum``, which accumulates sequentially and therefore
        reproduces the scalar path's chained additions bit-for-bit.
        Each delivery lands on its exact scalar timestamp via an
        absolute-time hook; one Timeout resumes the sender where the
        scalar loop would have finished the last serialization.
        """
        env = self.env
        phys = self.phys
        k = len(run)
        yield pool.get(float(k))
        wire = phys._wire.request()
        yield wire
        ser_ns = phys.serialization_ns(run[0])
        ends = _np.cumsum([env.now] + [ser_ns] * k)
        prop = self.params.propagation_ns
        deliver = self._deliver
        hook = env._schedule_hook_at
        for i, flit in enumerate(run):
            hook(float(ends[i + 1]) + prop,
                 lambda event, flit=flit: deliver(flit), True, None)
        phys.flits_sent += k
        phys.bytes_sent += k * run[0].size_bytes
        env.credit_elided(_SCALAR_EVENTS_PER_FLIT * k - (k + 4))
        yield env.timeout_at(float(ends[k]))
        phys._wire.release(wire)

    def _sender(self, vc: int) -> Generator[Event, None, None]:
        queue = self._tx_queues[vc]
        pool = self._credit_pools[vc]
        causal = self._causal
        wire = self.phys._wire
        while True:
            flit = yield queue.get()
            if (self._vector_ok and not self._managed
                    and not self._direct_used
                    and queue.items and pool.level >= 2.0
                    and not pool._get_waiters and not pool._put_waiters
                    and not wire.users and not wire._waiters):
                run = self._gather_run(queue, pool, flit)
                if run is not None:
                    yield from self._transmit_vector(pool, run)
                    continue
            if causal is not None and flit.cspan is not None:
                causal.end(flit.packet.trace, self.env.now, flit.cspan)
                flit.cspan = None
            credit = pool.get(1)
            if causal is not None and flit.packet.trace is not None:
                causal.wait(flit.packet.trace, credit, CREDIT_STALL,
                            self._site_credit)
            yield credit
            yield from self._transmit_reliably(self.phys, flit)
            self.env.process(self._propagate(flit))

    def _control_sender(self) -> Generator[Event, None, None]:
        causal = self._causal
        while True:
            flit = yield self._control_queue.get()
            if causal is not None and flit.cspan is not None:
                causal.end(flit.packet.trace, self.env.now, flit.cspan)
                flit.cspan = None
            yield from self._transmit_reliably(self._control_phys, flit)
            self.env.process(self._propagate(flit))

    def _transmit_reliably(self, phys: PhysicalLayer,
                           flit: Flit) -> Generator[Event, None, None]:
        serialize = None
        if self._causal is not None and flit.packet.trace is not None:
            # Retries included: NAK round-trips are serialization cost.
            serialize = self._causal.begin(
                flit.packet.trace, self.env.now, SERIALIZATION,
                self._site_serialize)
        while True:
            yield from phys.serialize(flit)
            if self.error_rate and self.rng.bernoulli(self.error_rate):
                self.retransmissions += 1
                if self._tel is not None:
                    self._m_retries.inc(time=self.env.now)
                if self.tracer is not None:
                    self.tracer.record(self.env.now, "link.retry",
                                       link=self.name, flit=repr(flit))
                # The NAK round-trip before the flit is re-serialized.
                yield self.env.timeout(2 * self.params.propagation_ns)
                continue
            if self._tel is not None:
                now = self.env.now
                self._m_flits.inc(time=now)
                self._m_bytes.inc(flit.size_bytes, time=now)
            if serialize is not None:
                self._causal.end(flit.packet.trace, self.env.now,
                                 serialize)
            return

    def _deliver(self, flit: Flit) -> None:
        self._rx_occupancy += 1
        self.max_rx_occupancy = max(    # fcc: allow[static-write-race]
            self.max_rx_occupancy, self._rx_occupancy)
        # (max-accumulate commutes with the preceding += — any
        # same-timestamp dispatch order lands on the same peak)
        self.rx.put(flit)
        if self.tracer is not None:
            self.tracer.record(self.env.now, "link.rx", link=self.name,
                               flit=repr(flit))
