"""CXL Flex Bus model: physical, link, and transaction layers.

Mirrors Figure 1(a) of the paper: :mod:`repro.fabric.phys` handles
framing and (de-)serialization, :mod:`repro.fabric.link` implements
credit-based flow control and reliability, and
:mod:`repro.fabric.transaction` provides the CXL.io / CXL.mem /
CXL.cache channel semantics.  :mod:`repro.fabric.catalog` reproduces
Table 1.
"""

from .catalog import CATALOG, FabricSpec, format_table1
from .flit import (
    Channel,
    Flit,
    Packet,
    PacketKind,
    Reassembler,
    TagAllocator,
    fragment,
)
from .link import LinkLayer
from .phys import PhysicalLayer, bifurcate
from .transaction import DEFAULT_VC_MAP, TransactionPort

__all__ = [
    "CATALOG",
    "FabricSpec",
    "format_table1",
    "Channel",
    "Flit",
    "Packet",
    "PacketKind",
    "Reassembler",
    "TagAllocator",
    "fragment",
    "LinkLayer",
    "PhysicalLayer",
    "bifurcate",
    "DEFAULT_VC_MAP",
    "TransactionPort",
]
