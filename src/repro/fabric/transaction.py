"""Transaction layer: channel semantics over a pair of links.

A :class:`TransactionPort` is the bidirectional endpoint attached to a
component (host adapter, endpoint adapter, switch-internal management
port).  It provides:

* ``request`` — send a request packet and get an event that fires with
  the matching response (tag-correlated);
* ``post`` — fire-and-forget send (posted writes, responses);
* a server loop that hands inbound *requests* to a user handler while
  matching inbound *responses* to outstanding tags;
* per-channel send ordering (CXL.mem requests stay ordered; different
  channels do not block each other — they map to different VCs).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..sim import Environment, Event, SimulationError, Store, Tracer
from ..telemetry.causal import QUEUEING
from .flit import (
    Channel,
    Flit,
    Packet,
    PacketKind,
    Reassembler,
    REQUEST_KINDS,
    TagAllocator,
    fragment,
)
from .link import LinkLayer

__all__ = ["TransactionPort", "DEFAULT_VC_MAP"]

#: Default channel -> virtual channel mapping.  Separating CXL.io bulk
#: traffic from CXL.mem cacheline traffic onto distinct VCs is what
#: prevents 16KB writes from head-of-line blocking 64B reads (section 3,
#: difference 3).
DEFAULT_VC_MAP: Dict[Channel, int] = {
    Channel.CXL_MEM: 0,
    Channel.CXL_CACHE: 0,
    Channel.CXL_IO: 1,
    Channel.CONTROL: 0,   # rides the control lane when enabled
}

RequestHandler = Callable[[Packet], Generator[Event, None, Optional[Packet]]]


class TransactionPort:
    """Endpoint of the fabric: sends/receives packets over two links."""

    def __init__(self, env: Environment, tx_link: LinkLayer,
                 rx_link: LinkLayer, port_id: int,
                 name: str = "port",
                 tag_capacity: int = 256,
                 vc_map: Optional[Dict[Channel, int]] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.tx_link = tx_link
        self.rx_link = rx_link
        self.port_id = port_id
        self.name = name
        self.tracer = tracer
        self.vc_map = dict(vc_map or DEFAULT_VC_MAP)
        self.tags = TagAllocator(tag_capacity)
        self._pending: Dict[int, Event] = {}
        self._reassembler = Reassembler()
        self.inbound_requests: Store = Store(env)
        self._handler: Optional[RequestHandler] = None
        self.requests_sent = 0
        self.responses_received = 0
        self.orphan_responses = 0
        # Causal tracing: ports are where fabric transactions *root* —
        # a request arriving with no trace context asks the recorder
        # to sample one.  Cached like telemetry: one is-None branch
        # per request when tracing is off.
        tel = env.telemetry
        self._tel = tel
        self._causal = tel.causal if tel is not None else None
        if tel is not None:
            self._h_latency = tel.registry.histogram(
                f"port.{name}.request_ns")
        if self._causal is not None:
            self._site_tags = f"port.{name}.tags"
            self._route_prefix = f"{name}:"
        env.process(self._receiver(), name=f"{name}.rx", daemon=True)

    # -- sending -----------------------------------------------------------

    def request(self, packet: Packet) -> Generator[Event, None, Packet]:
        """Send a request; yields until the tagged response arrives.

        Usage: ``response = yield from port.request(packet)``.
        """
        if packet.kind not in REQUEST_KINDS:
            raise ValueError(f"{packet.kind} is not a request kind")
        causal = self._causal
        rooted = False
        if causal is not None and packet.trace is None:
            context = causal.sample_root()
            if context is not None:
                packet.trace = context
                rooted = True
                causal.txn_begin(context, self.env.now, packet.kind.value,
                                 self._route_prefix + packet.kind.value)
        issued = self.env.now
        tag_wait = None
        if causal is not None and packet.trace is not None \
                and not self.tags.available:
            tag_wait = causal.begin(packet.trace, self.env.now,
                                    QUEUEING, self._site_tags)
        while not self.tags.available:
            # Outstanding-request window full: wait for any completion.
            yield self.env.any_of(list(self._pending.values()))
        if tag_wait is not None:
            causal.end(packet.trace, self.env.now, tag_wait)
        packet.tag = self.tags.allocate()
        packet.src = self.port_id
        packet.birth_ns = self.env.now
        done = self.env.event()
        self._pending[packet.tag] = done
        yield from self._emit(packet)
        self.requests_sent += 1
        response = yield done
        now = self.env.now
        if self._tel is not None:
            self._h_latency.observe(now - issued, time=now)
        if rooted:
            causal.txn_end(packet.trace, now)
        return response

    def post(self, packet: Packet) -> Generator[Event, None, None]:
        """Send a packet without expecting a response."""
        packet.src = self.port_id
        if packet.birth_ns == 0.0:
            packet.birth_ns = self.env.now   # fcc: allow[static-write-race]
        # (guarded first-write: every server instance that could race
        # here at one timestamp would store the identical env.now, and
        # a packet is only ever posted by one process anyway)
        yield from self._emit(packet)

    def _emit(self, packet: Packet) -> Generator[Event, None, None]:
        vc = self.vc_map.get(packet.channel, 0)
        for flit in fragment(packet, self.tx_link.params.flit_bytes, vc=vc):
            yield self.tx_link.send(flit)
        if self.tracer is not None:
            self.tracer.record(self.env.now, "port.tx", port=self.name,
                               packet=repr(packet))

    # -- serving -----------------------------------------------------------

    def serve(self, handler: RequestHandler, concurrency: int = 1) -> None:
        """Install a request handler; responses it returns are sent back.

        The handler is a generator taking the request packet and
        returning an optional response packet.  ``concurrency`` models
        the device's internal parallelism (e.g. FAM media banks): that
        many requests are serviced simultaneously.
        """
        if self._handler is not None:
            raise SimulationError(f"{self.name} already has a handler")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self._handler = handler
        for i in range(concurrency):
            self.env.process(self._server(), name=f"{self.name}.server{i}",
                             daemon=True)

    def _server(self) -> Generator[Event, None, None]:
        while True:
            packet = yield self.inbound_requests.get()
            response = yield from self._handler(packet)
            if response is not None:
                yield from self.post(response)

    # -- receive path --------------------------------------------------------

    def _receiver(self) -> Generator[Event, None, None]:
        while True:
            flit: Flit = yield self.rx_link.rx.get()
            self.rx_link.consume(flit)
            packet = self._reassembler.push(flit)
            if packet is None:
                continue
            self._dispatch(packet)

    def _dispatch(self, packet: Packet) -> None:
        if self.tracer is not None:
            self.tracer.record(self.env.now, "port.rx", port=self.name,
                               packet=repr(packet))
        waiter = self._pending.pop(packet.tag, None) \
            if packet.kind not in REQUEST_KINDS else None
        if waiter is not None:
            self.tags.free(packet.tag)
            self.responses_received += 1
            if self._causal is not None and packet.trace is not None:
                self._causal.mark(packet.trace, self.env.now,
                                  "deliver", self.name)
            waiter.succeed(packet)
            return
        if packet.kind in REQUEST_KINDS:
            self.inbound_requests.put(packet)
            return
        # A response without a matching request: the completion of a
        # posted write (benign), or a stale tag.  Count and drop — a
        # receiver must never die, or its link backpressures the fabric.
        self.orphan_responses += 1
        if self.tracer is not None:
            self.tracer.record(self.env.now, "port.orphan",
                               port=self.name, packet=repr(packet))
