"""Table 1 of the paper: the commodity memory-fabric catalog.

Reproduced as structured data so benchmarks and docs can print the
table, and so topology builders can label clusters with the fabric
generation they model.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

__all__ = ["FabricSpec", "CATALOG", "format_table1"]


@dataclasses.dataclass(frozen=True)
class FabricSpec:
    """One row of Table 1."""

    interconnect: str
    vendor: str
    active_development: str
    specifications: Tuple[str, ...]
    product_demonstrations: Tuple[str, ...]
    merged_into_cxl: bool = False


CATALOG: List[FabricSpec] = [
    FabricSpec(
        interconnect="Gen-Z",
        vendor="HPE/Gen-Z Consortium",
        active_development="2016-2021",
        specifications=("Gen-Z 1.0", "Gen-Z 1.1"),
        product_demonstrations=("Gen-Z Media Kit",
                                "Gen-Z ChipSet for ExtraScale Fabric"),
        merged_into_cxl=True,
    ),
    FabricSpec(
        interconnect="CAPI/OpenCAPI",
        vendor="IBM/OpenCAPI Consortium",
        active_development="2014-2022",
        specifications=("CAPI 1.0", "CAPI 2.0", "OpenCAPI 3.0",
                        "OpenCAPI 4.0"),
        product_demonstrations=("BlueLink in POWER9",),
        merged_into_cxl=True,
    ),
    FabricSpec(
        interconnect="CCIX",
        vendor="Xilinx/CCIX Consortium",
        active_development="2016-now",
        specifications=("CCIX 1.0", "CCIX 1.1", "CCIX 2.0"),
        product_demonstrations=("CMN-700 Coherent Mesh Network",),
    ),
    FabricSpec(
        interconnect="CXL",
        vendor="Intel/CXL Consortium",
        active_development="2019-now",
        specifications=("CXL 1.0", "CXL 1.1", "CXL 2.0", "CXL 3.0"),
        product_demonstrations=("Omega Fabric", "Leo Memory Platform"),
    ),
]


def format_table1() -> str:
    """Render the catalog in the paper's Table 1 layout."""
    header = (f"{'Interconnect':<15} {'Vendor':<28} "
              f"{'Active Dev':<12} {'Specs':<34} Demonstrations")
    lines = [header, "-" * len(header)]
    for spec in CATALOG:
        lines.append(
            f"{spec.interconnect:<15} {spec.vendor:<28} "
            f"{spec.active_development:<12} "
            f"{'/'.join(s.split()[-1] for s in spec.specifications):<34} "
            f"{', '.join(spec.product_demonstrations)}")
    merged = [s.interconnect for s in CATALOG if s.merged_into_cxl]
    lines.append(f"(merged into CXL: {', '.join(merged)})")
    return "\n".join(lines)
