"""Egress-port scheduling disciplines for fabric switches.

Section 3 (difference #3) observes that the de facto CFC switch
scheduler is *credit-agnostic* FIFO, which causes head-of-line blocking
when small latency-sensitive flits queue behind bulk transfers.

The switch stages flits for each egress port in an
:class:`EgressScheduler` built from per-class bounded queues (the
moral equivalent of virtual-output/VC queues in a real switch):

* :class:`FifoScheduler` — ONE shared queue in arrival order: the
  credit-agnostic baseline.  Under overload, small flits physically
  queue behind bulk flits (HoL blocking across channels);
* :class:`FairVcScheduler` — one queue per virtual channel, served by
  start-time fair queueing over bytes: a VC carrying 16 KB bursts
  cannot starve a VC carrying 64 B flits;
* :class:`PriorityScheduler` — one queue per priority level, higher
  ``packet.meta['prio']`` served first; this is what the DP#4 central
  arbiter programs for reserved flows.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Hashable, Optional, Tuple

from ..sim import Environment, Event, Store
from ..telemetry.causal import ARBITRATION, QUEUEING

__all__ = ["EgressScheduler", "FifoScheduler", "FairVcScheduler",
           "PriorityScheduler", "make_scheduler"]


class EgressScheduler:
    """Per-class bounded staging queues + a service-order policy.

    Subclasses define :meth:`_queue_id` (which queue a flit waits in)
    and :meth:`_key` (service order among queue heads; lower first,
    ties broken by arrival).  Queue capacity bounds switch buffering,
    so a congested class back-pressures its own ingress pipelines (and
    transitively upstream links) without blocking other classes —
    except for :class:`FifoScheduler`, whose single queue blocks
    everyone, which is precisely the paper's baseline pathology.
    """

    def __init__(self, env: Environment, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queues: Dict[Hashable, Store] = {}
        self._seq = itertools.count()
        self._arrival: Optional[Event] = None
        self.enqueued = 0
        # Causal tracing (cached, one is-None branch when off).  The
        # switch stamps `site` at attach time; `_head_ts` remembers,
        # per queue, when its current head reached the head — the
        # boundary between time-in-queue (queueing) and time-at-head
        # losing grants (arbitration).  Maintained only on traced runs.
        tel = env.telemetry
        self._causal = tel.causal if tel is not None else None
        self.site = "sched"
        self._head_ts: Dict[Hashable, float] = {}

    def push(self, flit) -> Event:
        """Stage a flit; the event fires once its queue had space."""
        self.enqueued += 1
        entry = (self._key(flit), next(self._seq), flit)
        queue_id = self._queue_id(flit)
        queue = self._queues.get(queue_id)
        if queue is None:
            queue = Store(self.env, capacity=self.capacity)
            self._queues[queue_id] = queue
        put_event = queue.put(entry)
        put_event.callbacks.append(self._notify_arrival)
        if self._causal is not None:
            trace = flit.packet.trace

            def _staged(event, self=self, queue=queue, queue_id=queue_id,
                        flit=flit, trace=trace):
                now = event.env.now
                if len(queue.items) == 1:
                    self._head_ts[queue_id] = now
                if trace is not None:
                    flit.cspan = self._causal.begin(trace, now, QUEUEING,
                                                    self.site)

            put_event.callbacks.append(_staged)
        return put_event

    def pop(self) -> Generator[Event, None, object]:
        """Take the flit whose queue head has the lowest key."""
        while True:
            best_queue = None
            best_entry = None
            best_id = None
            for queue_id, queue in self._queues.items():
                if not queue.items:
                    continue
                head = queue.items[0]
                if best_entry is None or head[:2] < best_entry[:2]:
                    best_queue, best_entry = queue, head
                    best_id = queue_id
            if best_queue is not None:
                entry = yield best_queue.get()
                self._on_pop(entry)
                if self._causal is not None:
                    self._record_grant(best_id, entry[2])
                return entry[2]
            self._arrival = self.env.event()
            yield self._arrival
            self._arrival = None

    def _record_grant(self, queue_id: Hashable, flit) -> None:
        """Split a traced flit's scheduler time at the head boundary."""
        now = self.env.now
        head_since = min(self._head_ts.get(queue_id, now), now)
        self._head_ts[queue_id] = now    # the next head starts aging
        trace = flit.packet.trace
        if trace is None:
            return
        causal = self._causal
        if flit.cspan is not None:
            # Queue residency ends when the flit reached the head; the
            # analyzer clamps if the head estimate predates the enqueue
            # (possible only across same-instant callback orderings).
            causal.end(trace, head_since, flit.cspan)
            flit.cspan = None
        if now - head_since > 0.0:
            causal.interval(trace, head_since, now, ARBITRATION,
                            self.site)
        causal.mark(trace, now, "arb.grant", self.site)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    #: Whether staged service order is immune to later pushes.  Only
    #: then may the switch's batched egress sweep pre-compute the order
    #: of a whole run: FIFO serves strictly by arrival, so a flit pushed
    #: while a batch is in flight always queues behind it.  Fair and
    #: priority disciplines can preempt staged entries (a lower virtual
    #: start time or a higher priority), so they must stay on the
    #: pop-one-at-a-time path.
    batchable = False

    def peek_ready(self) -> Optional[object]:
        """The flit ``pop`` would take next, without taking it."""
        raise NotImplementedError

    def plan_ready_run(self, limit: int) -> Optional[list]:
        """A same-size, same-VC head run ``pop`` would serve (or None).

        Pure inspection: nothing is removed.  The sweep retires the
        planned flits one at a time via :meth:`commit_head`, so queue
        occupancy — and therefore back-pressure on blocked pushes —
        evolves exactly as under the scalar loop.
        """
        raise NotImplementedError

    def commit_head(self) -> None:
        """Remove the head entry and re-open its staging slot."""
        raise NotImplementedError

    # -- policy hooks -----------------------------------------------------

    def _queue_id(self, flit) -> Hashable:
        raise NotImplementedError

    def _key(self, flit) -> Tuple:
        raise NotImplementedError

    def _on_pop(self, entry: Tuple) -> None:
        """Hook: called with the (key, seq, flit) entry entering service."""

    # -- internals -----------------------------------------------------------

    def _notify_arrival(self, _event: Event) -> None:
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()


class FifoScheduler(EgressScheduler):
    """Credit-agnostic single queue; the paper's baseline discipline."""

    batchable = True

    def _queue_id(self, flit) -> Hashable:
        return "all"

    def _key(self, flit) -> Tuple:
        return ()   # sequence number alone decides: pure FIFO

    def peek_ready(self) -> Optional[object]:
        queue = self._queues.get("all")
        if queue is None or len(queue.items) < 2 or queue._get_waiters:
            return None
        return queue.items[0][2]

    def plan_ready_run(self, limit: int) -> Optional[list]:
        """Plan the homogeneous head run, at most ``limit`` flits.

        Homogeneous means same ``size_bytes`` and same VC — the run
        then serializes at one per-flit rate and draws credits from one
        pool, which is what lets the caller compute the whole schedule
        in closed form.  Blocked pushes don't disqualify the sweep:
        entries stay staged until their :meth:`commit_head`, which
        serves waiters one slot at a time just like scalar pops would.
        """
        items = self._queues["all"].items
        key = items[0][2].transport_key()
        n = 1
        stop = min(limit, len(items))
        while n < stop and items[n][2].transport_key() == key:
            n += 1
        if n < 2:
            return None
        return [entry[2] for entry in items[:n]]

    def commit_head(self) -> None:
        # FIFO `_on_pop` is a no-op, so dropping the entry leaves no
        # policy state behind.  Re-triggering the store serves exactly
        # one blocked push (one slot just opened) — the push event
        # fires at the same instant the scalar pop would have fired it.
        queue = self._queues["all"]
        queue.items.pop(0)
        queue._trigger()


class FairVcScheduler(EgressScheduler):
    """Start-time fair queueing across virtual channels."""

    def __init__(self, env: Environment, capacity: int = 64,
                 weights: Dict[int, float] = None) -> None:
        super().__init__(env, capacity)
        self._vtime: Dict[int, float] = {}
        self._weights = dict(weights or {})
        self._virtual_clock = 0.0

    def _queue_id(self, flit) -> Hashable:
        return flit.vc

    def _key(self, flit) -> Tuple:
        vc = flit.vc
        weight = self._weights.get(vc, 1.0)
        # A newly active VC starts at the virtual time currently in
        # service: it neither replays its idle past nor waits behind a
        # busy VC's accumulated virtual time.
        start = max(self._vtime.get(vc, 0.0), self._virtual_clock)
        self._vtime[vc] = start + flit.size_bytes / weight
        return (start,)

    def _on_pop(self, entry: Tuple) -> None:
        key = entry[0]
        if key:
            self._virtual_clock = max(self._virtual_clock, key[0])


class PriorityScheduler(EgressScheduler):
    """Serves higher ``packet.meta['prio']`` first (arbiter-programmed)."""

    def _queue_id(self, flit) -> Hashable:
        return float(flit.packet.meta.get("prio", 0.0))

    def _key(self, flit) -> Tuple:
        return (-float(flit.packet.meta.get("prio", 0.0)),)


_SCHEDULERS = {
    "fifo": FifoScheduler,
    "fair": FairVcScheduler,
    "priority": PriorityScheduler,
}


def make_scheduler(name: str, env: Environment,
                   capacity: int = 64) -> EgressScheduler:
    """Factory used by switch/topology configuration strings."""
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}")
    return cls(env, capacity=capacity)
