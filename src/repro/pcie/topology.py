"""Fabric topology construction: endpoints, switches, links, domains.

A :class:`Topology` is the static wiring of a composable rack: host
adapters and device adapters (endpoints) connected to PBR switches,
switches interconnected within a domain (PBR links) and across domains
(HBR links), supporting both direct and indirect topologies "akin to
the Ethernet network" (section 2.1).

The topology assigns PBR IDs at registration time; the
:class:`~repro.pcie.manager.FabricManager` later walks the graph and
fills every switch's routing table — exactly the division of labour the
paper describes ("the switching routing table is generally filled up by
a central fabric manager").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from .. import params
from ..fabric.link import LinkLayer
from ..fabric.transaction import TransactionPort
from ..sim import Environment, Tracer
from .routing import MAX_PBR_IDS, PbrId
from .switch import FabricSwitch, PortRole

__all__ = ["Topology", "Endpoint"]


@dataclasses.dataclass
class Endpoint:
    """A fabric edge device: an FHA (host side) or FEA (device side)."""

    name: str
    pbr: PbrId
    port: Optional[TransactionPort] = None

    @property
    def global_id(self) -> int:
        return self.pbr.global_id


class Topology:
    """Builder and registry for one composable-infrastructure fabric."""

    def __init__(self, env: Environment,
                 link_params: Optional[params.LinkParams] = None,
                 scheduler: str = "fair",
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.link_params = link_params or params.LinkParams()
        self.scheduler = scheduler
        self.tracer = tracer
        self.switches: Dict[str, FabricSwitch] = {}
        self.endpoints: Dict[str, Endpoint] = {}
        # adjacency: node name -> list of (neighbor name, egress port index
        # on this node if it is a switch else -1)
        self._adjacency: Dict[str, List[Tuple[str, int]]] = {}
        self._next_local: Dict[int, int] = {}

    # -- registration ------------------------------------------------------

    def add_switch(self, name: str, domain: int = 0,
                   scheduler: Optional[str] = None,
                   port_latency_ns: float = params.SWITCH_PORT_LATENCY_NS,
                   scheduler_capacity: int = 64,
                   ingress_buffer: int = 128) -> FabricSwitch:
        self._check_new_name(name)
        switch = FabricSwitch(
            self.env, name=name, domain=domain,
            port_latency_ns=port_latency_ns,
            scheduler=scheduler or self.scheduler,
            scheduler_capacity=scheduler_capacity,
            ingress_buffer=ingress_buffer,
            tracer=self.tracer)
        self.switches[name] = switch
        self._adjacency[name] = []
        return switch

    def add_endpoint(self, name: str, domain: int = 0) -> Endpoint:
        self._check_new_name(name)
        local = self._next_local.get(domain, 0)
        if local >= MAX_PBR_IDS:
            raise ValueError(f"domain {domain} exhausted its 4096 PBR IDs")
        self._next_local[domain] = local + 1
        endpoint = Endpoint(name=name, pbr=PbrId(domain=domain, local=local))
        self.endpoints[name] = endpoint
        self._adjacency[name] = []
        return endpoint

    def _check_new_name(self, name: str) -> None:
        if name in self._adjacency:
            kind = "switch" if name in self.switches else "endpoint"
            raise ValueError(
                f"duplicate node name {name!r}: already registered as "
                f"a {kind} in this topology")

    def _switch(self, name: str) -> FabricSwitch:
        switch = self.switches.get(name)
        if switch is None:
            known = ", ".join(sorted(self.switches)) or "(none)"
            raise ValueError(f"unknown switch {name!r}; "
                             f"registered switches: {known}")
        return switch

    def _endpoint(self, name: str) -> Endpoint:
        endpoint = self.endpoints.get(name)
        if endpoint is None:
            known = ", ".join(sorted(self.endpoints)) or "(none)"
            raise ValueError(f"unknown endpoint {name!r}; "
                             f"registered endpoints: {known}")
        return endpoint

    # -- wiring ---------------------------------------------------------------

    def _make_link(self, name: str,
                   link_params: Optional[params.LinkParams],
                   control_lane: bool,
                   tx_queue_capacity: float) -> LinkLayer:
        return LinkLayer(self.env, link_params or self.link_params,
                         name=name, tracer=self.tracer,
                         control_lane=control_lane,
                         tx_queue_capacity=tx_queue_capacity)

    def connect_endpoint(self, switch_name: str, endpoint_name: str,
                         link_params: Optional[params.LinkParams] = None,
                         role: PortRole = PortRole.DOWNSTREAM,
                         control_lane: bool = False,
                         tag_capacity: int = 256) -> TransactionPort:
        """Attach an endpoint to a switch; returns its transaction port."""
        switch = self._switch(switch_name)
        endpoint = self._endpoint(endpoint_name)
        if endpoint.port is not None:
            raise ValueError(f"endpoint {endpoint_name!r} already connected")
        to_switch = self._make_link(f"{endpoint_name}->{switch_name}",
                                    link_params, control_lane,
                                    tx_queue_capacity=float("inf"))
        to_endpoint = self._make_link(f"{switch_name}->{endpoint_name}",
                                      link_params, control_lane,
                                      tx_queue_capacity=2)
        port = switch.attach(in_link=to_switch, out_link=to_endpoint,
                             role=role, peer=endpoint_name)
        endpoint.port = TransactionPort(
            self.env, tx_link=to_switch, rx_link=to_endpoint,
            port_id=endpoint.global_id, name=endpoint_name,
            tag_capacity=tag_capacity, tracer=self.tracer)
        self._adjacency[switch_name].append((endpoint_name, port.index))
        self._adjacency[endpoint_name].append((switch_name, -1))
        return endpoint.port

    def connect_switches(self, a_name: str, b_name: str,
                         link_params: Optional[params.LinkParams] = None,
                         control_lane: bool = False) -> None:
        """Wire two switches with a bidirectional link pair.

        Within one domain this is a PBR link; across domains it is an
        HBR link (the distinction matters to the fabric manager, which
        installs prefix routes across it).
        """
        a = self._switch(a_name)
        b = self._switch(b_name)
        a_to_b = self._make_link(f"{a_name}->{b_name}", link_params,
                                 control_lane, tx_queue_capacity=2)
        b_to_a = self._make_link(f"{b_name}->{a_name}", link_params,
                                 control_lane, tx_queue_capacity=2)
        port_on_a = a.attach(in_link=b_to_a, out_link=a_to_b,
                             role=PortRole.DOWNSTREAM, peer=b_name)
        port_on_b = b.attach(in_link=a_to_b, out_link=b_to_a,
                             role=PortRole.UPSTREAM, peer=a_name)
        self._adjacency[a_name].append((b_name, port_on_a.index))
        self._adjacency[b_name].append((a_name, port_on_b.index))

    # -- queries ------------------------------------------------------------

    def neighbors(self, name: str) -> List[Tuple[str, int]]:
        return list(self._adjacency[name])

    def port_of(self, name: str) -> TransactionPort:
        port = self._endpoint(name).port
        if port is None:
            raise ValueError(f"endpoint {name!r} is not connected")
        return port

    def is_hbr_link(self, a_name: str, b_name: str) -> bool:
        a, b = self.switches.get(a_name), self.switches.get(b_name)
        return (a is not None and b is not None and a.domain != b.domain)

    def domains(self) -> List[int]:
        seen = {s.domain for s in self.switches.values()}
        seen.update(e.pbr.domain for e in self.endpoints.values())
        return sorted(seen)

    def nodes(self) -> Iterator[str]:
        return iter(self._adjacency)

    def describe(self) -> str:
        lines = [f"fabric topology: {len(self.switches)} switches, "
                 f"{len(self.endpoints)} endpoints, "
                 f"domains {self.domains()}"]
        for switch in self.switches.values():
            lines.append(switch.describe())
        for endpoint in self.endpoints.values():
            lines.append(f"endpoint {endpoint.name} @ {endpoint.pbr!r}")
        return "\n".join(lines)
