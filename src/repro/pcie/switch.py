"""The fabric switch (FS): ports, crossbar, routing, egress scheduling.

Mirrors the component described in section 2.2: upstream ports (UPs)
toward fabric host adapters, downstream ports (DPs) toward devices and
memory, a non-blocking crossbar between them (the Omega testbed
design), per-egress staging queues with a pluggable service discipline,
and a routing table filled by the central fabric manager.

Timing model per forwarded flit:

* the flit leaves the ingress link buffer only once a switch buffer
  slot is free (holding the upstream credit otherwise — this is how
  congestion back-propagates, claim C7);
* it crosses the pipeline in ``port_latency_ns`` (the paper's
  "<100 ns non-blocking switch latency per port");
* it is staged at the egress scheduler, then serialized by the egress
  link at link bandwidth.

Because every stage is pipelined, throughput is set by link bandwidth,
not by the 90 ns latency.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Generator, List, Optional

from .. import params
from ..fabric.flit import Flit
from ..fabric.link import LinkLayer
from ..sim import Environment, Event, Resource, Tracer
from ..telemetry.causal import QUEUEING
from .arbitration import EgressScheduler, make_scheduler
from .credits import CreditDomain
from .routing import PbrId, RoutingTable

__all__ = ["FabricSwitch", "PortRole", "SwitchPort"]


class PortRole(enum.Enum):
    UPSTREAM = "UP"        # toward host adapters
    DOWNSTREAM = "DP"      # toward devices / memory / other switches


@dataclasses.dataclass
class SwitchPort:
    """One attached port: the link pair and its egress scheduler."""

    index: int
    role: PortRole
    in_link: LinkLayer
    out_link: LinkLayer
    scheduler: EgressScheduler
    peer: str = ""
    flits_in: int = 0
    flits_out: int = 0
    pending: int = 0      # flits routed here but not yet on the wire
    buffer_site: str = "" # causal site label for ingress-buffer waits


class FabricSwitch:
    """A PBR-capable switch inside one fabric domain."""

    def __init__(self, env: Environment, name: str, domain: int = 0,
                 port_latency_ns: float = params.SWITCH_PORT_LATENCY_NS,
                 scheduler: str = "fair",
                 scheduler_capacity: int = 64,
                 ingress_buffer: int = 128,
                 adaptive_routing: bool = False,
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.name = name
        self.domain = domain
        self.port_latency_ns = port_latency_ns
        self.scheduler_kind = scheduler
        self.scheduler_capacity = scheduler_capacity
        self.ingress_buffer = ingress_buffer
        self.adaptive_routing = adaptive_routing
        self.tracer = tracer
        self.table = RoutingTable(domain)
        self.ports: Dict[int, SwitchPort] = {}
        self.credit_domains: Dict[int, CreditDomain] = {}
        self.flits_forwarded = 0
        self._next_index = 0
        self._rr_counter = 0
        # Cached telemetry: the per-flit hooks below are one is-None
        # branch when observability is off.
        self._tel = tel = env.telemetry
        self._causal = tel.causal if tel is not None else None
        if tel is not None:
            registry = tel.registry
            self._m_forwarded = registry.counter(f"pcie.{name}.flits_forwarded")
            self._m_drops = registry.counter(f"pcie.{name}.drops")
            self._track = f"pcie.{name}"

    # -- construction ------------------------------------------------------

    def attach(self, in_link: LinkLayer, out_link: LinkLayer,
               role: PortRole = PortRole.DOWNSTREAM,
               peer: str = "",
               index: Optional[int] = None) -> SwitchPort:
        """Wire a link pair into the switch and start its pipelines."""
        if index is None:
            index = self._next_index
        if index in self.ports:
            raise ValueError(f"port {index} already attached on {self.name}")
        self._next_index = max(self._next_index, index + 1)
        port = SwitchPort(
            index=index, role=role, in_link=in_link, out_link=out_link,
            scheduler=make_scheduler(self.scheduler_kind, self.env,
                                     capacity=self.scheduler_capacity),
            peer=peer)
        if self._causal is not None:
            port.buffer_site = f"pcie.{self.name}.in{index}.buffer"
            port.scheduler.site = f"pcie.{self.name}.p{index}.egress"
        self.ports[index] = port
        if self._tel is not None:
            # The issue-shaped hierarchical names: queue_depth counts
            # flits routed to this egress but not yet on the wire.
            self._tel.add_probe(
                f"pcie.{self.name}.port{index}.queue_depth",
                lambda p=port: p.pending, track=self._track)
        self.env.process(self._ingress(port), name=f"{self.name}.in{index}",
                         daemon=True)
        self.env.process(self._egress(port), name=f"{self.name}.out{index}",
                         daemon=True)
        return port

    def add_credit_domain(self, egress_index: int,
                          domain: CreditDomain) -> None:
        """Constrain one egress port with a per-flow credit budget.

        Flows are named after the ingress port index (``"in<N>"``); they
        are registered lazily as traffic first crosses.
        """
        if egress_index not in self.ports:
            raise ValueError(f"no port {egress_index} on {self.name}")
        self.credit_domains[egress_index] = domain

    # -- data path -----------------------------------------------------------

    def _ingress(self, port: SwitchPort) -> Generator[Event, None, None]:
        slots = Resource(self.env, capacity=self.ingress_buffer)
        while True:
            flit: Flit = yield port.in_link.rx.get()
            request = slots.request()
            if self._causal is not None and flit.packet.trace is not None:
                # Waiting for switch buffering while still holding the
                # upstream credit — the C7 back-propagation stage.
                self._causal.wait(flit.packet.trace, request, QUEUEING,
                                  port.buffer_site)
            yield request
            # Credit returns upstream only once the flit found switch
            # buffering; a full switch therefore stalls the upstream
            # link and, transitively, switches further up.
            port.in_link.consume(flit)
            port.flits_in += 1
            self.env.process(self._forward(flit, port, slots, request),
                             name=f"{self.name}.fwd")

    def _forward(self, flit: Flit, ingress: SwitchPort,
                 slots: Resource, request) -> Generator[Event, None, None]:
        yield self.env.timeout(self.port_latency_ns)
        try:
            egress_index = self._route(flit)
        except KeyError:
            slots.release(request)
            if self._tel is not None:
                self._m_drops.inc(time=self.env.now)
                self._tel.instant("switch.drop", track=self._track,
                                  packet=repr(flit.packet))
            if self.tracer is not None:
                self.tracer.record(self.env.now, "switch.drop",
                                   switch=self.name, packet=repr(flit.packet))
            return
        egress = self.ports[egress_index]
        egress.pending += 1
        flit.flow = f"in{ingress.index}"
        domain = self.credit_domains.get(egress_index)
        if domain is not None:
            if flit.flow not in domain.flow_names():
                domain.register(flit.flow)
            yield domain.acquire(flit.flow, trace=flit.packet.trace)
        push = egress.scheduler.push(flit)
        if self._causal is not None and flit.packet.trace is not None:
            # Blocked at a full staging queue: still queueing, charged
            # to the egress scheduler's site.
            self._causal.wait(flit.packet.trace, push, QUEUEING,
                              egress.scheduler.site)
        yield push
        slots.release(request)

    def _route(self, flit: Flit) -> int:
        """Pick the egress port; adaptive mode takes the least loaded.

        All flits of one packet must take one path (reassembly is
        per-packet, but ordering within the packet matters), so the
        adaptive choice is made on the head flit and remembered.
        """
        dst = PbrId.from_global(flit.packet.dst)
        candidates = self.table.candidates(dst)
        if not self.adaptive_routing or len(candidates) == 1:
            return candidates[0]
        chosen = flit.packet.meta.get("_adaptive_path", {}).get(self.name)
        if chosen is not None:
            return chosen
        # Least in-flight load wins; ties rotate round-robin so equal
        # paths actually share (a head-of-list bias would starve one).
        self._rr_counter += 1
        rotation = self._rr_counter % len(candidates)
        rotated = candidates[rotation:] + candidates[:rotation]
        chosen = min(rotated,
                     key=lambda index: self.ports[index].pending)
        flit.packet.meta.setdefault("_adaptive_path", {})[self.name] = \
            chosen
        return chosen

    def _egress(self, port: SwitchPort) -> Generator[Event, None, None]:
        domain_lookup = self.credit_domains
        while True:
            flit = yield from port.scheduler.pop()
            yield from port.out_link.transmit_direct(flit)
            port.pending -= 1
            port.flits_out += 1
            self.flits_forwarded += 1
            if self._tel is not None:
                self._m_forwarded.inc(time=self.env.now)
            domain = domain_lookup.get(port.index)
            if domain is not None and flit.flow is not None:
                domain.release(flit.flow)
            if self.tracer is not None:
                self.tracer.record(self.env.now, "switch.fwd",
                                   switch=self.name, port=port.index,
                                   flit=repr(flit))

    # -- inspection -------------------------------------------------------------

    def port_count(self) -> int:
        return len(self.ports)

    def describe(self) -> str:
        lines = [f"switch {self.name} (domain {self.domain}, "
                 f"{len(self.ports)} ports, {self.scheduler_kind} scheduler)"]
        for index in sorted(self.ports):
            port = self.ports[index]
            lines.append(f"  port {index} [{port.role.value}] -> {port.peer} "
                         f"(in={port.flits_in}, out={port.flits_out})")
        return "\n".join(lines)
