"""The fabric switch (FS): ports, crossbar, routing, egress scheduling.

Mirrors the component described in section 2.2: upstream ports (UPs)
toward fabric host adapters, downstream ports (DPs) toward devices and
memory, a non-blocking crossbar between them (the Omega testbed
design), per-egress staging queues with a pluggable service discipline,
and a routing table filled by the central fabric manager.

Timing model per forwarded flit:

* the flit leaves the ingress link buffer only once a switch buffer
  slot is free (holding the upstream credit otherwise — this is how
  congestion back-propagates, claim C7);
* it crosses the pipeline in ``port_latency_ns`` (the paper's
  "<100 ns non-blocking switch latency per port");
* it is staged at the egress scheduler, then serialized by the egress
  link at link bandwidth.

Because every stage is pipelined, throughput is set by link bandwidth,
not by the 90 ns latency.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Generator, List, Optional

try:
    import numpy as _np
except ImportError:      # pragma: no cover - numpy ships with the toolchain
    _np = None

from .. import params
from ..fabric.flit import Flit
from ..fabric.link import LinkLayer
from ..sim import Environment, Event, Resource, Tracer
from ..telemetry.causal import QUEUEING
from .arbitration import EgressScheduler, make_scheduler
from .credits import CreditDomain
from .routing import PbrId, RoutingTable

__all__ = ["FabricSwitch", "PortRole", "SwitchPort"]


class PortRole(enum.Enum):
    UPSTREAM = "UP"        # toward host adapters
    DOWNSTREAM = "DP"      # toward devices / memory / other switches


@dataclasses.dataclass
class SwitchPort:
    """One attached port: the link pair and its egress scheduler."""

    index: int
    role: PortRole
    in_link: LinkLayer
    out_link: LinkLayer
    scheduler: EgressScheduler
    peer: str = ""
    flits_in: int = 0
    flits_out: int = 0
    pending: int = 0      # flits routed here but not yet on the wire
    buffer_site: str = "" # causal site label for ingress-buffer waits
    sweep_ok: bool = False  # static half of the egress-sweep predicate


class FabricSwitch:
    """A PBR-capable switch inside one fabric domain."""

    def __init__(self, env: Environment, name: str, domain: int = 0,
                 port_latency_ns: float = params.SWITCH_PORT_LATENCY_NS,
                 scheduler: str = "fair",
                 scheduler_capacity: int = 64,
                 ingress_buffer: int = 128,
                 adaptive_routing: bool = False,
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.name = name
        self.domain = domain
        self.port_latency_ns = port_latency_ns
        self.scheduler_kind = scheduler
        self.scheduler_capacity = scheduler_capacity
        self.ingress_buffer = ingress_buffer
        self.adaptive_routing = adaptive_routing
        self.tracer = tracer
        self.table = RoutingTable(domain)
        self.ports: Dict[int, SwitchPort] = {}
        self.credit_domains: Dict[int, CreditDomain] = {}
        self.flits_forwarded = 0
        self._next_index = 0
        self._rr_counter = 0
        # Cached telemetry: the per-flit hooks below are one is-None
        # branch when observability is off.
        self._tel = tel = env.telemetry
        self._causal = tel.causal if tel is not None else None
        if tel is not None:
            registry = tel.registry
            self._m_forwarded = registry.counter(f"pcie.{name}.flits_forwarded")
            self._m_drops = registry.counter(f"pcie.{name}.drops")
            self._track = f"pcie.{name}"

    # -- construction ------------------------------------------------------

    def attach(self, in_link: LinkLayer, out_link: LinkLayer,
               role: PortRole = PortRole.DOWNSTREAM,
               peer: str = "",
               index: Optional[int] = None) -> SwitchPort:
        """Wire a link pair into the switch and start its pipelines."""
        if index is None:
            index = self._next_index
        if index in self.ports:
            raise ValueError(f"port {index} already attached on {self.name}")
        self._next_index = max(self._next_index, index + 1)
        port = SwitchPort(
            index=index, role=role, in_link=in_link, out_link=out_link,
            scheduler=make_scheduler(self.scheduler_kind, self.env,
                                     capacity=self.scheduler_capacity),
            peer=peer)
        if self._causal is not None:
            port.buffer_site = f"pcie.{self.name}.in{index}.buffer"
            port.scheduler.site = f"pcie.{self.name}.p{index}.egress"
        # Static half of the batched-egress predicate (see `_egress`):
        # nothing may be able to observe the per-flit intermediate
        # events the sweep elides, and the scheduler's service order
        # must be immune to pushes landing mid-batch.
        port.sweep_ok = (
            _np is not None
            and self.env._batch
            and self.env._sanitizer is None
            and self._tel is None
            and self.tracer is None
            and not self.adaptive_routing
            and port.scheduler.batchable
            and out_link.error_rate == 0.0
            and not out_link.control_lane_enabled
            and out_link.tracer is None)
        self.ports[index] = port
        if self._tel is not None:
            # The issue-shaped hierarchical names: queue_depth counts
            # flits routed to this egress but not yet on the wire.
            self._tel.add_probe(
                f"pcie.{self.name}.port{index}.queue_depth",
                lambda p=port: p.pending, track=self._track)
        self.env.process(self._ingress(port), name=f"{self.name}.in{index}",
                         daemon=True)
        self.env.process(self._egress(port), name=f"{self.name}.out{index}",
                         daemon=True)
        return port

    def add_credit_domain(self, egress_index: int,
                          domain: CreditDomain) -> None:
        """Constrain one egress port with a per-flow credit budget.

        Flows are named after the ingress port index (``"in<N>"``); they
        are registered lazily as traffic first crosses.
        """
        if egress_index not in self.ports:
            raise ValueError(f"no port {egress_index} on {self.name}")
        self.credit_domains[egress_index] = domain

    # -- data path -----------------------------------------------------------

    def _ingress(self, port: SwitchPort) -> Generator[Event, None, None]:
        slots = Resource(self.env, capacity=self.ingress_buffer)
        while True:
            flit: Flit = yield port.in_link.rx.get()
            request = slots.request()
            if self._causal is not None and flit.packet.trace is not None:
                # Waiting for switch buffering while still holding the
                # upstream credit — the C7 back-propagation stage.
                self._causal.wait(flit.packet.trace, request, QUEUEING,
                                  port.buffer_site)
            yield request
            # Credit returns upstream only once the flit found switch
            # buffering; a full switch therefore stalls the upstream
            # link and, transitively, switches further up.
            port.in_link.consume(flit)
            port.flits_in += 1
            self.env.process(self._forward(flit, port, slots, request),
                             name=f"{self.name}.fwd")

    def _forward(self, flit: Flit, ingress: SwitchPort,
                 slots: Resource, request) -> Generator[Event, None, None]:
        yield self.env.timeout(self.port_latency_ns)
        try:
            egress_index = self._route(flit)
        except KeyError:
            slots.release(request)
            if self._tel is not None:
                self._m_drops.inc(time=self.env.now)
                self._tel.instant("switch.drop", track=self._track,
                                  packet=repr(flit.packet))
            if self.tracer is not None:
                self.tracer.record(self.env.now, "switch.drop",
                                   switch=self.name, packet=repr(flit.packet))
            return
        egress = self.ports[egress_index]
        egress.pending += 1
        flit.flow = f"in{ingress.index}"
        domain = self.credit_domains.get(egress_index)
        if domain is not None:
            if flit.flow not in domain.flow_names():
                domain.register(flit.flow)
            yield domain.acquire(flit.flow, trace=flit.packet.trace)
        push = egress.scheduler.push(flit)
        if self._causal is not None and flit.packet.trace is not None:
            # Blocked at a full staging queue: still queueing, charged
            # to the egress scheduler's site.
            self._causal.wait(flit.packet.trace, push, QUEUEING,
                              egress.scheduler.site)
        yield push
        slots.release(request)

    def _route(self, flit: Flit) -> int:
        """Pick the egress port; adaptive mode takes the least loaded.

        All flits of one packet must take one path (reassembly is
        per-packet, but ordering within the packet matters), so the
        adaptive choice is made on the head flit and remembered.
        """
        dst = PbrId.from_global(flit.packet.dst)
        candidates = self.table.candidates(dst)
        if not self.adaptive_routing or len(candidates) == 1:
            return candidates[0]
        chosen = flit.packet.meta.get("_adaptive_path", {}).get(self.name)
        if chosen is not None:
            return chosen
        # Least in-flight load wins; ties rotate round-robin so equal
        # paths actually share (a head-of-list bias would starve one).
        self._rr_counter += 1
        rotation = self._rr_counter % len(candidates)
        rotated = candidates[rotation:] + candidates[:rotation]
        chosen = min(rotated,
                     key=lambda index: self.ports[index].pending)
        flit.packet.meta.setdefault("_adaptive_path", {})[self.name] = \
            chosen
        return chosen

    def _egress(self, port: SwitchPort) -> Generator[Event, None, None]:
        domain_lookup = self.credit_domains
        while True:
            if port.sweep_ok:
                domain = domain_lookup.get(port.index)
                run = self._gather_sweep(port, domain)
                if run is not None:
                    yield from self._transmit_sweep(port, run, domain)
                    continue
            flit = yield from port.scheduler.pop()
            yield from port.out_link.transmit_direct(flit)
            port.pending -= 1
            port.flits_out += 1
            self.flits_forwarded += 1
            if self._tel is not None:
                self._m_forwarded.inc(time=self.env.now)
            domain = domain_lookup.get(port.index)
            if domain is not None and flit.flow is not None:
                domain.release(flit.flow)
            if self.tracer is not None:
                self.tracer.record(self.env.now, "switch.fwd",
                                   switch=self.name, port=port.index,
                                   flit=repr(flit))

    def _gather_sweep(self, port: SwitchPort,
                      domain: Optional[CreditDomain]) -> Optional[list]:
        """Runtime half of the egress-sweep predicate + the bulk take.

        Returns a homogeneous staged run only when the scalar loop
        could not have blocked anywhere inside it: a link credit per
        flit is already available (with nobody else waiting on the
        pool), the wire is idle, no allocator manages the link's
        credits, and — on credit-domain ports — no flow is currently
        stalled dry (the credit-constrained regime stays on the scalar
        path untouched).
        """
        first = port.scheduler.peek_ready()
        if first is None:
            return None
        out = port.out_link
        if out._managed:
            return None
        wire = out.phys._wire
        if wire.users or wire._waiters:
            return None
        pool = out._credit_pools[first.vc]
        if pool._get_waiters or pool._put_waiters:
            return None
        level = int(pool.level)
        if level < 2:
            return None
        if domain is not None and any(
                p._get_waiters for p in domain._pools.values()):
            return None
        return port.scheduler.plan_ready_run(level)

    def _transmit_sweep(self, port: SwitchPort, run: list,
                        domain: Optional[CreditDomain],
                        ) -> Generator[Event, None, None]:
        """Serialize a staged run with one closed-form schedule.

        Equivalent of k iterations of the scalar loop body (pop →
        ``transmit_direct`` → counters → domain release), which per
        flit costs 7 events: the pop StoreGet, the credit ContainerGet,
        the wire grant, the serialization Timeout, the ``_propagate``
        start hook, the propagation Timeout, and the propagation
        process completion.  The sweep spends one bulk credit get + one
        wire grant up front, then per serialization boundary one ledger
        hook (which applies the flit's counter side effects at its
        exact scalar service time), per flit one delivery hook, and one
        final Timeout.  Elisions are credited *in the same time bucket*
        where the scalar loop would have dispatched them, so a run cut
        short by the simulation horizon still counts events
        identically.  On credit-domain ports each flit's credit returns
        via :meth:`CreditDomain.release_at` at its scalar release time
        (one extra real hook per boundary, one fewer elision).
        """
        env = self.env
        out = port.out_link
        out._direct_used = True
        phys = out.phys
        scheduler = port.scheduler
        k = len(run)
        size = run[0].size_bytes
        # The scalar pop dequeues the head — and thereby re-opens one
        # staging slot — *before* taking the credit; keep that order so
        # a blocked push fires at the identical instant.
        scheduler.commit_head()
        yield out._credit_pools[run[0].vc].get(float(k))
        wire = phys._wire.request()
        yield wire
        ser_ns = phys.serialization_ns(run[0])
        ends = _np.cumsum([env.now] + [ser_ns] * k)
        prop = out.params.propagation_ns
        hook = env._schedule_hook_at
        deliver = out._deliver
        # Scalar T0 bucket: pop get + credit get + wire grant = 3; the
        # sweep paid two real events just above.
        env.credit_elided(1)
        # Scalar bucket at each inner boundary ends[i], i < k: the ser
        # Timeout, the propagate start hook, and the next flit's pop
        # get / credit get / wire grant = 5.  The ledger hook is 1 real
        # (+ the release_at hook on domain ports).
        tick_elided = 3 if domain is not None else 4

        def _tick(event, self=self, port=port, phys=phys, size=size,
                  scheduler=scheduler, env=env, n=tick_elided):
            phys.flits_sent += 1
            phys.bytes_sent += size
            port.pending -= 1
            port.flits_out += 1
            self.flits_forwarded += 1
            scheduler.commit_head()
            env.credit_elided(n)

        for i, flit in enumerate(run):
            t_end = float(ends[i + 1])

            # Scalar bucket at ends[i] + prop: propagation Timeout +
            # process completion = 2; the delivery hook is 1 real.
            def _arrive(event, flit=flit, deliver=deliver, env=env):
                deliver(flit)
                env.credit_elided(1)

            hook(t_end + prop, _arrive, True, None)
            if i + 1 < k:
                # Scalar order within the boundary bucket: the domain
                # release (and any credit refill it triggers) precedes
                # the next pop's dequeue, which precedes the next
                # credit get — hook insertion order reproduces it.
                if domain is not None and flit.flow is not None:
                    domain.release_at(flit.flow, t_end)
                hook(t_end, _tick, True, None)
        # Scalar bucket at ends[k]: the last ser Timeout + propagate
        # start hook = 2; the resuming Timeout here is 1 real.
        yield env.timeout_at(float(ends[k]))
        phys._wire.release(wire)
        phys.flits_sent += 1
        phys.bytes_sent += size
        port.pending -= 1
        port.flits_out += 1
        self.flits_forwarded += 1
        last = run[-1]
        if domain is not None and last.flow is not None:
            domain.release(last.flow)
        env.credit_elided(1)

    # -- inspection -------------------------------------------------------------

    def port_count(self) -> int:
        return len(self.ports)

    def describe(self) -> str:
        lines = [f"switch {self.name} (domain {self.domain}, "
                 f"{len(self.ports)} ports, {self.scheduler_kind} scheduler)"]
        for index in sorted(self.ports):
            port = self.ports[index]
            lines.append(f"  port {index} [{port.role.value}] -> {port.peer} "
                         f"(in={port.flits_in}, out={port.flits_out})")
        return "\n".join(lines)
