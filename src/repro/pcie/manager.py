"""The central fabric manager: discovery and routing-table fill.

The paper (section 2.1): "The switching routing table is generally
filled up by a central fabric manager."  This module is that manager:
it walks the topology graph (discovery), computes shortest paths with
breadth-first searches, and installs

* **PBR exact routes** for every endpoint in the switch's own domain —
  *all* equal-cost next hops, so adaptive switches can spread load
  over parallel paths (ECMP);
* **HBR domain routes** (one prefix entry per foreign domain) pointing
  at the next hop toward that domain's gateway.

The manager runs at configuration time — before traffic — mirroring how
real fabric managers program switches out-of-band.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .topology import Topology

__all__ = ["FabricManager"]


class FabricManager:
    """Computes and installs routes for every switch in a topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.routes_installed = 0

    def configure(self) -> int:
        """Fill every switch's routing table; returns #entries installed."""
        self.routes_installed = 0
        distance_maps = {
            name: self._distances_from(name)
            for name in self.topology.endpoints
        }
        for switch_name in self.topology.switches:
            self._configure_switch(switch_name, distance_maps)
        return self.routes_installed

    # -- internals -------------------------------------------------------

    def _distances_from(self, endpoint_name: str) -> Dict[str, int]:
        """BFS hop counts from an endpoint (not relaying via endpoints)."""
        distances = {endpoint_name: 0}
        queue = deque([endpoint_name])
        while queue:
            node = queue.popleft()
            if node in self.topology.endpoints and node != endpoint_name:
                continue  # endpoints do not forward traffic
            for neighbor, _ in self.topology.neighbors(node):
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    queue.append(neighbor)
        return distances

    def _next_hop_ports(self, switch_name: str,
                        distances: Dict[str, int]) -> List[int]:
        """Egress ports on every shortest path toward the endpoint."""
        my_distance = distances.get(switch_name)
        if my_distance is None:
            return []
        ports = []
        for neighbor, egress_port in self.topology.neighbors(switch_name):
            neighbor_distance = distances.get(neighbor)
            if neighbor_distance is not None \
                    and neighbor_distance == my_distance - 1:
                ports.append(egress_port)
        return ports

    def _configure_switch(self, switch_name: str,
                          distance_maps: Dict[str, Dict[str, int]]) -> None:
        switch = self.topology.switches[switch_name]
        foreign_domain_port: Dict[int, Optional[int]] = {}
        for endpoint in self.topology.endpoints.values():
            ports = self._next_hop_ports(switch_name,
                                         distance_maps[endpoint.name])
            if not ports:
                continue  # unreachable endpoint: leave unrouted
            if endpoint.pbr.domain == switch.domain:
                for egress_port in ports:
                    switch.table.add_endpoint(endpoint.pbr, egress_port)
                    self.routes_installed += 1
            else:
                known = foreign_domain_port.get(endpoint.pbr.domain)
                if known is None:
                    foreign_domain_port[endpoint.pbr.domain] = ports[0]
                elif known != ports[0]:
                    # Two gateways toward the same domain: fall back to
                    # exact routes for correctness (simple multipath).
                    switch.table.add_endpoint(endpoint.pbr, ports[0])
                    self.routes_installed += 1
        for domain, egress_port in foreign_domain_port.items():
            switch.table.add_domain(domain, egress_port)
            self.routes_installed += 1

    def describe(self) -> str:
        lines = [f"fabric manager: {self.routes_installed} routes installed"]
        for name, switch in self.topology.switches.items():
            lines.append(f"  {name} (domain {switch.domain}):")
            for kind, key, port in switch.table.entries():
                lines.append(f"    {kind:<8} {key!r:<18} -> port {port}")
        return "\n".join(lines)
