"""Per-flow credit budgeting at a contended switch egress port.

Models the CFC issues the paper calls out in section 3 (difference #3).
A :class:`CreditDomain` owns the finite credit budget of one hot egress
port (e.g. the downstream port toward a FAM chassis) and divides it
among the *flows* (source ports) crossing it.  How it divides is the
pluggable :class:`CreditPolicy`:

* :class:`RampUpPolicy` — the de facto scheme: exponential ramp-up by
  observed utilization.  A consistently busy flow grabs most of the
  budget; a quiet flow decays to the floor and stalls when it bursts.
* :class:`StaticEqualPolicy` — fixed equal shares (no adaptation).
* :class:`ReservationPolicy` — the DP#4 arbiter's scheme: flows hold
  explicit reservations (guaranteed minimum), and the slack is divided
  equally; rebalance is immediate on reserve/reclaim, not periodic.
* :class:`WeightedSharePolicy` — fixed proportional shares by per-flow
  weight; the shape the closed-loop control plane installs when a
  health window shows a flow starving (see :mod:`repro.control`).

The domain is also a *runtime-reconfigurable* surface:
:meth:`CreditDomain.set_policy` swaps the policy mid-run and applies
its targets immediately (without resetting the demand counters the
periodic rebalancer reads), and :meth:`CreditDomain.set_rebalance_ns`
retunes the rebalance cadence — both are what
:class:`repro.control.CreditActuator` drives.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from .. import params
from ..sim import Container, Environment, Event, Tracer
from ..telemetry.causal import CREDIT_STALL

__all__ = ["CreditDomain", "CreditPolicy", "RampUpPolicy",
           "StaticEqualPolicy", "ReservationPolicy",
           "WeightedSharePolicy"]


class CreditPolicy:
    """Decides each flow's credit target given observed demand."""

    #: smallest share any registered flow may hold
    floor = 1

    def targets(self, domain: "CreditDomain") -> Dict[str, int]:
        raise NotImplementedError


class StaticEqualPolicy(CreditPolicy):
    """Equal fixed shares, remainder to the earliest-registered flows."""

    def targets(self, domain: "CreditDomain") -> Dict[str, int]:
        flows = domain.flow_names()
        if not flows:
            return {}
        share, remainder = divmod(domain.budget, len(flows))
        return {name: max(self.floor, share + (1 if i < remainder else 0))
                for i, name in enumerate(flows)}


class RampUpPolicy(CreditPolicy):
    """Exponential ramp-up by utilization (the vanilla CFC scheme).

    A flow that used more than ``hot_threshold`` of its current grant
    since the last rebalance doubles its target; one below
    ``cold_threshold`` halves.  Targets are then scaled into the budget.
    The pathology (claim C5): a steadily hot flow compounds its share,
    and a quiet flow is left at the floor — when it finally bursts it
    stalls for whole rebalance periods.
    """

    def __init__(self, ramp: float = params.CREDIT_RAMP_FACTOR,
                 hot_threshold: float = 0.75,
                 cold_threshold: float = 0.25) -> None:
        self.ramp = ramp
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold

    def targets(self, domain: "CreditDomain") -> Dict[str, int]:
        desired: Dict[str, float] = {}
        for name in domain.flow_names():
            grant = domain.granted(name)
            used = domain.consumed_since_rebalance(name)
            utilization = used / grant if grant else 1.0
            if utilization >= self.hot_threshold:
                desired[name] = max(self.floor, grant * self.ramp)
            elif utilization <= self.cold_threshold:
                desired[name] = max(self.floor, grant / self.ramp)
            else:
                desired[name] = max(self.floor, grant)
        total = sum(desired.values())
        if total <= 0:
            return StaticEqualPolicy().targets(domain)
        scale = domain.budget / total
        targets = {name: max(self.floor, int(value * scale))
                   for name, value in desired.items()}
        return targets


class ReservationPolicy(CreditPolicy):
    """Explicit reservations with equal division of the slack (DP#4)."""

    def __init__(self) -> None:
        self.reservations: Dict[str, int] = {}

    def reserve(self, flow: str, credits: int) -> None:
        if credits < 0:
            raise ValueError(f"negative reservation {credits}")
        self.reservations[flow] = credits

    def reclaim(self, flow: str) -> None:
        self.reservations.pop(flow, None)

    def targets(self, domain: "CreditDomain") -> Dict[str, int]:
        flows = domain.flow_names()
        if not flows:
            return {}
        reserved = {name: self.reservations.get(name, 0) for name in flows}
        committed = sum(reserved.values())
        slack = max(0, domain.budget - committed
                    - self.floor * sum(1 for n in flows if not reserved[n]))
        unreserved = [n for n in flows if not reserved[n]]
        extra, remainder = (divmod(slack, len(unreserved))
                            if unreserved else (0, 0))
        targets = {}
        for i, name in enumerate(flows):
            if reserved[name]:
                targets[name] = reserved[name]
            else:
                bump = extra + (1 if unreserved.index(name) < remainder else 0)
                targets[name] = self.floor + bump
        return targets


class WeightedSharePolicy(CreditPolicy):
    """Fixed proportional shares by explicit per-flow weight.

    The budget is apportioned by largest remainder, so integer grants
    sum to the budget exactly regardless of float weights; flows the
    weight map does not name get weight zero (they keep only the
    floor).  This is the target shape a feedback rule installs: equal
    weights for hot and quiet undo RampUpPolicy's compounding without
    hand-picking credit counts.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        if not weights:
            raise ValueError("weights must name at least one flow")
        for flow, weight in weights.items():
            if not isinstance(weight, (int, float)) \
                    or isinstance(weight, bool) or weight <= 0:
                raise ValueError(
                    f"weight for flow {flow!r} must be a number > 0, "
                    f"got {weight!r}")
        self.weights = {flow: float(weight)
                        for flow, weight in weights.items()}

    def targets(self, domain: "CreditDomain") -> Dict[str, int]:
        flows = domain.flow_names()
        if not flows:
            return {}
        weights = {name: self.weights.get(name, 0.0) for name in flows}
        total = sum(weights.values())
        if total <= 0:
            return StaticEqualPolicy().targets(domain)
        exact = {name: domain.budget * weights[name] / total
                 for name in flows}
        targets = {name: int(exact[name]) for name in flows}
        leftover = domain.budget - sum(targets.values())
        order = sorted(range(len(flows)),
                       key=lambda i: (-(exact[flows[i]]
                                        - targets[flows[i]]), i))
        for i in order[:leftover]:
            targets[flows[i]] += 1
        return {name: max(self.floor, targets[name]) for name in flows}


class CreditDomain:
    """The credit budget of one contended egress port, divided by flows.

    A flow acquires one credit per flit before the flit may enter the
    egress stage and releases it once the flit has been serialized
    downstream.  A periodic rebalancer moves grants between flows
    according to the policy.
    """

    def __init__(self, env: Environment, budget: int,
                 policy: Optional[CreditPolicy] = None,
                 rebalance_ns: float = params.CREDIT_RAMP_INTERVAL_NS,
                 tracer: Optional[Tracer] = None,
                 name: str = "creditdom") -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.env = env
        self.budget = budget
        self.policy = policy or StaticEqualPolicy()
        self.rebalance_ns = rebalance_ns
        self.tracer = tracer
        self.name = name
        self._pools: Dict[str, Container] = {}
        self._granted: Dict[str, int] = {}
        self._order: List[str] = []
        self._consumed: Dict[str, int] = {}
        self._running = False
        # Conservation accounting, live only under Environment(
        # sanitize=True): per flow, credits held by flits in flight,
        # credits owed to lazy retirement after a shrink, and acquire
        # events not yet granted (reconciled at audit time, since a
        # blocked get leaves the pool the instant a put serves it).
        self._san = env.sanitizer
        self._in_flight: Dict[str, int] = {}
        self._retire_debt: Dict[str, int] = {}
        self._pending_gets: Dict[str, List[Event]] = {}
        if self._san is not None:
            self._san.register_credit_domain(self)
        # Telemetry: credit occupancy per flow is probed by the
        # TimelineSampler; stalls (an acquire that blocks) and
        # rebalances are recorded as they happen.
        self._tel = tel = env.telemetry
        if tel is not None:
            self._track = f"credits.{name}"
            self._m_stalls = tel.registry.counter(f"credits.{name}.stalls")
        # Causal tracing: a blocked acquire is the credit_stall the
        # starvation scenario attributes victim latency to.  Per-flow
        # site strings are built once, at register time.
        self._causal = tel.causal if tel is not None else None
        self._causal_sites: Dict[str, str] = {}

    # -- flow registry -----------------------------------------------------

    def register(self, flow: str) -> None:
        if flow in self._pools:
            raise ValueError(f"flow {flow!r} already registered")
        self._pools[flow] = Container(self.env, capacity=self.budget * 4,
                                      init=0)
        self._granted[flow] = 0
        self._consumed[flow] = 0
        self._in_flight[flow] = 0
        self._retire_debt[flow] = 0
        self._pending_gets[flow] = []
        self._order.append(flow)
        if self._causal is not None:
            self._causal_sites[flow] = f"credits.{self.name}.{flow}"
        if self._tel is not None:
            pool = self._pools[flow]
            self._tel.add_probe(f"credits.{self.name}.{flow}.available",
                                lambda p=pool: p.level, track=self._track)
            self._tel.add_probe(f"credits.{self.name}.{flow}.granted",
                                lambda f=flow: self._granted[f],
                                track=self._track)
        self._apply_targets(self.policy.targets(self))

    def flow_names(self) -> List[str]:
        return list(self._order)

    def granted(self, flow: str) -> int:
        return self._granted[flow]

    def available(self, flow: str) -> float:
        return self._pools[flow].level

    def consumed_since_rebalance(self, flow: str) -> int:
        return self._consumed[flow]

    # -- data path ----------------------------------------------------------

    def acquire(self, flow: str, trace=None) -> Event:
        """Take one credit for ``flow`` (blocks while its pool is dry).

        ``trace`` is an optional causal
        :class:`~repro.telemetry.causal.TraceContext`; a blocked
        acquire then records a ``credit_stall`` interval closing the
        instant the credit is granted.
        """
        self._consumed[flow] += 1
        event = self._pools[flow].get(1)
        if self._tel is not None and not event.triggered:
            # The flow stalled dry — the starvation signature the §3
            # timeline scenarios visualize.
            self._m_stalls.inc(time=self.env.now)
            self._tel.instant("credits.stall", track=self._track, flow=flow)
        if self._causal is not None and trace is not None:
            self._causal.wait(trace, event, CREDIT_STALL,
                              self._causal_sites[flow])
        if self._san is not None:
            if event.triggered:
                self._in_flight[flow] += 1
            else:
                self._pending_gets[flow].append(event)
        return event

    def release(self, flow: str) -> None:
        """Return one credit (flit left the egress stage)."""
        target = self._granted[flow]
        pool = self._pools[flow]
        if self._san is not None:
            self._reconcile(flow)
            self._in_flight[flow] -= 1
            if self._in_flight[flow] < 0:
                self._san.note(
                    "credit-negative",
                    f"credit domain {self.name!r}: flow {flow!r} "
                    "released a credit it never acquired (double "
                    "release or conjured credit)")
            elif pool.level >= target:
                # A retiring release (grant shrank while this credit
                # was out): settle one unit of the lazy-shrink debt.
                if self._retire_debt[flow] > 0:
                    self._retire_debt[flow] -= 1
        # If the flow's grant shrank since this credit was taken, the
        # returned credit is retired instead of refilled.
        if pool.level < target:
            pool.put(1)

    def release_at(self, flow: str, time: float) -> None:
        """Schedule :meth:`release` of one credit at absolute ``time``.

        The switch's batched egress sweep retires a whole flit run on a
        closed-form schedule, but each flit's credit must still return
        at the instant the scalar path would have released it (the end
        of its serialization) — later acquires may be blocked on it.
        Costs one pooled hook per flit; the acquire path, where the
        credit constraint actually bites, is untouched.
        """
        self.env._schedule_hook_at(
            time, lambda event: self.release(flow), True, None)

    # -- control plane --------------------------------------------------------

    def start(self) -> None:
        """Begin periodic rebalancing (idempotent)."""
        if not self._running:
            self._running = True
            self.env.process(self._rebalancer(), name=f"{self.name}.rebal",
                             daemon=True)

    def set_policy(self, policy: CreditPolicy) -> None:
        """Swap the allocation policy mid-run and apply it immediately.

        Unlike :meth:`rebalance_now` the per-flow consumed counters
        survive: the in-progress rebalance period's demand
        observations still reach the next periodic pass, so a runtime
        policy swap never erases evidence the old policy gathered.
        Blocked acquires are served the instant a grown pool is
        refilled (same sim time, deterministic order).
        """
        self.policy = policy
        self._apply_targets(policy.targets(self))
        if self._tel is not None:
            self._tel.instant("cfc.set_policy", track=self._track,
                              policy=type(policy).__name__,
                              grants=dict(self._granted))
        if self._san is not None:
            self._san.check_credit_domain(self)

    def set_rebalance_ns(self, rebalance_ns: float) -> None:
        """Retune the rebalance cadence; the running loop picks the
        new period up at its next wakeup (it re-reads the attribute).
        """
        if rebalance_ns <= 0:
            raise ValueError(
                f"rebalance_ns must be > 0, got {rebalance_ns}")
        self.rebalance_ns = rebalance_ns

    def rebalance_now(self) -> None:
        """Apply policy targets immediately (the arbiter path)."""
        self._apply_targets(self.policy.targets(self))
        for flow in self._consumed:
            self._consumed[flow] = 0
        if self._tel is not None:
            self._tel.instant("cfc.rebalance", track=self._track,
                              grants=dict(self._granted))
        if self._san is not None:
            self._san.check_credit_domain(self)

    def _rebalancer(self) -> Generator[Event, None, None]:
        while True:
            yield self.env.timeout(self.rebalance_ns)
            self.rebalance_now()
            if self.tracer is not None:
                self.tracer.record(self.env.now, "credits.rebalance",
                                   domain=self.name,
                                   grants=dict(self._granted))

    def _apply_targets(self, targets: Dict[str, int]) -> None:
        for flow, target in targets.items():
            current = self._granted[flow]
            if target > current:
                self._pools[flow].put(target - current)
            elif target < current:
                # Shrinking is lazy: outstanding credits retire on
                # release (see `release`), idle ones are drained now.
                drain = min(self._pools[flow].level, current - target)
                if drain > 0:
                    self._pools[flow].get(drain)
                if self._san is not None:
                    # Whatever could not be drained is owed by credits
                    # currently in flight; they retire on release.
                    self._retire_debt[flow] += \
                        int(current - target - drain)
            self._granted[flow] = target

    # -- conservation audit (sanitize=True) ---------------------------------

    def _reconcile(self, flow: str) -> None:
        """Move granted-while-blocked acquires into the in-flight count.

        A blocked ``get`` leaves the pool inside whatever put served
        it, so its credit is counted the moment the event shows
        triggered — exactly when the pool level dropped.
        """
        pending = self._pending_gets[flow]
        if pending:
            still_blocked = [e for e in pending if not e.triggered]
            self._in_flight[flow] += len(pending) - len(still_blocked)
            pending[:] = still_blocked

    def conservation_problems(self) -> List[str]:
        """Audit ``available + in_flight == granted + retire_debt``.

        Returns one human-readable problem per violating flow; empty
        when the domain conserves credits.  Only meaningful under
        ``Environment(sanitize=True)`` (the accounting is idle
        otherwise).
        """
        problems: List[str] = []
        if self._san is None:
            return problems
        for flow in self._order:
            self._reconcile(flow)
            available = int(self._pools[flow].level)
            in_flight = self._in_flight[flow]
            granted = self._granted[flow]
            debt = self._retire_debt[flow]
            if in_flight < 0:
                problems.append(
                    f"flow {flow!r} has negative in-flight credits "
                    f"({in_flight}): more releases than acquires")
                continue
            if available + in_flight != granted + debt:
                direction = ("leaked" if available + in_flight
                             < granted + debt else "conjured")
                problems.append(
                    f"flow {flow!r} {direction} "
                    f"{abs(granted + debt - available - in_flight)} "
                    f"credit(s): available={available} + "
                    f"in_flight={in_flight} != granted={granted} + "
                    f"retire_debt={debt}")
        return problems
