"""Routable PCIe: switches, routing, arbitration, credits, topology.

The carrier layer of commodity memory fabrics (section 3, difference
#3).  :mod:`repro.pcie.switch` models the fabric switch,
:mod:`repro.pcie.routing` the PBR/HBR addressing scheme,
:mod:`repro.pcie.arbitration` the egress service disciplines,
:mod:`repro.pcie.credits` per-flow credit budgeting (the CFC pathology
experiments), :mod:`repro.pcie.topology` the rack wiring, and
:mod:`repro.pcie.manager` the central fabric manager.
"""

from .arbitration import (
    EgressScheduler,
    FairVcScheduler,
    FifoScheduler,
    PriorityScheduler,
    make_scheduler,
)
from .credits import (
    CreditDomain,
    CreditPolicy,
    RampUpPolicy,
    ReservationPolicy,
    StaticEqualPolicy,
)
from .manager import FabricManager
from .routing import MAX_PBR_IDS, PBR_ID_BITS, PbrId, RoutingTable
from .switch import FabricSwitch, PortRole, SwitchPort
from .topology import Endpoint, Topology

__all__ = [
    "EgressScheduler",
    "FairVcScheduler",
    "FifoScheduler",
    "PriorityScheduler",
    "make_scheduler",
    "CreditDomain",
    "CreditPolicy",
    "RampUpPolicy",
    "ReservationPolicy",
    "StaticEqualPolicy",
    "FabricManager",
    "MAX_PBR_IDS",
    "PBR_ID_BITS",
    "PbrId",
    "RoutingTable",
    "FabricSwitch",
    "PortRole",
    "SwitchPort",
    "Endpoint",
    "Topology",
]
