"""PBR / HBR routing structures (CXL 2.0+, section 2.1 of the paper).

A CXL fabric is organized into *domains*.  Inside a domain, switches are
Port-Based-Routing (PBR) capable: every edge port carries a 12-bit PBR
ID (up to 4096 per domain) and switches forward on exact-match tables.
Domains are glued together with Hierarchy-Based-Routing (HBR) links:
a destination in a foreign domain is matched by its domain prefix and
forwarded toward the inter-domain gateway.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

__all__ = ["PbrId", "RoutingTable", "PBR_ID_BITS", "MAX_PBR_IDS"]

PBR_ID_BITS = 12
MAX_PBR_IDS = 1 << PBR_ID_BITS          # 4096 edge ports per domain
DOMAIN_SHIFT = PBR_ID_BITS              # global id = (domain << 12) | pbr


@dataclasses.dataclass(frozen=True, order=True)
class PbrId:
    """A fabric-global endpoint address: (domain, 12-bit PBR id)."""

    domain: int
    local: int

    def __post_init__(self) -> None:
        if not 0 <= self.local < MAX_PBR_IDS:
            raise ValueError(
                f"PBR id {self.local} outside 12-bit range [0, {MAX_PBR_IDS})")
        if self.domain < 0:
            raise ValueError(f"negative domain {self.domain}")

    @property
    def global_id(self) -> int:
        return (self.domain << DOMAIN_SHIFT) | self.local

    @classmethod
    def from_global(cls, global_id: int) -> "PbrId":
        return cls(domain=global_id >> DOMAIN_SHIFT,
                   local=global_id & (MAX_PBR_IDS - 1))

    def __repr__(self) -> str:
        return f"PbrId({self.domain}:{self.local})"


class RoutingTable:
    """Per-switch forwarding table filled by the fabric manager.

    Two match stages, mirroring PBR-within-domain + HBR-across-domain:

    1. exact match on the destination's global id (intra-domain PBR);
    2. prefix match on the destination's domain (HBR toward a gateway).

    A destination may have several equal-cost egress ports (multipath);
    :meth:`lookup` returns the primary, :meth:`candidates` returns all
    of them so adaptive switches can pick the least-loaded (the
    "adaptive routing techniques" of section 2.1).
    """

    def __init__(self, switch_domain: int) -> None:
        self.switch_domain = switch_domain
        # global id -> list of equal-cost egress ports (primary first)
        self._exact: Dict[int, List[int]] = {}
        self._domains: Dict[int, List[int]] = {}
        self._default: Optional[int] = None

    def add_endpoint(self, dst: PbrId, egress_port: int) -> None:
        """Install an exact (PBR) route (appends an ECMP candidate)."""
        ports = self._exact.setdefault(dst.global_id, [])
        if egress_port not in ports:
            ports.append(egress_port)

    def add_domain(self, domain: int, egress_port: int) -> None:
        """Install an HBR route toward a foreign domain."""
        if domain == self.switch_domain:
            raise ValueError("HBR route to own domain is invalid")
        ports = self._domains.setdefault(domain, [])
        if egress_port not in ports:
            ports.append(egress_port)

    def set_default(self, egress_port: int) -> None:
        self._default = egress_port

    def candidates(self, dst: PbrId) -> List[int]:
        """All equal-cost egress ports for ``dst`` (primary first)."""
        ports = self._exact.get(dst.global_id)
        if ports:
            return list(ports)
        if dst.domain != self.switch_domain:
            ports = self._domains.get(dst.domain)
            if ports:
                return list(ports)
        if self._default is not None:
            return [self._default]
        raise KeyError(f"no route to {dst!r} in domain {self.switch_domain}")

    def lookup(self, dst: PbrId) -> int:
        """Return the primary egress port for ``dst``."""
        return self.candidates(dst)[0]

    def __contains__(self, dst: PbrId) -> bool:
        try:
            self.lookup(dst)
            return True
        except KeyError:
            return False

    def __len__(self) -> int:
        return len(self._exact) + len(self._domains)

    def entries(self) -> Iterator[tuple]:
        """Yield (kind, key, egress_port) rows, for inspection/printing."""
        for gid, ports in sorted(self._exact.items()):
            yield ("pbr", PbrId.from_global(gid), ports[0])
        for domain, ports in sorted(self._domains.items()):
            yield ("hbr", domain, ports[0])
        if self._default is not None:
            yield ("default", None, self._default)
