"""Name resolution: one string names any topology in the system.

A *topology spec* is the string an experiment parameter, a sweep axis,
or ``repro topo show`` accepts.  Three forms:

* a committed shape name  — ``"interleave"`` loads
  ``repro/topo/shapes/interleave.json``;
* a bare generator name   — ``"fat_tree"`` builds the generator with
  its defaults;
* a generator call        — ``"fat_tree:pods=2,leaves=2"`` overrides
  typed parameters (values parse per the generator's schema).

Unknown names raise :class:`UnknownTopologyError`, whose message lists
every valid committed shape and generator — the CLI and the experiment
layer surface it verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List

from .descriptor import (
    DescriptorError,
    TopologyDescriptor,
    load_descriptor,
)
from .generators import GENERATORS, generator_names

__all__ = ["SHAPES_DIR", "UnknownTopologyError", "shape_names",
           "load_shape", "resolve_topology", "topology_choices"]

SHAPES_DIR = Path(__file__).parent / "shapes"


class UnknownTopologyError(DescriptorError):
    """A topology spec that names neither a shape nor a generator."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        super().__init__(
            f"unknown topology {spec!r}; committed shapes: "
            f"{', '.join(shape_names()) or '(none)'}; generators: "
            f"{', '.join(generator_names())} (call one with e.g. "
            f"'fat_tree:pods=2,leaves=2')")


def shape_names() -> List[str]:
    """Sorted names of the committed descriptor files."""
    return sorted(path.stem for path in SHAPES_DIR.glob("*.json"))


def topology_choices() -> List[str]:
    """Everything ``resolve_topology`` accepts by bare name."""
    return sorted(set(shape_names()) | set(generator_names()))


def load_shape(name: str) -> TopologyDescriptor:
    """Load + validate one committed shape by name."""
    path = SHAPES_DIR / f"{name}.json"
    if not path.exists():
        raise UnknownTopologyError(name)
    return load_descriptor(path)


def _parse_generator_args(generator_name: str,
                          text: str) -> Dict[str, Any]:
    generator = GENERATORS[generator_name]
    overrides: Dict[str, Any] = {}
    if not text:
        return overrides
    for item in text.split(","):
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq or not key:
            raise DescriptorError(
                f"generator spec argument {item!r} is not name=value "
                f"(in {generator_name!r} call)")
        param = generator.params.get(key)
        if param is None:
            known = ", ".join(sorted(generator.params)) or "(none)"
            raise DescriptorError(
                f"generator {generator_name!r} has no parameter "
                f"{key!r}; known: {known}")
        overrides[key] = param.parse(key, value.strip())
    return overrides


def resolve_topology(spec: str) -> TopologyDescriptor:
    """Resolve a topology spec string into a validated descriptor."""
    if not isinstance(spec, str) or not spec:
        raise DescriptorError(
            f"topology spec must be a non-empty string, got {spec!r}")
    name, colon, args = spec.partition(":")
    if colon:
        if name not in GENERATORS:
            raise UnknownTopologyError(name)
        return GENERATORS[name](**_parse_generator_args(name, args))
    if name in GENERATORS:
        return GENERATORS[name]()
    if (SHAPES_DIR / f"{name}.json").exists():
        return load_shape(name)
    raise UnknownTopologyError(spec)
