"""repro.topo: declarative topology descriptors + the generator zoo.

The fabric-manager-driven topology layer (ROADMAP: "Fabric Manager +
declarative topology layer"):

* :mod:`~repro.topo.descriptor` — the typed, JSON-(de)serializable
  mesh/pod/cluster schema with validation and path-precise errors;
* :mod:`~repro.topo.generators` — parameterized star / chain /
  fat-tree / dragonfly builders that emit descriptors;
* :mod:`~repro.topo.compiler`   — the mapper that deterministically
  wires a descriptor into a :class:`~repro.pcie.topology.Topology` and
  runs :class:`~repro.pcie.manager.FabricManager` route fill;
* :mod:`~repro.topo.verify`     — full endpoint-to-endpoint
  reachability and ECMP checks over the installed tables;
* :mod:`~repro.topo.resolve`    — one string ("interleave",
  "fat_tree:pods=2") names any committed shape or generator call.

Committed shapes live in ``repro/topo/shapes/*.json``; ``repro topo
{list,show,validate}`` is the CLI face.
"""

from .compiler import CompiledFabric, compile_topology
from .descriptor import (
    DescriptorError,
    EndpointSpec,
    LinkClassSpec,
    PodSpec,
    SwitchLinkSpec,
    SwitchSpec,
    TopologyDescriptor,
    load_descriptor,
)
from .generators import (
    GENERATORS,
    GenParam,
    Generator,
    build_generated,
    chain,
    dragonfly,
    fat_tree,
    generator_names,
    star,
)
from .resolve import (
    SHAPES_DIR,
    UnknownTopologyError,
    load_shape,
    resolve_topology,
    shape_names,
    topology_choices,
)
from .verify import VerificationError, ecmp_counts, verify_reachability

__all__ = [
    "CompiledFabric",
    "DescriptorError",
    "EndpointSpec",
    "GENERATORS",
    "GenParam",
    "Generator",
    "LinkClassSpec",
    "PodSpec",
    "SHAPES_DIR",
    "SwitchLinkSpec",
    "SwitchSpec",
    "TopologyDescriptor",
    "UnknownTopologyError",
    "VerificationError",
    "build_generated",
    "chain",
    "compile_topology",
    "dragonfly",
    "ecmp_counts",
    "fat_tree",
    "generator_names",
    "load_descriptor",
    "load_shape",
    "resolve_topology",
    "shape_names",
    "star",
    "topology_choices",
    "verify_reachability",
]
