"""Route verification over a compiled fabric.

After the fabric manager fills the routing tables, these checks walk
the tables the way flits would: from every source endpoint's ingress
switch, follow *every* equal-cost candidate egress port toward every
destination endpoint, and demand that each branch terminates at the
destination without loops, dead ends, or misroutes.  The property
tests sweep the generator zoo through this, so "the manager routes
every generated shape" is an invariant, not a hope.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..pcie.topology import Topology

__all__ = ["VerificationError", "verify_reachability", "ecmp_counts"]


class VerificationError(ValueError):
    """A compiled fabric whose routing tables are not fully usable."""


def _egress_map(topology: Topology,
                switch_name: str) -> Dict[int, str]:
    """Egress port index -> neighbor name, for one switch."""
    return {port: neighbor
            for neighbor, port in topology.neighbors(switch_name)}


def _entry_switch(topology: Topology, endpoint_name: str) -> str:
    neighbors = topology.neighbors(endpoint_name)
    if len(neighbors) != 1:
        raise VerificationError(
            f"endpoint {endpoint_name!r} has {len(neighbors)} "
            f"attachments; expected exactly 1")
    return neighbors[0][0]


def verify_reachability(topology: Topology) -> Dict[str, int]:
    """Walk every (src, dst) endpoint pair along all ECMP branches.

    Returns ``{"pairs": n, "max_hops": h}`` on success; raises
    :class:`VerificationError` naming the first broken pair otherwise.
    """
    egress_maps = {name: _egress_map(topology, name)
                   for name in topology.switches}
    hop_limit = len(topology.switches) + 1
    pairs = 0
    max_hops = 0
    for src_name, src in topology.endpoints.items():
        entry = _entry_switch(topology, src_name)
        for dst_name, dst in topology.endpoints.items():
            if dst_name == src_name:
                continue
            pairs += 1
            # Depth-first over every candidate branch; path carries the
            # hop count so loops surface as limit overruns.
            stack: List[Tuple[str, int]] = [(entry, 1)]
            while stack:
                switch_name, hops = stack.pop()
                if hops > hop_limit:
                    raise VerificationError(
                        f"route {src_name} -> {dst_name} exceeds "
                        f"{hop_limit} switch hops at {switch_name!r} "
                        f"(routing loop?)")
                switch = topology.switches[switch_name]
                try:
                    candidates = switch.table.candidates(dst.pbr)
                except KeyError:
                    raise VerificationError(
                        f"switch {switch_name!r} has no route for "
                        f"{dst_name} ({dst.pbr!r}) on the path from "
                        f"{src_name}") from None
                if not candidates:
                    raise VerificationError(
                        f"switch {switch_name!r} has an empty candidate "
                        f"set for {dst_name}")
                for port in candidates:
                    neighbor = egress_maps[switch_name].get(port)
                    if neighbor is None:
                        raise VerificationError(
                            f"switch {switch_name!r} routes {dst_name} "
                            f"out port {port}, which is not wired")
                    if neighbor == dst_name:
                        max_hops = max(max_hops, hops)
                    elif neighbor in topology.endpoints:
                        raise VerificationError(
                            f"switch {switch_name!r} misroutes "
                            f"{dst_name} toward endpoint {neighbor!r}")
                    else:
                        stack.append((neighbor, hops + 1))
    return {"pairs": pairs, "max_hops": max_hops}


def ecmp_counts(topology: Topology) -> Dict[Tuple[str, str], int]:
    """Equal-cost next-hop count per (switch, destination endpoint).

    Unrouted pairs are omitted (a switch with only an HBR prefix route
    toward a foreign domain still counts — prefix candidates included).
    """
    counts: Dict[Tuple[str, str], int] = {}
    for switch_name, switch in topology.switches.items():
        for endpoint_name, endpoint in topology.endpoints.items():
            try:
                candidates = switch.table.candidates(endpoint.pbr)
            except KeyError:
                continue
            counts[(switch_name, endpoint_name)] = len(candidates)
    return counts
