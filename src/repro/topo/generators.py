"""The generator zoo: parameterized builders that emit descriptors.

Each generator is a pure function from typed parameters to a
:class:`~repro.topo.descriptor.TopologyDescriptor` — no environment, no
wiring, just data.  A new shape for an experiment or a sweep axis is a
one-line generator call (or the committed JSON it emits), never a new
module.

Shapes:

* ``star``      — one switch, hosts up / devices down (the Omega
  testbed shape that :func:`repro.infra.build_cluster` defaults to);
* ``chain``     — a line of switches in one pod, hosts at the head,
  devices at the tail (worst-case hop count, C7-style trees);
* ``fat_tree``  — pods of leaf+spine switches, pods joined spine-to-
  spine across domains.  Intra-pod links are wide; inter-pod links are
  narrow with their own credit budget (the DFabric hybrid regime), so
  §3 cross-switch credit starvation is reproducible at pod scale;
* ``dragonfly`` — groups of fully-meshed routers, one global link per
  group pair.

Every generator spreads endpoints deterministically; calling a
generator twice with the same parameters yields equal descriptors
(pinned by tests).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping

from .descriptor import (
    DescriptorError,
    EndpointSpec,
    LinkClassSpec,
    PodSpec,
    SwitchLinkSpec,
    SwitchSpec,
    TopologyDescriptor,
)

__all__ = ["GenParam", "Generator", "GENERATORS", "generator_names",
           "build_generated", "star", "chain", "fat_tree", "dragonfly"]


@dataclasses.dataclass(frozen=True)
class GenParam:
    """One typed generator parameter (mirrors experiments' Param)."""

    type: type
    default: Any
    help: str = ""

    def parse(self, name: str, text: str) -> Any:
        try:
            if self.type is bool:
                lowered = text.lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ValueError(text)
            return self.type(text)
        except (ValueError, TypeError):
            raise DescriptorError(
                f"cannot parse {text!r} as {self.type.__name__} for "
                f"generator parameter {name!r}") from None


@dataclasses.dataclass(frozen=True)
class Generator:
    """A registered shape builder: schema + build function."""

    name: str
    description: str
    params: Mapping[str, GenParam]
    build: Callable[..., TopologyDescriptor]

    def __call__(self, **overrides: Any) -> TopologyDescriptor:
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            known = ", ".join(sorted(self.params)) or "(none)"
            raise DescriptorError(
                f"generator {self.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; known: {known}")
        resolved = {key: param.default
                    for key, param in self.params.items()}
        resolved.update(overrides)
        return self.build(**resolved).validate()


def _positive(name: str, value: int, generator: str) -> int:
    if value < 1:
        raise DescriptorError(
            f"generator {generator!r}: parameter {name!r} must be >= 1, "
            f"got {value}")
    return value


# --------------------------------------------------------------------------
# star
# --------------------------------------------------------------------------


def star(hosts: int = 2, devices: int = 2,
         device_lanes: int = 16) -> TopologyDescriptor:
    _positive("hosts", hosts, "star")
    _positive("devices", devices, "star")
    classes = {}
    device_class = None
    if device_lanes != 16:
        classes["device"] = LinkClassSpec(lanes=device_lanes)
        device_class = "device"
    endpoints = [EndpointSpec(name=f"h{i}", switch="sw0", role="upstream")
                 for i in range(hosts)]
    endpoints += [EndpointSpec(name=f"d{i}", switch="sw0",
                               link_class=device_class)
                  for i in range(devices)]
    return TopologyDescriptor(
        name=f"star_h{hosts}_d{devices}",
        description=f"one switch, {hosts} host(s) / {devices} device(s)",
        link_classes=classes,
        pods=(PodSpec(name="pod0", domain=0,
                      switches=(SwitchSpec(name="sw0"),),
                      endpoints=tuple(endpoints)),))


# --------------------------------------------------------------------------
# chain
# --------------------------------------------------------------------------


def chain(switches: int = 3, hosts: int = 1,
          devices: int = 1) -> TopologyDescriptor:
    _positive("switches", switches, "chain")
    _positive("hosts", hosts, "chain")
    _positive("devices", devices, "chain")
    sw = tuple(SwitchSpec(name=f"sw{i}") for i in range(switches))
    links = tuple(SwitchLinkSpec(a=f"sw{i}", b=f"sw{i + 1}")
                  for i in range(switches - 1))
    endpoints = [EndpointSpec(name=f"h{i}", switch="sw0", role="upstream")
                 for i in range(hosts)]
    endpoints += [EndpointSpec(name=f"d{i}", switch=f"sw{switches - 1}")
                  for i in range(devices)]
    return TopologyDescriptor(
        name=f"chain_s{switches}_h{hosts}_d{devices}",
        description=f"{switches}-switch chain, hosts at the head, "
                    f"devices at the tail",
        pods=(PodSpec(name="pod0", domain=0, switches=sw, links=links,
                      endpoints=tuple(endpoints)),))


# --------------------------------------------------------------------------
# fat tree (pods of leaf+spine, joined spine-to-spine across domains)
# --------------------------------------------------------------------------


def fat_tree(pods: int = 2, leaves: int = 2, spines: int = 1,
             hosts_per_leaf: int = 1, devices_per_leaf: int = 1,
             interpod_lanes: int = 8, interpod_credits: int = 16,
             device_lanes: int = 16,
             device_credits: int = 32) -> TopologyDescriptor:
    _positive("pods", pods, "fat_tree")
    _positive("leaves", leaves, "fat_tree")
    _positive("spines", spines, "fat_tree")
    classes = {
        "edge": LinkClassSpec(),
        "intra": LinkClassSpec(),
        "interpod": LinkClassSpec(lanes=interpod_lanes,
                                  credits=interpod_credits),
        "device": LinkClassSpec(lanes=device_lanes,
                                credits=device_credits),
    }
    pod_specs: List[PodSpec] = []
    for p in range(pods):
        switches = tuple(
            [SwitchSpec(name=f"pod{p}.leaf{l}") for l in range(leaves)]
            + [SwitchSpec(name=f"pod{p}.spine{s}") for s in range(spines)])
        links = tuple(
            SwitchLinkSpec(a=f"pod{p}.leaf{l}", b=f"pod{p}.spine{s}",
                           link_class="intra")
            for l in range(leaves) for s in range(spines))
        endpoints: List[EndpointSpec] = []
        for l in range(leaves):
            for i in range(hosts_per_leaf):
                endpoints.append(EndpointSpec(
                    name=f"pod{p}.h{l}.{i}", switch=f"pod{p}.leaf{l}",
                    role="upstream", link_class="edge"))
            for i in range(devices_per_leaf):
                endpoints.append(EndpointSpec(
                    name=f"pod{p}.d{l}.{i}", switch=f"pod{p}.leaf{l}",
                    link_class="device"))
        pod_specs.append(PodSpec(name=f"pod{p}", domain=p,
                                 switches=switches, links=links,
                                 endpoints=tuple(endpoints)))
    interpod = tuple(
        SwitchLinkSpec(a=f"pod{i}.spine{s}", b=f"pod{j}.spine{s}",
                       link_class="interpod")
        for i in range(pods) for j in range(i + 1, pods)
        for s in range(spines))
    return TopologyDescriptor(
        name=f"fat_tree_p{pods}_l{leaves}_s{spines}",
        description=f"{pods} pod(s) of {leaves} leaf x {spines} spine, "
                    f"spines joined across pods on x{interpod_lanes} "
                    f"links",
        link_classes=classes,
        pods=tuple(pod_specs),
        interpod=interpod)


# --------------------------------------------------------------------------
# dragonfly (fully-meshed groups, one global link per group pair)
# --------------------------------------------------------------------------


def dragonfly(groups: int = 3, routers: int = 2,
              hosts_per_router: int = 1, devices_per_router: int = 1,
              global_lanes: int = 8) -> TopologyDescriptor:
    _positive("groups", groups, "dragonfly")
    _positive("routers", routers, "dragonfly")
    classes = {
        "local": LinkClassSpec(),
        "global": LinkClassSpec(lanes=global_lanes),
    }
    pod_specs: List[PodSpec] = []
    for g in range(groups):
        switches = tuple(SwitchSpec(name=f"g{g}.r{r}")
                         for r in range(routers))
        links = tuple(
            SwitchLinkSpec(a=f"g{g}.r{a}", b=f"g{g}.r{b}",
                           link_class="local")
            for a in range(routers) for b in range(a + 1, routers))
        endpoints: List[EndpointSpec] = []
        for r in range(routers):
            for i in range(hosts_per_router):
                endpoints.append(EndpointSpec(
                    name=f"g{g}.h{r}.{i}", switch=f"g{g}.r{r}",
                    role="upstream"))
            for i in range(devices_per_router):
                endpoints.append(EndpointSpec(
                    name=f"g{g}.d{r}.{i}", switch=f"g{g}.r{r}"))
        pod_specs.append(PodSpec(name=f"g{g}", domain=g,
                                 switches=switches, links=links,
                                 endpoints=tuple(endpoints)))
    # One global link per group pair, rotated over routers so ports
    # spread deterministically.
    interpod = tuple(
        SwitchLinkSpec(a=f"g{i}.r{(j - 1) % routers}",
                       b=f"g{j}.r{i % routers}",
                       link_class="global")
        for i in range(groups) for j in range(i + 1, groups))
    return TopologyDescriptor(
        name=f"dragonfly_g{groups}_r{routers}",
        description=f"{groups} fully-meshed group(s) of {routers} "
                    f"router(s), one x{global_lanes} global link per "
                    f"group pair",
        link_classes=classes,
        pods=tuple(pod_specs),
        interpod=interpod)


GENERATORS: Dict[str, Generator] = {
    "star": Generator(
        name="star",
        description="one switch, hosts upstream / devices downstream",
        params={"hosts": GenParam(int, 2, "host endpoints"),
                "devices": GenParam(int, 2, "device endpoints"),
                "device_lanes": GenParam(int, 16,
                                         "device link width (lanes)")},
        build=star),
    "chain": Generator(
        name="chain",
        description="a line of switches; hosts at the head, devices at "
                    "the tail",
        params={"switches": GenParam(int, 3, "switches in the chain"),
                "hosts": GenParam(int, 1, "hosts on the first switch"),
                "devices": GenParam(int, 1,
                                    "devices on the last switch")},
        build=chain),
    "fat_tree": Generator(
        name="fat_tree",
        description="pods of leaf+spine switches joined spine-to-spine "
                    "across domains",
        params={"pods": GenParam(int, 2, "pods (one routing domain "
                                         "each)"),
                "leaves": GenParam(int, 2, "leaf switches per pod"),
                "spines": GenParam(int, 1, "spine switches per pod"),
                "hosts_per_leaf": GenParam(int, 1, "hosts per leaf"),
                "devices_per_leaf": GenParam(int, 1, "devices per leaf"),
                "interpod_lanes": GenParam(int, 8,
                                           "inter-pod link width"),
                "interpod_credits": GenParam(int, 16,
                                             "inter-pod link credits"),
                "device_lanes": GenParam(int, 16, "device link width"),
                "device_credits": GenParam(int, 32,
                                           "device link credits")},
        build=fat_tree),
    "dragonfly": Generator(
        name="dragonfly",
        description="fully-meshed router groups, one global link per "
                    "group pair",
        params={"groups": GenParam(int, 3, "groups (one domain each)"),
                "routers": GenParam(int, 2, "routers per group"),
                "hosts_per_router": GenParam(int, 1,
                                             "hosts per router"),
                "devices_per_router": GenParam(int, 1,
                                               "devices per router"),
                "global_lanes": GenParam(int, 8,
                                         "global link width")},
        build=dragonfly),
}


def generator_names() -> List[str]:
    return sorted(GENERATORS)


def build_generated(name: str, **overrides: Any) -> TopologyDescriptor:
    """Build a descriptor from a registered generator by name."""
    generator = GENERATORS.get(name)
    if generator is None:
        raise DescriptorError(
            f"unknown generator {name!r}; registered: "
            f"{', '.join(generator_names())}")
    return generator(**overrides)
