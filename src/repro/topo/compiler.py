"""The topology mapper: descriptor -> wired fabric, deterministically.

:func:`compile_topology` resolves a validated
:class:`~repro.topo.descriptor.TopologyDescriptor` into a fully wired
:class:`~repro.pcie.topology.Topology` plus a configured
:class:`~repro.pcie.manager.FabricManager` — the same division of
labour the paper describes (the descriptor is the logical shape; the
manager fills every switch's routing table out-of-band).

Wiring order is canonical and matters: link and switch-port
construction starts simulator processes, so the compiler always emits

1. switches        (pods in declaration order, switches in order),
2. intra-pod links (pods in order, links in order),
3. inter-pod links (in order),
4. endpoints       (pods in order, endpoints in order),
5. fabric-manager route fill.

This is exactly the order the hand-wired scenario builders used, which
is what makes the descriptor migrations byte-identical (pinned by
tests): the same descriptor always produces the same process-creation
sequence, the same PBR id assignment, and the same routes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..pcie.manager import FabricManager
from ..pcie.switch import PortRole
from ..pcie.topology import Topology
from ..sim import Environment, Tracer
from .descriptor import TopologyDescriptor

__all__ = ["CompiledFabric", "compile_topology"]

_ROLE_MAP = {"upstream": PortRole.UPSTREAM,
             "downstream": PortRole.DOWNSTREAM}


@dataclasses.dataclass
class CompiledFabric:
    """One compiled descriptor: the wired topology + its manager."""

    descriptor: TopologyDescriptor
    topology: Topology
    manager: FabricManager
    routes_installed: int

    def describe(self) -> str:
        """ASCII inventory: pods, switches, endpoints, link classes."""
        desc = self.descriptor
        stats = desc.stats()
        lines = [f"{desc.name}: {stats['pods']} pod(s), "
                 f"{stats['switches']} switch(es), "
                 f"{stats['endpoints']} endpoint(s), "
                 f"{stats['switch_links']} switch link(s), "
                 f"{self.routes_installed} route(s) installed"]
        if desc.description:
            lines.append(f"  {desc.description}")
        for pod in desc.pods:
            lines.append(f"  pod {pod.name} (domain {pod.domain}):")
            for switch in pod.switches:
                scheduler = switch.scheduler or desc.scheduler
                lines.append(f"    switch {switch.name} "
                             f"[{scheduler}]")
            for link in pod.links:
                suffix = f" [{link.link_class}]" if link.link_class else ""
                lines.append(f"    link {link.a} <-> {link.b}{suffix}")
            for endpoint in pod.endpoints:
                suffix = f" [{endpoint.link_class}]" \
                    if endpoint.link_class else ""
                lines.append(f"    endpoint {endpoint.name} "
                             f"({endpoint.role}) @ "
                             f"{endpoint.switch}{suffix}")
        for link in desc.interpod:
            suffix = f" [{link.link_class}]" if link.link_class else ""
            lines.append(f"  interpod {link.a} <-> {link.b}{suffix}")
        return "\n".join(lines)


def compile_topology(descriptor: TopologyDescriptor, env: Environment,
                     tracer: Optional[Tracer] = None,
                     configure: bool = True) -> CompiledFabric:
    """Deterministically wire one descriptor into ``env``.

    With ``configure=True`` (the default) the fabric manager fills the
    routing tables before returning, so the fabric is ready to carry
    traffic.
    """
    descriptor.validate()
    default_params = descriptor.resolve_link_params(None, None)
    topology = Topology(env, link_params=default_params,
                        scheduler=descriptor.scheduler, tracer=tracer)

    for pod in descriptor.pods:
        for switch in pod.switches:
            topology.add_switch(
                switch.name, domain=pod.domain,
                scheduler=switch.scheduler,
                port_latency_ns=switch.port_latency_ns,
                scheduler_capacity=switch.scheduler_capacity,
                ingress_buffer=switch.ingress_buffer)

    for pod in descriptor.pods:
        for link in pod.links:
            topology.connect_switches(
                link.a, link.b,
                link_params=descriptor.resolve_link_params(
                    link.link_class, pod),
                control_lane=link.control_lane)

    for link in descriptor.interpod:
        topology.connect_switches(
            link.a, link.b,
            link_params=descriptor.resolve_link_params(link.link_class,
                                                       None),
            control_lane=link.control_lane)

    for pod in descriptor.pods:
        for endpoint in pod.endpoints:
            topology.add_endpoint(endpoint.name, domain=pod.domain)
            topology.connect_endpoint(
                endpoint.switch, endpoint.name,
                link_params=descriptor.resolve_link_params(
                    endpoint.link_class, pod),
                role=_ROLE_MAP[endpoint.role],
                control_lane=endpoint.control_lane,
                tag_capacity=endpoint.tag_capacity)

    manager = FabricManager(topology)
    routes = manager.configure() if configure else 0
    return CompiledFabric(descriptor=descriptor, topology=topology,
                          manager=manager, routes_installed=routes)
