"""Declarative topology descriptors: the JSON schema behind `repro topo`.

A :class:`TopologyDescriptor` is the complete, serializable description
of one fabric shape: named link classes (lane/credit regimes), pods
(each a routing domain holding switches, intra-pod switch links and
endpoints), and inter-pod links.  Descriptors are plain JSON on disk —
a new topology is a file or a one-line generator call, not a new
module — and compile deterministically into a wired
:class:`~repro.pcie.topology.Topology` via
:func:`repro.topo.compiler.compile_topology`.

The schema mirrors the tt-metal multi-mesh fabric-init design
(SNIPPETS.md §2): mesh/pod descriptors with dims and channel policies,
resolved onto concrete hardware by a topology mapper.  Per-pod and
per-link link classes let DFabric-style hybrid fabrics — wide intra-pod
CXL links, narrow inter-pod network links with their own credit
budget — fall out of the data rather than the code.

Every ``from_dict`` error carries a JSON-path-like location
(``pods[1].endpoints[0].link_class``) so a broken committed file is
diagnosable from the message alone.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import params

__all__ = [
    "DescriptorError",
    "LinkClassSpec",
    "SwitchSpec",
    "EndpointSpec",
    "SwitchLinkSpec",
    "PodSpec",
    "TopologyDescriptor",
    "load_descriptor",
]

DESCRIPTOR_SCHEMA = 1

_ROLES = ("upstream", "downstream")


class DescriptorError(ValueError):
    """A malformed or inconsistent topology descriptor."""


def _fail(where: str, message: str) -> None:
    raise DescriptorError(f"{where}: {message}")


def _expect_object(raw: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(raw, Mapping):
        _fail(where, f"expected a JSON object, got {type(raw).__name__}")
    return raw


def _expect_str(raw: Mapping[str, Any], key: str, where: str,
                default: Optional[str] = None,
                required: bool = False) -> Optional[str]:
    if key not in raw:
        if required:
            _fail(where, f"missing required key {key!r}")
        return default
    value = raw[key]
    if not isinstance(value, str) or (required and not value):
        _fail(f"{where}.{key}", f"expected a non-empty string, got {value!r}")
    return value


def _expect_num(raw: Mapping[str, Any], key: str, where: str,
                default: float, integer: bool = False) -> Any:
    if key not in raw:
        return default
    value = raw[key]
    ok = isinstance(value, int) and not isinstance(value, bool) if integer \
        else isinstance(value, (int, float)) and not isinstance(value, bool)
    if not ok:
        kind = "an integer" if integer else "a number"
        _fail(f"{where}.{key}", f"expected {kind}, got {value!r}")
    return value if integer else float(value)


def _expect_bool(raw: Mapping[str, Any], key: str, where: str,
                 default: bool) -> bool:
    value = raw.get(key, default)
    if not isinstance(value, bool):
        _fail(f"{where}.{key}", f"expected true/false, got {value!r}")
    return value


def _no_unknown_keys(raw: Mapping[str, Any], known: Tuple[str, ...],
                     where: str) -> None:
    unknown = sorted(set(raw) - set(known))
    if unknown:
        _fail(where, f"unknown key(s) {', '.join(unknown)}; "
                     f"known: {', '.join(known)}")


@dataclasses.dataclass(frozen=True)
class LinkClassSpec:
    """One named link regime: width, rate, flit mode, credit budget."""

    lanes: int = 16
    gt_per_s: float = params.LINK_GT_PER_S
    flit_bytes: int = params.FLIT_BYTES_SMALL
    propagation_ns: float = params.LINK_PROPAGATION_NS
    credits: int = params.DEFAULT_LINK_CREDITS

    def to_link_params(self) -> params.LinkParams:
        return params.LinkParams(
            lanes=self.lanes, gt_per_s=self.gt_per_s,
            flit_bytes=self.flit_bytes,
            propagation_ns=self.propagation_ns, credits=self.credits)

    def to_dict(self) -> Dict[str, Any]:
        return {"lanes": self.lanes, "gt_per_s": self.gt_per_s,
                "flit_bytes": self.flit_bytes,
                "propagation_ns": self.propagation_ns,
                "credits": self.credits}

    @classmethod
    def from_dict(cls, raw: Any, where: str) -> "LinkClassSpec":
        raw = _expect_object(raw, where)
        _no_unknown_keys(raw, ("lanes", "gt_per_s", "flit_bytes",
                               "propagation_ns", "credits"), where)
        spec = cls(
            lanes=_expect_num(raw, "lanes", where, 16, integer=True),
            gt_per_s=_expect_num(raw, "gt_per_s", where,
                                 params.LINK_GT_PER_S),
            flit_bytes=_expect_num(raw, "flit_bytes", where,
                                   params.FLIT_BYTES_SMALL, integer=True),
            propagation_ns=_expect_num(raw, "propagation_ns", where,
                                       params.LINK_PROPAGATION_NS),
            credits=_expect_num(raw, "credits", where,
                                params.DEFAULT_LINK_CREDITS, integer=True))
        if spec.lanes <= 0:
            _fail(f"{where}.lanes", f"must be positive, got {spec.lanes}")
        if spec.credits <= 0:
            _fail(f"{where}.credits",
                  f"must be positive, got {spec.credits}")
        return spec


@dataclasses.dataclass(frozen=True)
class SwitchSpec:
    """One fabric switch; ``scheduler=None`` inherits the descriptor's."""

    name: str
    scheduler: Optional[str] = None
    scheduler_capacity: int = 64
    ingress_buffer: int = 128
    port_latency_ns: float = params.SWITCH_PORT_LATENCY_NS

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name}
        if self.scheduler is not None:
            out["scheduler"] = self.scheduler
        if self.scheduler_capacity != 64:
            out["scheduler_capacity"] = self.scheduler_capacity
        if self.ingress_buffer != 128:
            out["ingress_buffer"] = self.ingress_buffer
        if self.port_latency_ns != params.SWITCH_PORT_LATENCY_NS:
            out["port_latency_ns"] = self.port_latency_ns
        return out

    @classmethod
    def from_dict(cls, raw: Any, where: str) -> "SwitchSpec":
        raw = _expect_object(raw, where)
        _no_unknown_keys(raw, ("name", "scheduler", "scheduler_capacity",
                               "ingress_buffer", "port_latency_ns"), where)
        return cls(
            name=_expect_str(raw, "name", where, required=True),
            scheduler=_expect_str(raw, "scheduler", where),
            scheduler_capacity=_expect_num(raw, "scheduler_capacity",
                                           where, 64, integer=True),
            ingress_buffer=_expect_num(raw, "ingress_buffer", where, 128,
                                       integer=True),
            port_latency_ns=_expect_num(raw, "port_latency_ns", where,
                                        params.SWITCH_PORT_LATENCY_NS))


@dataclasses.dataclass(frozen=True)
class EndpointSpec:
    """One edge device (FHA/FEA) attached to a switch in its pod."""

    name: str
    switch: str
    role: str = "downstream"           # "upstream" (host) or "downstream"
    link_class: Optional[str] = None   # None -> pod/descriptor default
    control_lane: bool = False
    tag_capacity: int = 256

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "switch": self.switch}
        if self.role != "downstream":
            out["role"] = self.role
        if self.link_class is not None:
            out["link_class"] = self.link_class
        if self.control_lane:
            out["control_lane"] = self.control_lane
        if self.tag_capacity != 256:
            out["tag_capacity"] = self.tag_capacity
        return out

    @classmethod
    def from_dict(cls, raw: Any, where: str) -> "EndpointSpec":
        raw = _expect_object(raw, where)
        _no_unknown_keys(raw, ("name", "switch", "role", "link_class",
                               "control_lane", "tag_capacity"), where)
        role = _expect_str(raw, "role", where, default="downstream")
        if role not in _ROLES:
            _fail(f"{where}.role",
                  f"expected one of {', '.join(_ROLES)}, got {role!r}")
        return cls(
            name=_expect_str(raw, "name", where, required=True),
            switch=_expect_str(raw, "switch", where, required=True),
            role=role,
            link_class=_expect_str(raw, "link_class", where),
            control_lane=_expect_bool(raw, "control_lane", where, False),
            tag_capacity=_expect_num(raw, "tag_capacity", where, 256,
                                     integer=True))


@dataclasses.dataclass(frozen=True)
class SwitchLinkSpec:
    """A bidirectional switch-to-switch link (intra- or inter-pod)."""

    a: str
    b: str
    link_class: Optional[str] = None
    control_lane: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"a": self.a, "b": self.b}
        if self.link_class is not None:
            out["link_class"] = self.link_class
        if self.control_lane:
            out["control_lane"] = self.control_lane
        return out

    @classmethod
    def from_dict(cls, raw: Any, where: str) -> "SwitchLinkSpec":
        raw = _expect_object(raw, where)
        _no_unknown_keys(raw, ("a", "b", "link_class", "control_lane"),
                         where)
        return cls(
            a=_expect_str(raw, "a", where, required=True),
            b=_expect_str(raw, "b", where, required=True),
            link_class=_expect_str(raw, "link_class", where),
            control_lane=_expect_bool(raw, "control_lane", where, False))


@dataclasses.dataclass(frozen=True)
class PodSpec:
    """One pod: a routing domain of switches, links and endpoints."""

    name: str
    domain: int
    switches: Tuple[SwitchSpec, ...] = ()
    links: Tuple[SwitchLinkSpec, ...] = ()
    endpoints: Tuple[EndpointSpec, ...] = ()
    link_class: Optional[str] = None   # intra-pod default

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "domain": self.domain,
            "switches": [s.to_dict() for s in self.switches]}
        if self.links:
            out["links"] = [link.to_dict() for link in self.links]
        out["endpoints"] = [e.to_dict() for e in self.endpoints]
        if self.link_class is not None:
            out["link_class"] = self.link_class
        return out

    @classmethod
    def from_dict(cls, raw: Any, where: str) -> "PodSpec":
        raw = _expect_object(raw, where)
        _no_unknown_keys(raw, ("name", "domain", "switches", "links",
                               "endpoints", "link_class"), where)
        switches_raw = raw.get("switches", [])
        if not isinstance(switches_raw, list) or not switches_raw:
            _fail(f"{where}.switches",
                  "expected a non-empty list of switch objects")
        links_raw = raw.get("links", [])
        if not isinstance(links_raw, list):
            _fail(f"{where}.links", "expected a list of link objects")
        endpoints_raw = raw.get("endpoints", [])
        if not isinstance(endpoints_raw, list):
            _fail(f"{where}.endpoints",
                  "expected a list of endpoint objects")
        return cls(
            name=_expect_str(raw, "name", where, required=True),
            domain=_expect_num(raw, "domain", where, 0, integer=True),
            switches=tuple(
                SwitchSpec.from_dict(s, f"{where}.switches[{i}]")
                for i, s in enumerate(switches_raw)),
            links=tuple(
                SwitchLinkSpec.from_dict(link, f"{where}.links[{i}]")
                for i, link in enumerate(links_raw)),
            endpoints=tuple(
                EndpointSpec.from_dict(e, f"{where}.endpoints[{i}]")
                for i, e in enumerate(endpoints_raw)),
            link_class=_expect_str(raw, "link_class", where))


@dataclasses.dataclass(frozen=True)
class TopologyDescriptor:
    """The whole fabric: link classes, pods, and inter-pod links."""

    name: str
    description: str = ""
    scheduler: str = "fair"
    link_classes: Mapping[str, LinkClassSpec] = \
        dataclasses.field(default_factory=dict)
    default_link_class: Optional[str] = None
    pods: Tuple[PodSpec, ...] = ()
    interpod: Tuple[SwitchLinkSpec, ...] = ()

    # -- queries -----------------------------------------------------------

    def switch_names(self) -> List[str]:
        return [s.name for pod in self.pods for s in pod.switches]

    def endpoint_names(self) -> List[str]:
        return [e.name for pod in self.pods for e in pod.endpoints]

    def endpoints_by_role(self, role: str) -> List[EndpointSpec]:
        """Endpoints of one role, in declaration order (pods in order)."""
        if role not in _ROLES:
            raise DescriptorError(
                f"unknown endpoint role {role!r}; "
                f"expected one of {', '.join(_ROLES)}")
        return [e for pod in self.pods for e in pod.endpoints
                if e.role == role]

    def pod_of_endpoint(self, name: str) -> PodSpec:
        for pod in self.pods:
            if any(e.name == name for e in pod.endpoints):
                return pod
        raise DescriptorError(f"no endpoint {name!r} in descriptor "
                              f"{self.name!r}")

    def stats(self) -> Dict[str, int]:
        return {
            "pods": len(self.pods),
            "switches": len(self.switch_names()),
            "endpoints": len(self.endpoint_names()),
            "switch_links": sum(len(pod.links) for pod in self.pods)
            + len(self.interpod),
            "link_classes": len(self.link_classes),
        }

    # -- validation --------------------------------------------------------

    def validate(self) -> "TopologyDescriptor":
        """Full structural check; raises :class:`DescriptorError`."""
        where = f"descriptor {self.name!r}"
        if not self.name:
            _fail("descriptor", "missing a name")
        if not self.pods:
            _fail(where, "needs at least one pod")
        for class_name in self.link_classes:
            if not class_name:
                _fail(f"{where}.link_classes",
                      "link class names must be non-empty")
        self._check_link_class(self.default_link_class,
                               f"{where}.default_link_class")
        seen_pods: Dict[str, str] = {}
        seen_nodes: Dict[str, str] = {}
        switch_pod: Dict[str, PodSpec] = {}
        for p, pod in enumerate(self.pods):
            pwhere = f"{where}.pods[{p}] ({pod.name!r})"
            if pod.name in seen_pods:
                _fail(pwhere, "duplicate pod name")
            seen_pods[pod.name] = pod.name
            if pod.domain < 0:
                _fail(pwhere, f"negative domain {pod.domain}")
            self._check_link_class(pod.link_class, f"{pwhere}.link_class")
            local_switches = set()
            for switch in pod.switches:
                if switch.name in seen_nodes:
                    _fail(pwhere, f"switch name {switch.name!r} already "
                                  f"used by a {seen_nodes[switch.name]}")
                seen_nodes[switch.name] = "switch"
                local_switches.add(switch.name)
                switch_pod[switch.name] = pod
            for i, link in enumerate(pod.links):
                lwhere = f"{pwhere}.links[{i}]"
                for end in (link.a, link.b):
                    if end not in local_switches:
                        _fail(lwhere,
                              f"references switch {end!r} which is not in "
                              f"pod {pod.name!r} (intra-pod links may only "
                              f"join this pod's switches)")
                if link.a == link.b:
                    _fail(lwhere, f"self-link on switch {link.a!r}")
                self._check_link_class(link.link_class,
                                       f"{lwhere}.link_class")
            for i, endpoint in enumerate(pod.endpoints):
                ewhere = f"{pwhere}.endpoints[{i}]"
                if endpoint.name in seen_nodes:
                    _fail(ewhere,
                          f"endpoint name {endpoint.name!r} already used "
                          f"by a {seen_nodes[endpoint.name]}")
                seen_nodes[endpoint.name] = "endpoint"
                if endpoint.switch not in local_switches:
                    _fail(ewhere,
                          f"attached to switch {endpoint.switch!r} which "
                          f"is not in pod {pod.name!r}; this pod has: "
                          f"{', '.join(sorted(local_switches))}")
                self._check_link_class(endpoint.link_class,
                                       f"{ewhere}.link_class")
        for i, link in enumerate(self.interpod):
            lwhere = f"{where}.interpod[{i}]"
            for end in (link.a, link.b):
                if end not in switch_pod:
                    known = ", ".join(sorted(switch_pod)) or "(none)"
                    _fail(lwhere, f"references unknown switch {end!r}; "
                                  f"known switches: {known}")
            if switch_pod[link.a].name == switch_pod[link.b].name:
                _fail(lwhere,
                      f"joins two switches of pod "
                      f"{switch_pod[link.a].name!r}; intra-pod links "
                      f"belong in that pod's 'links' list")
            self._check_link_class(link.link_class, f"{lwhere}.link_class")
        return self

    def _check_link_class(self, name: Optional[str], where: str) -> None:
        if name is not None and name not in self.link_classes:
            known = ", ".join(sorted(self.link_classes)) or "(none)"
            _fail(where, f"unknown link class {name!r}; "
                         f"defined classes: {known}")

    def resolve_link_params(self, explicit: Optional[str],
                            pod: Optional[PodSpec]) \
            -> Optional[params.LinkParams]:
        """Explicit class -> pod default -> descriptor default -> None."""
        name = explicit
        if name is None and pod is not None:
            name = pod.link_class
        if name is None:
            name = self.default_link_class
        if name is None:
            return None
        self._check_link_class(name, f"descriptor {self.name!r}")
        return self.link_classes[name].to_link_params()

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": DESCRIPTOR_SCHEMA,
            "name": self.name,
        }
        if self.description:
            out["description"] = self.description
        out["scheduler"] = self.scheduler
        if self.link_classes:
            out["link_classes"] = {
                name: spec.to_dict()
                for name, spec in sorted(self.link_classes.items())}
        if self.default_link_class is not None:
            out["default_link_class"] = self.default_link_class
        out["pods"] = [pod.to_dict() for pod in self.pods]
        if self.interpod:
            out["interpod"] = [link.to_dict() for link in self.interpod]
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, raw: Any,
                  where: str = "descriptor") -> "TopologyDescriptor":
        raw = _expect_object(raw, where)
        schema = raw.get("schema", DESCRIPTOR_SCHEMA)
        if schema != DESCRIPTOR_SCHEMA:
            _fail(f"{where}.schema",
                  f"unsupported schema {schema!r} (this tool reads "
                  f"{DESCRIPTOR_SCHEMA})")
        _no_unknown_keys(raw, ("schema", "name", "description",
                               "scheduler", "link_classes",
                               "default_link_class", "pods", "interpod"),
                         where)
        classes_raw = raw.get("link_classes", {})
        classes_raw = _expect_object(classes_raw, f"{where}.link_classes")
        pods_raw = raw.get("pods", [])
        if not isinstance(pods_raw, list) or not pods_raw:
            _fail(f"{where}.pods", "expected a non-empty list of pods")
        interpod_raw = raw.get("interpod", [])
        if not isinstance(interpod_raw, list):
            _fail(f"{where}.interpod", "expected a list of link objects")
        descriptor = cls(
            name=_expect_str(raw, "name", where, required=True),
            description=_expect_str(raw, "description", where,
                                    default="") or "",
            scheduler=_expect_str(raw, "scheduler", where,
                                  default="fair") or "fair",
            link_classes={
                name: LinkClassSpec.from_dict(
                    spec, f"{where}.link_classes[{name!r}]")
                for name, spec in classes_raw.items()},
            default_link_class=_expect_str(raw, "default_link_class",
                                           where),
            pods=tuple(PodSpec.from_dict(pod, f"{where}.pods[{i}]")
                       for i, pod in enumerate(pods_raw)),
            interpod=tuple(
                SwitchLinkSpec.from_dict(link, f"{where}.interpod[{i}]")
                for i, link in enumerate(interpod_raw)))
        return descriptor.validate()


def load_descriptor(path: Path) -> TopologyDescriptor:
    """Read + validate one descriptor JSON file."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DescriptorError(
            f"cannot read descriptor {str(path)!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise DescriptorError(
            f"descriptor {str(path)!r} is not valid JSON: {exc}") \
            from None
    return TopologyDescriptor.from_dict(raw, where=str(path))
