"""Synthetic memory-access trace generators.

All generators yield ``(address, is_write)`` tuples suitable for
:meth:`repro.infra.cpu.CpuCore.run` and the Table 2 / ablation
benchmarks.  Addresses are aligned to cachelines.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .. import params
from ..sim import SimRng

__all__ = ["sequential", "uniform", "zipfian", "pointer_chase",
           "phased_working_sets", "read_write_mix"]

LINE = params.CACHELINE_BYTES


def _align(addr: int) -> int:
    return (addr // LINE) * LINE


def sequential(base: int, count: int, stride: int = LINE,
               is_write: bool = False) -> Iterator[Tuple[int, bool]]:
    """A streaming scan: base, base+stride, ..."""
    if stride == 0:
        raise ValueError("stride must be non-zero")
    for i in range(count):
        yield _align(base + i * stride), is_write


def uniform(base: int, span: int, count: int, rng: SimRng,
            write_fraction: float = 0.0) -> Iterator[Tuple[int, bool]]:
    """Uniformly random lines in [base, base+span)."""
    if span < LINE:
        raise ValueError("span must cover at least one line")
    lines = span // LINE
    for _ in range(count):
        line = rng.randint(0, lines - 1)
        yield base + line * LINE, rng.bernoulli(write_fraction)


def zipfian(base: int, span: int, count: int, rng: SimRng,
            alpha: float = 0.99,
            write_fraction: float = 0.0) -> Iterator[Tuple[int, bool]]:
    """Zipf-skewed accesses: a few lines dominate (hot objects)."""
    if span < LINE:
        raise ValueError("span must cover at least one line")
    lines = span // LINE
    for _ in range(count):
        line = rng.zipf_index(lines, alpha)
        yield base + line * LINE, rng.bernoulli(write_fraction)


def pointer_chase(base: int, span: int, count: int, rng: SimRng
                  ) -> Iterator[Tuple[int, bool]]:
    """A dependent-chain walk over a random permutation of lines.

    The worst case for prefetchers: the next address is unknown until
    the current line returns (modelled by the random successor chain).
    """
    lines = span // LINE
    if lines < 2:
        raise ValueError("span must cover at least two lines")
    order = list(range(lines))
    rng.shuffle(order)
    position = 0
    for _ in range(count):
        yield base + order[position] * LINE, False
        position = (position + 1) % lines


def phased_working_sets(base: int, phase_span: int, phases: int,
                        accesses_per_phase: int, rng: SimRng,
                        write_fraction: float = 0.1
                        ) -> Iterator[Tuple[int, bool]]:
    """Phase-structured locality: each phase hammers a different range.

    This is the access pattern that rewards temperature-driven object
    migration: the hot set changes every phase.
    """
    for phase in range(phases):
        phase_base = base + phase * phase_span
        yield from uniform(phase_base, phase_span, accesses_per_phase,
                           rng, write_fraction)


def read_write_mix(addrs: List[int], rng: SimRng,
                   write_fraction: float = 0.5
                   ) -> Iterator[Tuple[int, bool]]:
    """Stamp a write fraction onto a fixed address list."""
    for addr in addrs:
        yield _align(addr), rng.bernoulli(write_fraction)
