"""Synthetic memory-access trace generators.

All generators yield ``(address, is_write)`` tuples suitable for
:meth:`repro.infra.cpu.CpuCore.run` and the Table 2 / ablation
benchmarks.  Addresses are aligned to cachelines.

The heavy generators (``sequential``, ``zipfian``, ``pointer_chase``,
``read_write_mix``) vectorize their arithmetic and random draws with
numpy in cacheline-sized chunks, then stream the tuples out lazily.
The random draws go through :meth:`repro.sim.SimRng.random_block`,
which advances the underlying Mersenne stream exactly as the scalar
calls would — a seeded trace is bit-identical with or without numpy.
``uniform`` stays scalar: ``randint`` consumes a data-dependent number
of raw draws, which no block transplant can reproduce.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .. import params
from ..sim import SimRng

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

__all__ = ["sequential", "uniform", "zipfian", "pointer_chase",
           "phased_working_sets", "read_write_mix", "instrumented"]

LINE = params.CACHELINE_BYTES

#: Tuples generated per vectorized batch.
_CHUNK = 8192


def _align(addr: int) -> int:
    return (addr // LINE) * LINE


def sequential(base: int, count: int, stride: int = LINE,
               is_write: bool = False) -> Iterator[Tuple[int, bool]]:
    """A streaming scan: base, base+stride, ..."""
    if stride == 0:
        raise ValueError("stride must be non-zero")
    if _np is not None and count >= 256:
        start = 0
        while start < count:
            n = min(_CHUNK, count - start)
            steps = _np.arange(start, start + n, dtype=_np.int64)
            addrs = ((base + steps * stride) // LINE) * LINE
            for addr in addrs.tolist():
                yield addr, is_write
            start += n
        return
    for i in range(count):
        yield _align(base + i * stride), is_write


def uniform(base: int, span: int, count: int, rng: SimRng,
            write_fraction: float = 0.0) -> Iterator[Tuple[int, bool]]:
    """Uniformly random lines in [base, base+span)."""
    if span < LINE:
        raise ValueError("span must cover at least one line")
    lines = span // LINE
    for _ in range(count):
        line = rng.randint(0, lines - 1)
        yield base + line * LINE, rng.bernoulli(write_fraction)


def zipfian(base: int, span: int, count: int, rng: SimRng,
            alpha: float = 0.99,
            write_fraction: float = 0.0) -> Iterator[Tuple[int, bool]]:
    """Zipf-skewed accesses: a few lines dominate (hot objects)."""
    if span < LINE:
        raise ValueError("span must cover at least one line")
    lines = span // LINE
    if _np is None:
        for _ in range(count):
            line = rng.zipf_index(lines, alpha)
            yield base + line * LINE, rng.bernoulli(write_fraction)
        return
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {write_fraction}")
    # Mirror SimRng.zipf_index exactly: same alpha clamp, the same
    # `n * u**(1/(1-alpha))` evaluation order, truncation, and top clip
    # — and, for a single line, no zipf draw at all.
    adjusted = 0.9999 if alpha == 1.0 else alpha
    start = 0
    while start < count:
        n = min(_CHUNK, count - start)
        if lines == 1:
            writes = rng.random_block(n) < write_fraction
            for is_write in writes.tolist():
                yield base, is_write
        else:
            block = rng.random_block(2 * n)
            zipf_draws = block[0::2]
            if adjusted < 1.0:
                xs = (lines * zipf_draws **
                      (1.0 / (1.0 - adjusted))).astype(_np.int64)
                _np.minimum(xs, lines - 1, out=xs)
            else:
                xs = _np.zeros(n, dtype=_np.int64)
            addrs = (base + xs * LINE).tolist()
            writes = (block[1::2] < write_fraction).tolist()
            for pair in zip(addrs, writes):
                yield pair
        start += n


def pointer_chase(base: int, span: int, count: int, rng: SimRng
                  ) -> Iterator[Tuple[int, bool]]:
    """A dependent-chain walk over a random permutation of lines.

    The worst case for prefetchers: the next address is unknown until
    the current line returns (modelled by the random successor chain).
    """
    lines = span // LINE
    if lines < 2:
        raise ValueError("span must cover at least two lines")
    order = list(range(lines))
    rng.shuffle(order)
    # One cycle of concrete addresses, replayed modulo its length.
    cycle = [base + line * LINE for line in order]
    for i in range(count):
        yield cycle[i % lines], False


def phased_working_sets(base: int, phase_span: int, phases: int,
                        accesses_per_phase: int, rng: SimRng,
                        write_fraction: float = 0.1
                        ) -> Iterator[Tuple[int, bool]]:
    """Phase-structured locality: each phase hammers a different range.

    This is the access pattern that rewards temperature-driven object
    migration: the hot set changes every phase.
    """
    for phase in range(phases):
        phase_base = base + phase * phase_span
        yield from uniform(phase_base, phase_span, accesses_per_phase,
                           rng, write_fraction)


def instrumented(trace: Iterator[Tuple[int, bool]], env,
                 name: str = "trace") -> Iterator[Tuple[int, bool]]:
    """Pass a trace through telemetry read/write counters.

    Returns the trace unchanged when the environment has no telemetry,
    so generators stay zero-overhead in uninstrumented runs.
    """
    tel = env.telemetry
    if tel is None:
        return trace
    reads = tel.registry.counter(f"workload.{name}.reads")
    writes = tel.registry.counter(f"workload.{name}.writes")

    def _stream() -> Iterator[Tuple[int, bool]]:
        for addr, is_write in trace:
            (writes if is_write else reads).inc(time=env.now)
            yield addr, is_write
    return _stream()


def read_write_mix(addrs: List[int], rng: SimRng,
                   write_fraction: float = 0.5
                   ) -> Iterator[Tuple[int, bool]]:
    """Stamp a write fraction onto a fixed address list."""
    if _np is None or len(addrs) < 64:
        for addr in addrs:
            yield _align(addr), rng.bernoulli(write_fraction)
        return
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {write_fraction}")
    writes = (rng.random_block(len(addrs)) < write_fraction).tolist()
    for addr, is_write in zip(addrs, writes):
        yield _align(addr), is_write
