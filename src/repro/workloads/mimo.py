"""Software massive-MIMO baseband processing (the section 5 case study).

An Agora-style engine: converts time-domain samples from radios into
user bits and back.  The DSP is real (numpy): FFT, least-squares
channel estimation from pilots, zero-forcing equalization, QPSK
(de)modulation, and a rate-1/3 repetition code.  Each kernel also
reports an estimated FLOP count so the simulated deployment can charge
compute time on hosts or FAAs.

``UplinkPipeline.process`` is pure computation (unit-testable end to
end: transmitted bits == decoded bits at reasonable SNR).  The
simulation-facing wrappers in the benchmarks place frames in the
unified heap and run kernels as idempotent tasks / scalable functions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..sim.rng import SimRng

__all__ = ["MimoConfig", "MimoChannel", "UplinkPipeline",
           "DownlinkPipeline", "downlink_received_bits",
           "DOWNLINK_KERNEL_ORDER",
           "qpsk_modulate", "qpsk_demodulate",
           "repetition_encode", "repetition_decode",
           "KERNEL_ORDER", "flops_to_ns", "record_kernel_flops"]

#: kernels in uplink order (the paper's figure: FFT -> equalization ->
#: demodulation -> decoding)
KERNEL_ORDER = ("fft", "channel_estimate", "equalize", "demodulate",
                "decode")

#: effective compute throughput assumed for a software kernel,
#: in floating-point ops per nanosecond (one AVX-ish core ~8 GFLOP/s).
FLOPS_PER_NS = 8.0


def flops_to_ns(flops: float, speedup: float = 1.0) -> float:
    """Convert a kernel's FLOP estimate to modelled compute time."""
    return flops / (FLOPS_PER_NS * speedup)


def record_kernel_flops(registry, flops: Dict[str, float],
                        prefix: str = "workload.mimo",
                        time: float = None) -> None:
    """Fold one frame's per-kernel FLOP estimates into telemetry.

    The pipelines themselves are pure computation with no simulation
    environment, so the simulation-facing caller (which knows both the
    registry and the sim time the frame completed) records the counts.
    """
    for kernel, count in flops.items():
        registry.histogram(f"{prefix}.{kernel}.flops").observe(
            count, time=time)


@dataclasses.dataclass(frozen=True)
class MimoConfig:
    """Geometry of one cell."""

    antennas: int = 16
    users: int = 4
    subcarriers: int = 64
    data_symbols: int = 4
    snr_db: float = 25.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.antennas < self.users:
            raise ValueError("need at least as many antennas as users")
        if self.subcarriers & (self.subcarriers - 1):
            raise ValueError("subcarriers must be a power of two")

    @property
    def bits_per_frame(self) -> int:
        # QPSK: 2 bits per symbol per user per subcarrier.
        return 2 * self.users * self.subcarriers * self.data_symbols

    @property
    def frame_bytes(self) -> int:
        """Complex64 time-domain samples for one frame (all symbols)."""
        symbols = self.data_symbols + self.users  # + pilot block
        return self.antennas * self.subcarriers * symbols * 8


# --------------------------------------------------------------------------
# Modulation and coding
# --------------------------------------------------------------------------

_QPSK = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2)


def qpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Map bit pairs to unit-power QPSK symbols."""
    if bits.size % 2:
        raise ValueError("bit count must be even for QPSK")
    pairs = bits.reshape(-1, 2)
    index = pairs[:, 0] * 2 + pairs[:, 1]
    return _QPSK[index]


def qpsk_demodulate(symbols: np.ndarray) -> np.ndarray:
    """Hard-decision QPSK demap."""
    bits = np.empty(symbols.size * 2, dtype=np.int8)
    bits[0::2] = (symbols.real < 0).astype(np.int8)
    bits[1::2] = (symbols.imag < 0).astype(np.int8)
    return bits


def repetition_encode(bits: np.ndarray, rate: int = 3) -> np.ndarray:
    """Rate-1/``rate`` repetition code."""
    return np.repeat(bits, rate)


def repetition_decode(coded: np.ndarray, rate: int = 3) -> np.ndarray:
    """Majority-vote decode."""
    if coded.size % rate:
        raise ValueError("coded length not a multiple of the rate")
    votes = coded.reshape(-1, rate).sum(axis=1)
    return (votes * 2 > rate).astype(np.int8)


# --------------------------------------------------------------------------
# The channel
# --------------------------------------------------------------------------

class MimoChannel:
    """A block-fading frequency-selective channel with AWGN."""

    def __init__(self, config: MimoConfig) -> None:
        self.config = config
        # Seeded through the repro.sim.rng stream (fcc-check FCC001).
        # SimRng(s).numpy_generator() == np.random.default_rng(s), so
        # channel realizations are bit-identical to the pre-migration
        # ones and every pinned expectation stays valid.
        rng = SimRng(config.seed).numpy_generator()
        shape = (config.subcarriers, config.antennas, config.users)
        self.h = (rng.standard_normal(shape)
                  + 1j * rng.standard_normal(shape)) / np.sqrt(2)
        self._rng = rng

    def transmit(self, user_symbols: np.ndarray) -> np.ndarray:
        """Propagate (subcarriers, users, symbols) -> antenna samples."""
        config = self.config
        received = np.einsum("sau,sut->sat", self.h, user_symbols)
        noise_power = 10 ** (-config.snr_db / 10)
        noise = (self._rng.standard_normal(received.shape)
                 + 1j * self._rng.standard_normal(received.shape))
        received = received + np.sqrt(noise_power / 2) * noise
        return received


# --------------------------------------------------------------------------
# The uplink pipeline
# --------------------------------------------------------------------------

class UplinkPipeline:
    """FFT -> channel estimation -> ZF equalization -> demod -> decode.

    Every stage returns ``(result, flops)``; ``process`` runs them all
    and collects per-kernel FLOP estimates for the deployment model.
    """

    def __init__(self, config: MimoConfig) -> None:
        self.config = config
        # Time-orthogonal pilots: pilot symbol k carries only user k,
        # with a known per-subcarrier QPSK value.
        rng = SimRng(config.seed + 1).numpy_generator()
        pilot_bits = rng.integers(
            0, 2, size=(2 * config.users * config.subcarriers))
        self.pilot = qpsk_modulate(pilot_bits.astype(np.int8)).reshape(
            config.subcarriers, config.users)

    # -- stages ------------------------------------------------------------

    def fft(self, time_samples: np.ndarray) -> Tuple[np.ndarray, float]:
        """Time -> frequency per antenna per symbol."""
        config = self.config
        freq = np.fft.fft(time_samples, axis=0) / config.subcarriers
        n = config.subcarriers
        count = time_samples.size // n
        flops = 5.0 * n * np.log2(n) * count
        return freq, flops

    def channel_estimate(self, rx_pilot_block: np.ndarray
                         ) -> Tuple[np.ndarray, float]:
        """Per-user LS estimate from the time-orthogonal pilot block.

        ``rx_pilot_block`` has shape (subcarriers, antennas, users):
        pilot symbol k observed only user k, so column k of H is
        Y[:, :, k] / pilot[:, k].
        """
        config = self.config
        h_hat = rx_pilot_block / self.pilot[:, None, :]
        flops = 8.0 * config.subcarriers * config.antennas * config.users
        return h_hat, flops

    def equalize(self, freq_data: np.ndarray, h: np.ndarray
                 ) -> Tuple[np.ndarray, float]:
        """Zero-forcing: x_hat = pinv(H) y per subcarrier."""
        config = self.config
        out = np.empty((config.subcarriers, config.users,
                        freq_data.shape[2]), dtype=complex)
        for s in range(config.subcarriers):
            w = np.linalg.pinv(h[s])
            out[s] = w @ freq_data[s]
        a, u = config.antennas, config.users
        flops = config.subcarriers * (8.0 * a * u * u + 2 * u ** 3
                                      + 8.0 * u * a * freq_data.shape[2])
        return out, flops

    def demodulate(self, symbols: np.ndarray) -> Tuple[np.ndarray, float]:
        bits = qpsk_demodulate(symbols.transpose(1, 2, 0).ravel())
        return bits, 2.0 * symbols.size

    def decode(self, coded_bits: np.ndarray,
               rate: int = 3) -> Tuple[np.ndarray, float]:
        usable = (coded_bits.size // rate) * rate
        decoded = repetition_decode(coded_bits[:usable], rate)
        return decoded, float(coded_bits.size)

    # -- end to end ---------------------------------------------------------------

    def process(self, time_samples: np.ndarray
                ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Run the whole uplink; returns (bits, flops-per-kernel).

        ``time_samples`` has shape (subcarriers, antennas, symbols)
        with the pilot block in the first ``users`` symbols.
        """
        flops: Dict[str, float] = {}
        users = self.config.users
        freq, flops["fft"] = self.fft(time_samples)
        h_hat, flops["channel_estimate"] = \
            self.channel_estimate(freq[:, :, :users])
        equalized, flops["equalize"] = self.equalize(freq[:, :, users:],
                                                     h_hat)
        coded_bits, flops["demodulate"] = self.demodulate(equalized)
        bits, flops["decode"] = self.decode(coded_bits)
        return bits, flops


def make_frame(config: MimoConfig, channel: MimoChannel,
               payload_bits: np.ndarray, pilot: np.ndarray
               ) -> np.ndarray:
    """Build the received time-domain frame for ``payload_bits``.

    Returns (subcarriers, antennas, 1 + data_symbols) time samples.
    """
    config_symbols = config.data_symbols
    coded = repetition_encode(payload_bits)
    # Pad to fill the frame.
    capacity = 2 * config.users * config.subcarriers * config_symbols
    if coded.size > capacity:
        raise ValueError("payload too large for the frame")
    padded = np.zeros(capacity, dtype=np.int8)
    padded[:coded.size] = coded
    symbols = qpsk_modulate(padded).reshape(
        config.users, config_symbols, config.subcarriers)
    # (subcarriers, users, symbols) with the pilot block in front:
    # pilot symbol k carries only user k.
    data = symbols.transpose(2, 0, 1)
    pilot_block = np.zeros((config.subcarriers, config.users,
                            config.users), dtype=complex)
    for k in range(config.users):
        pilot_block[:, k, k] = pilot[:, k]
    tx = np.concatenate([pilot_block, data], axis=2)
    received_freq = channel.transmit(tx)
    # Back to time domain (the radios hand us time samples).
    time_samples = np.fft.ifft(received_freq, axis=0) \
        * config.subcarriers
    return time_samples


# --------------------------------------------------------------------------
# The downlink pipeline
# --------------------------------------------------------------------------

class DownlinkPipeline:
    """encode -> modulate -> ZF precode -> IFFT (bits to radio samples).

    The reverse direction the paper's case study mentions ("multiple
    uplink/downlink handling pipelines").  With TDD reciprocity the
    downlink channel is the transpose of the uplink one; zero-forcing
    precoding pre-cancels it so each user receives its own symbol
    stream directly.
    """

    def __init__(self, config: MimoConfig) -> None:
        self.config = config

    def encode(self, bits: np.ndarray,
               rate: int = 3) -> Tuple[np.ndarray, float]:
        return repetition_encode(bits, rate), float(bits.size * rate)

    def modulate(self, coded_bits: np.ndarray
                 ) -> Tuple[np.ndarray, float]:
        """Pack coded bits into (subcarriers, users, symbols)."""
        config = self.config
        capacity = 2 * config.users * config.subcarriers \
            * config.data_symbols
        if coded_bits.size > capacity:
            raise ValueError("too many bits for the frame")
        padded = np.zeros(capacity, dtype=np.int8)
        padded[:coded_bits.size] = coded_bits
        symbols = qpsk_modulate(padded).reshape(
            config.users, config.data_symbols, config.subcarriers)
        return symbols.transpose(2, 0, 1), 2.0 * capacity

    def precode(self, user_symbols: np.ndarray, h_uplink: np.ndarray
                ) -> Tuple[np.ndarray, float]:
        """Zero-forcing: antennas transmit x = pinv(H^T) s."""
        config = self.config
        out = np.empty((config.subcarriers, config.antennas,
                        user_symbols.shape[2]), dtype=complex)
        for s in range(config.subcarriers):
            w = np.linalg.pinv(h_uplink[s].T)
            out[s] = w @ user_symbols[s]
        a, u = config.antennas, config.users
        flops = config.subcarriers * (8.0 * a * u * u + 2 * u ** 3
                                      + 8.0 * a * u
                                      * user_symbols.shape[2])
        return out, flops

    def ifft(self, freq_samples: np.ndarray) -> Tuple[np.ndarray, float]:
        config = self.config
        time_samples = np.fft.ifft(freq_samples, axis=0) \
            * config.subcarriers
        n = config.subcarriers
        count = freq_samples.size // n
        return time_samples, 5.0 * n * np.log2(n) * count

    def process(self, bits: np.ndarray
                ) -> Tuple[np.ndarray, Dict[str, float]]:
        """bits -> antenna time samples; returns (samples, flops)."""
        flops: Dict[str, float] = {}
        coded, flops["encode"] = self.encode(bits)
        symbols, flops["modulate"] = self.modulate(coded)
        # Reciprocity: reuse the uplink channel estimate.  Here we use
        # the true channel (a calibrated system); estimation error is
        # an uplink concern tested there.
        channel = MimoChannel(self.config)
        precoded, flops["precode"] = self.precode(symbols, channel.h)
        samples, flops["ifft"] = self.ifft(precoded)
        return samples, flops


def downlink_received_bits(config: MimoConfig,
                           antenna_time_samples: np.ndarray,
                           snr_db: float = None) -> np.ndarray:
    """What each user's receiver demodulates (reciprocal channel)."""
    channel = MimoChannel(config)
    freq = np.fft.fft(antenna_time_samples, axis=0) / config.subcarriers
    # y[s, u, t] = sum_a H[s, a, u] * x[s, a, t]  (reciprocity: H^T)
    received = np.einsum("sau,sat->sut", channel.h, freq)
    if snr_db is not None:
        rng = SimRng(config.seed + 7).numpy_generator()
        noise_power = 10 ** (-snr_db / 10)
        received = received + np.sqrt(noise_power / 2) * (
            rng.standard_normal(received.shape)
            + 1j * rng.standard_normal(received.shape))
    bits = qpsk_demodulate(received.transpose(1, 2, 0).ravel())
    return bits


DOWNLINK_KERNEL_ORDER = ("encode", "modulate", "precode", "ifft")
