"""A key-value store over the unified heap.

A small but real application of the DP#2 API: values live as heap
objects behind smart pointers, a hash index maps keys to them, and all
data-path costs (index probes, value reads/writes) are charged through
the host memory hierarchy.  Used by examples and the DP#2 ablation.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..core.heap import SmartPointer, UnifiedHeap
from ..sim import Environment, Event

__all__ = ["KvStore", "KvStats"]


class KvStats:
    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KvStore:
    """``put``/``get``/``delete`` over heap-resident values."""

    def __init__(self, env: Environment, heap: UnifiedHeap,
                 value_bytes: int = 1024) -> None:
        if value_bytes <= 0:
            raise ValueError("value_bytes must be positive")
        self.env = env
        self.heap = heap
        self.value_bytes = value_bytes
        self._index: Dict[str, SmartPointer] = {}
        self.stats = KvStats()
        tel = env.telemetry
        if tel is not None:
            registry = tel.registry
            self._m_puts = registry.counter("workload.kv.puts")
            self._m_gets = registry.counter("workload.kv.gets")
            self._m_hits = registry.counter("workload.kv.hits")
            self._m_misses = registry.counter("workload.kv.misses")
            self._h_value_bytes = registry.histogram("workload.kv.value_bytes")
        else:
            self._m_puts = None

    def __len__(self) -> int:
        return len(self._index)

    def put(self, key: str,
            value_bytes: Optional[int] = None
            ) -> Generator[Event, None, SmartPointer]:
        """Insert or overwrite; charges the full value write."""
        size = value_bytes or self.value_bytes
        pointer = self._index.get(key)
        if pointer is not None and pointer.size != size:
            self.heap.free(pointer)
            pointer = None
        if pointer is None:
            pointer = self.heap.allocate(size)
            self._index[key] = pointer
        offset = 0
        while offset < size:
            chunk = min(4096, size - offset)
            yield from pointer.write(offset, chunk)
            offset += chunk
        self.stats.puts += 1
        if self._m_puts is not None:
            now = self.env.now
            self._m_puts.inc(time=now)
            self._h_value_bytes.observe(size, time=now)
        return pointer

    def get(self, key: str) -> Generator[Event, None, bool]:
        """Read the whole value; returns False on miss."""
        self.stats.gets += 1
        if self._m_puts is not None:
            self._m_gets.inc(time=self.env.now)
        pointer = self._index.get(key)
        if pointer is None:
            self.stats.misses += 1
            if self._m_puts is not None:
                self._m_misses.inc(time=self.env.now)
            return False
        offset = 0
        while offset < pointer.size:
            chunk = min(4096, pointer.size - offset)
            yield from pointer.read(offset, chunk)
            offset += chunk
        self.stats.hits += 1
        if self._m_puts is not None:
            self._m_hits.inc(time=self.env.now)
        return True

    def delete(self, key: str) -> bool:
        pointer = self._index.pop(key, None)
        if pointer is None:
            return False
        self.heap.free(pointer)
        return True

    def pointer_of(self, key: str) -> Optional[SmartPointer]:
        return self._index.get(key)
