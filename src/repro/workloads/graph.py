"""A graph-analytics kernel over fabric-attached memory.

Stores a CSR graph in heap objects (offsets + edges + per-vertex data)
and runs BFS, charging every index/edge/vertex touch through the host
memory hierarchy.  Pointer-heavy traversal is the canonical
latency-bound workload for far memory — the access pattern caching and
prefetching help least, which is why the paper's DP#1/DP#2 machinery
matters for it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

from ..core.heap import SmartPointer, UnifiedHeap
from ..sim import Environment, Event, SimRng
from ..telemetry import span

__all__ = ["CsrGraph", "random_graph"]

INDEX_BYTES = 8   # one 64-bit index per entry


def random_graph(vertices: int, avg_degree: float,
                 rng: SimRng) -> List[List[int]]:
    """Uniform random adjacency lists (no self loops, may repeat)."""
    if vertices < 2:
        raise ValueError("need at least two vertices")
    adjacency: List[List[int]] = []
    for vertex in range(vertices):
        degree = max(0, int(rng.uniform(0, 2 * avg_degree)))
        neighbors = []
        for _ in range(degree):
            other = rng.randint(0, vertices - 2)
            if other >= vertex:
                other += 1
            neighbors.append(other)
        adjacency.append(neighbors)
    return adjacency


class CsrGraph:
    """Compressed-sparse-row graph resident in a unified heap."""

    def __init__(self, env: Environment, heap: UnifiedHeap,
                 adjacency: List[List[int]],
                 prefer_tier: Optional[str] = None) -> None:
        self.env = env
        self.heap = heap
        self.num_vertices = len(adjacency)
        self.num_edges = sum(len(n) for n in adjacency)
        self._offsets: List[int] = [0]
        self._edges: List[int] = []
        for neighbors in adjacency:
            self._edges.extend(neighbors)
            self._offsets.append(len(self._edges))
        self.offsets_obj = heap.allocate(
            max(64, len(self._offsets) * INDEX_BYTES),
            prefer_tier=prefer_tier)
        self.edges_obj = heap.allocate(
            max(64, max(1, len(self._edges)) * INDEX_BYTES),
            prefer_tier=prefer_tier)
        self.vertex_data_obj = heap.allocate(
            max(64, self.num_vertices * 64), prefer_tier=prefer_tier)
        tel = env.telemetry
        self._m_vertices = (tel.registry.counter("workload.graph.vertices")
                            if tel is not None else None)

    # -- charged accessors ---------------------------------------------------

    def _read_offset(self, vertex: int) -> Generator[Event, None, Tuple[int, int]]:
        yield from self.offsets_obj.read(vertex * INDEX_BYTES,
                                         2 * INDEX_BYTES)
        return self._offsets[vertex], self._offsets[vertex + 1]

    def _read_edges(self, start: int,
                    end: int) -> Generator[Event, None, List[int]]:
        if end > start:
            yield from self.edges_obj.read(start * INDEX_BYTES,
                                           (end - start) * INDEX_BYTES)
        return self._edges[start:end]

    def _touch_vertex(self, vertex: int) -> Generator[Event, None, None]:
        yield from self.vertex_data_obj.read(vertex * 64, 64)

    # -- algorithms ---------------------------------------------------------------

    def bfs(self, source: int
            ) -> Generator[Event, None, Dict[int, int]]:
        """Breadth-first search; returns vertex -> depth."""
        if not 0 <= source < self.num_vertices:
            raise ValueError(f"source {source} out of range")
        depth = {source: 0}
        frontier = deque([source])
        with span(self.env, "workload.graph.bfs", track="workload",
                  source=source):
            while frontier:
                vertex = frontier.popleft()
                yield from self._touch_vertex(vertex)
                if self._m_vertices is not None:
                    self._m_vertices.inc(time=self.env.now)
                start, end = yield from self._read_offset(vertex)
                neighbors = yield from self._read_edges(start, end)
                for neighbor in neighbors:
                    if neighbor not in depth:
                        depth[neighbor] = depth[vertex] + 1
                        frontier.append(neighbor)
        return depth

    def degree_sum(self) -> Generator[Event, None, int]:
        """Sequential sweep over the offsets array (bandwidth-bound)."""
        total = 0
        for vertex in range(self.num_vertices):
            start, end = yield from self._read_offset(vertex)
            total += end - start
        return total

    def free(self) -> None:
        self.heap.free(self.offsets_obj)
        self.heap.free(self.edges_obj)
        self.heap.free(self.vertex_data_obj)
