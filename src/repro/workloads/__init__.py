"""Workloads: trace generators and the applications driving evaluation.

* :mod:`repro.workloads.traces` — synthetic access patterns;
* :mod:`repro.workloads.kvstore` — a key-value store over the unified
  heap;
* :mod:`repro.workloads.graph` — CSR graph traversal over fabric
  memory;
* :mod:`repro.workloads.mimo` — the section 5 case study: software
  massive-MIMO baseband processing (Agora-style).
"""

from . import traces
from .graph import CsrGraph, random_graph
from .kvstore import KvStats, KvStore
from .mimo import (
    DOWNLINK_KERNEL_ORDER,
    DownlinkPipeline,
    downlink_received_bits,
    KERNEL_ORDER,
    MimoChannel,
    MimoConfig,
    UplinkPipeline,
    flops_to_ns,
    qpsk_demodulate,
    qpsk_modulate,
    repetition_decode,
    repetition_encode,
)

__all__ = [
    "traces",
    "CsrGraph",
    "random_graph",
    "KvStats",
    "KvStore",
    "KERNEL_ORDER",
    "DOWNLINK_KERNEL_ORDER",
    "DownlinkPipeline",
    "downlink_received_bits",
    "MimoChannel",
    "MimoConfig",
    "UplinkPipeline",
    "flops_to_ns",
    "qpsk_demodulate",
    "qpsk_modulate",
    "repetition_decode",
    "repetition_encode",
]
