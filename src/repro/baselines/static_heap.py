"""Static-placement far-memory baseline (vs. the DP#2 unified heap).

Stands in for an AIFM-style object heap that places objects once (by a
fixed policy) and never migrates them, and is oblivious to memory-node
types.  Built on the same allocator substrate as the unified heap so
the ablation isolates exactly the profiling + migration machinery.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.heap import MemoryBin, SmartPointer, UnifiedHeap
from ..sim import Environment

__all__ = ["StaticPlacementHeap"]


class StaticPlacementHeap(UnifiedHeap):
    """A unified heap with migration disabled and naive placement.

    Placement policies:

    * ``"first"`` — always fill the first bin added, spill in order
      (what a naive malloc-over-HDM layout does);
    * ``"round-robin"`` — stripe objects across all bins, ignoring
      their temperature and the node types entirely.
    """

    def __init__(self, env: Environment, host, engine,
                 placement: str = "first") -> None:
        if placement not in ("first", "round-robin"):
            raise ValueError(f"unknown placement {placement!r}")
        super().__init__(env, host, engine)
        self.placement = placement
        self._next_bin = 0

    def bins_by_preference(self, prefer_tier: Optional[str]
                           ) -> List[MemoryBin]:
        ordered = list(self.bins.values())
        if self.placement == "round-robin" and ordered:
            rotation = self._next_bin % len(ordered)
            self._next_bin += 1
            ordered = ordered[rotation:] + ordered[:rotation]
        return ordered

    def migrate(self, oid: int, target_bin: MemoryBin):
        """Static placement: objects never move."""
        yield self.env.timeout(0)
        return False
