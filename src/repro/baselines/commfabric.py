"""Communication-fabric baseline: the asynchronous DMA world.

Models the pre-CXL path the paper contrasts against in section 3
(difference #1: submission/completion instead of load/store; and
difference #4: launching a kernel on an Ethernet-attached accelerator
needs a communication channel, a networking stack, and explicit
context setup).

The costs are parameterized from :mod:`repro.params`: a per-message
network-stack tax, DMA descriptor setup, wire transfer at NIC
bandwidth, and a completion interrupt.
"""

from __future__ import annotations

from typing import Generator, Optional

from .. import params
from ..sim import Environment, Event, Resource

__all__ = ["CommFabricChannel"]


class CommFabricChannel:
    """One host<->device channel over a commodity NIC."""

    def __init__(self, env: Environment,
                 bandwidth_bytes_per_ns: float = 12.5,  # 100 Gb Ethernet
                 stack_ns: float = params.NIC_STACK_NS,
                 dma_setup_ns: float = params.DMA_SETUP_NS,
                 interrupt_ns: float = params.DMA_INTERRUPT_NS,
                 name: str = "nic") -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth_bytes_per_ns = bandwidth_bytes_per_ns
        self.stack_ns = stack_ns
        self.dma_setup_ns = dma_setup_ns
        self.interrupt_ns = interrupt_ns
        self._wire = Resource(env)
        self.messages = 0
        self.bytes_transferred = 0

    def transfer(self, nbytes: int,
                 device_service_ns: float = 0.0
                 ) -> Generator[Event, None, float]:
        """One submission/completion round trip moving ``nbytes``.

        Charges: host stack -> DMA setup -> wire -> device service ->
        completion interrupt -> host stack (receive side).  Returns the
        total latency.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        start = self.env.now
        yield self.env.timeout(self.stack_ns)
        yield self.env.timeout(self.dma_setup_ns)
        with self._wire.request() as grant:
            yield grant
            yield self.env.timeout(nbytes / self.bandwidth_bytes_per_ns)
        if device_service_ns > 0:
            yield self.env.timeout(device_service_ns)
        yield self.env.timeout(self.interrupt_ns)
        self.messages += 1
        self.bytes_transferred += nbytes
        return self.env.now - start

    def remote_read(self, nbytes: int = params.CACHELINE_BYTES,
                    device_service_ns: float = params.FAM_ACCESS_NS
                    ) -> Generator[Event, None, float]:
        """RPC-style remote memory read (request out, data back)."""
        latency = yield from self.transfer(nbytes, device_service_ns)
        return latency

    def kernel_launch(self, context_bytes: int = 4096,
                      kernel_ns: float = 0.0
                      ) -> Generator[Event, None, float]:
        """Launch a kernel on an Ethernet-attached accelerator.

        Ships the execution context (registers, push/pull buffers) over
        the NIC, runs the kernel, and takes a completion interrupt —
        the flow the paper says memory fabrics collapse into a handful
        of loads/stores.
        """
        latency = yield from self.transfer(context_bytes, kernel_ns)
        return latency
