"""Baselines the paper's proposals are measured against.

* :mod:`repro.baselines.commfabric` — the communication-fabric
  (Ethernet/RDMA) submission-completion world of section 3;
* :class:`StaticPlacementHeap` — far-memory object placement without
  node-type awareness or migration (vs. DP#2);
* vanilla CFC (exponential ramp-up credits + credit-agnostic FIFO
  scheduling) is expressed through configuration:
  ``scheduler="fifo"`` switches plus
  :class:`repro.pcie.credits.RampUpPolicy` credit domains;
* full-restart recovery (vs. DP#3) is
  ``TaskRuntime(recovery="restart")``.
"""

from .commfabric import CommFabricChannel
from .static_heap import StaticPlacementHeap

__all__ = ["CommFabricChannel", "StaticPlacementHeap"]
