"""The telemetry hub: span tracing, instant events, probe registry.

One :class:`Telemetry` instance rides on one simulation environment
(``Environment(telemetry=...)``) and collects three kinds of signal:

* **metrics** — the :class:`~repro.telemetry.metrics.MetricRegistry`
  at :attr:`Telemetry.registry`;
* **events** — spans (``with span(env, "cfc.rebalance"): ...``) and
  instants, timestamped with sim time and assigned to per-component
  *tracks* that become Perfetto threads;
* **probes** — named zero-argument callables sampled periodically by
  :class:`~repro.telemetry.sampler.TimelineSampler` into gauges and
  Chrome counter events.

The off path is the whole design: ``span(env, ...)`` on a plain
environment returns a shared no-op context manager after a single
``is None`` test, and instrumented components cache ``env.telemetry``
once at construction so their hot paths cost one ``is None`` branch —
the same pattern as ``Environment(sanitize=True)``.

Event storage is a flat list of tuples (no dict per event); the
Chrome/Perfetto JSON is built once, at export time, by
:mod:`repro.telemetry.perfetto`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import MetricRegistry

__all__ = ["Telemetry", "span"]

#: Event tuples appended to ``Telemetry.events``:
#:   ("B", ts, tid, name, args-or-None)   span begin
#:   ("E", ts, tid)                       span end
#:   ("i", ts, tid, name, args-or-None)   instant
#:   ("C", ts, name, value)               counter sample (sampler)
_BEGIN, _END, _INSTANT, _COUNTER = "B", "E", "i", "C"

#: Track used when a span/instant names no component.
DEFAULT_TRACK = "main"


class _NullSpan:
    """Shared no-op context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records B on enter and E on exit at sim time."""

    __slots__ = ("_telemetry", "_name", "_tid", "_args")

    def __init__(self, telemetry: "Telemetry", name: str,
                 tid: int, args: Optional[Dict[str, Any]]) -> None:
        self._telemetry = telemetry
        self._name = name
        self._tid = tid
        self._args = args

    def __enter__(self) -> "_Span":
        tel = self._telemetry
        tel.events.append((_BEGIN, tel._env.now, self._tid,
                           self._name, self._args))
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        tel = self._telemetry
        tel.events.append((_END, tel._env.now, self._tid))
        return False


class Telemetry:
    """Metrics + events + probes for one environment.

    Construct one and hand it to ``Environment(telemetry=...)`` (or
    pass ``telemetry=True`` to get a default instance); read it back
    as ``env.telemetry``.  A Telemetry binds to exactly one
    environment — timestamps come from that environment's clock.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None,
                 causal=None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        #: Optional :class:`~repro.telemetry.causal.CausalRecorder`.
        #: Components cache it at construction next to the hub itself;
        #: None (the default) keeps causal hooks at one is-None branch.
        self.causal = causal
        self.events: List[Tuple] = []
        self._env = None
        self._tracks: Dict[str, int] = {}
        #: (metric name, track name, callable) in registration order.
        self._probes: List[Tuple[str, str, Callable[[], float]]] = []
        #: Ticker callables ``fn(now)`` invoked by the TimelineSampler
        #: after each probe sweep — the hook the streaming health
        #: monitor hangs its window closing on.  Tickers piggyback on
        #: the sampler's existing daemon process, so registering one
        #: adds zero kernel events: model schedules stay bit-identical
        #: with or without any ticker attached.
        self._tickers: List[Callable[[float], None]] = []

    # -- wiring ----------------------------------------------------------

    def bind(self, env) -> None:
        """Attach to ``env`` (done by ``Environment.__init__``)."""
        if self._env is not None and self._env is not env:
            raise ValueError(
                "Telemetry is already bound to another Environment; "
                "build one Telemetry per environment")
        self._env = env

    @property
    def env(self):
        return self._env

    # -- tracks ----------------------------------------------------------

    def track(self, name: str) -> int:
        """The stable thread id for component track ``name``."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[name] = tid
        return tid

    def track_names(self) -> Dict[str, int]:
        return dict(self._tracks)

    # -- events ----------------------------------------------------------

    def span(self, name: str, track: Optional[str] = None,
             **args: Any) -> _Span:
        """A context manager recording a duration event on ``track``.

        The track defaults to the dotted prefix of ``name`` (the
        component), so ``cfc.rebalance`` lands on track ``cfc``.
        """
        if track is None:
            head, _, tail = name.rpartition(".")
            track = head or DEFAULT_TRACK
        return _Span(self, name, self.track(track), args or None)

    def instant(self, name: str, track: Optional[str] = None,
                ts: Optional[float] = None, **args: Any) -> None:
        """Record a zero-duration event at ``ts`` (default: now)."""
        if track is None:
            head, _, tail = name.rpartition(".")
            track = head or DEFAULT_TRACK
        if ts is None:
            ts = self._env.now
        self.events.append((_INSTANT, ts, self.track(track), name,
                            args or None))

    def counter_sample(self, name: str, ts: float, value: float) -> None:
        """Record one point of a counter timeline (the sampler path)."""
        self.events.append((_COUNTER, ts, name, value))

    # -- probes ----------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float],
                  track: Optional[str] = None) -> None:
        """Register a gauge probe the TimelineSampler will poll.

        ``fn`` must be a cheap, side-effect-free read of live state
        (a queue length, a pool level).  ``name`` doubles as the gauge
        metric name and the Perfetto counter-track name.
        """
        if track is None:
            head, _, tail = name.rpartition(".")
            track = head or DEFAULT_TRACK
        if any(name == existing for existing, _t, _f in self._probes):
            raise ValueError(
                f"probe {name!r} already registered; registered "
                f"probes: "
                f"{', '.join(sorted(n for n, _t, _f in self._probes))}")
        self._probes.append((name, track, fn))
        self.registry.gauge(name)

    @property
    def probes(self) -> List[Tuple[str, str, Callable[[], float]]]:
        return list(self._probes)

    # -- tickers ---------------------------------------------------------

    def add_ticker(self, fn: Callable[[float], None]) -> None:
        """Register ``fn(now)`` to run after each sampler probe sweep.

        Tickers are how streaming consumers (the health monitor,
        future feedback policies) observe sim time advancing without
        scheduling kernel events of their own: the TimelineSampler's
        daemon process already wakes every ``interval_ns``, and its
        events exist whether or not anything ticks — so the
        events_processed identity the telemetry tests pin is
        untouched.  Tickers must be pure observers of telemetry state
        (registry, causal recorder); touching model resources from one
        would break the bit-identity contract.
        """
        self._tickers.append(fn)

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Perfetto-loadable Chrome trace-event payload."""
        from .perfetto import to_chrome_trace
        return to_chrome_trace(self)


def span(env, name: str, track: Optional[str] = None, **args: Any):
    """``with span(env, "heap.migrate", oid=7): ...`` — or a no-op.

    The single entry point model code uses: when ``env`` carries no
    telemetry this returns a shared null context manager (one
    ``is None`` branch, zero allocation).
    """
    telemetry = env._telemetry
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, track, **args)
