"""Periodic timeline sampling of live fabric state.

Instrumented components register *probes* (cheap reads of queue
depths, credit pool levels, heap bin occupancy) with their
environment's :class:`~repro.telemetry.core.Telemetry`; the
:class:`TimelineSampler` is a daemon process that polls every probe at
a configurable sim-time interval, updating the probe's gauge in the
metric registry and appending a Chrome counter event so the timeline
is visible in Perfetto.

The sampler is a *pure observer*: it never blocks on model resources,
acquires nothing, and only ever yields its own timeout — so model
event ordering (and therefore every workload result) is bit-identical
with or without it running; ``tests/test_telemetry.py`` pins this the
same way the sanitize-on/off identity test does.
"""

from __future__ import annotations

from typing import Generator

__all__ = ["TimelineSampler"]

#: Default sampling cadence (ns): fine enough to resolve credit
#: rebalance periods (1-10 us) without dominating small runs.
DEFAULT_INTERVAL_NS = 1_000.0


class TimelineSampler:
    """Samples every registered probe each ``interval_ns`` of sim time."""

    def __init__(self, env, interval_ns: float = DEFAULT_INTERVAL_NS,
                 telemetry=None) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be > 0, got {interval_ns}")
        telemetry = telemetry if telemetry is not None else env.telemetry
        if telemetry is None:
            raise ValueError(
                "TimelineSampler needs telemetry; construct the "
                "environment with Environment(telemetry=True) or pass "
                "telemetry= explicitly")
        self.env = env
        self.telemetry = telemetry
        self.interval_ns = interval_ns
        self.samples_taken = 0
        self._running = False

    def start(self) -> "TimelineSampler":
        """Begin periodic sampling (idempotent); returns self."""
        if not self._running:
            self._running = True
            self.env.process(self._loop(), name="telemetry.sampler",
                             daemon=True)
        return self

    def sample_once(self) -> None:
        """Poll every probe now (also usable without the loop)."""
        telemetry = self.telemetry
        registry = telemetry.registry
        now = self.env.now
        for name, _track, fn in telemetry._probes:
            value = fn()
            registry.gauge(name).set(value, time=now)
            telemetry.counter_sample(name, now, value)
        for ticker in telemetry._tickers:
            ticker(now)
        self.samples_taken += 1

    def _loop(self) -> Generator:
        timeout = self.env.timeout
        interval = self.interval_ns
        while True:
            yield timeout(interval)
            self.sample_once()
