"""Causal transaction tracing: trace contexts + the flight recorder.

PR 3's telemetry answers *aggregate* questions (how deep was the
queue, how often did a flow stall).  This module answers the paper's
§3 question for one operation: *where did this access's latency go?*
Every traced transaction carries a :class:`TraceContext` (trace id +
parent span id) on its :class:`~repro.fabric.flit.Packet`; every
instrumented stage — heap lock, movement queue, switch buffer, credit
pool, egress scheduler, link serializer, the wire — records typed
causal events into a bounded flight recorder as the transaction
crosses it.  The offline analyzer
(:mod:`repro.telemetry.attribution`) rebuilds per-transaction DAGs
from those events, extracts the critical path, and buckets every
nanosecond into one of the :data:`CATEGORIES`.

Determinism contract (the same one telemetry and sanitize honor):

* tracing **off** costs instrumented hot paths one ``is None`` branch
  (components cache ``telemetry.causal`` at construction);
* tracing **on** never yields, never creates events, and never touches
  model resources — it only *appends tuples* and *observes* existing
  events, so scheduling is bit-identical on/off;
* sampling (``sample=N`` keeps 1-in-N transaction roots) decides at
  root-creation time; an unsampled transaction carries ``trace=None``
  and costs nothing downstream.

Recording a wait without perturbing the kernel: :meth:`wait` appends a
plain callable to the blocked event's ``callbacks`` list.  Callbacks
fire when the event is *processed* — i.e. at the simulated instant the
wait ends — and appending one neither reorders the event queue nor
changes which waiters the event wakes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = ["TraceContext", "CausalRecorder", "CATEGORIES",
           "CREDIT_STALL", "QUEUEING", "ARBITRATION", "SERIALIZATION",
           "WIRE", "PROCESSING"]

#: Attribution categories, highest precedence first.  When several
#: typed intervals overlap on a transaction's critical path the
#: highest-precedence one claims the time (being blocked on a credit
#: *is* the root cause even while the flit also sits in a queue);
#: time covered by no interval is the model doing work: processing.
CREDIT_STALL = "credit_stall"
ARBITRATION = "arbitration"
QUEUEING = "queueing"
SERIALIZATION = "serialization"
WIRE = "wire"
PROCESSING = "processing"

CATEGORIES: Tuple[str, ...] = (CREDIT_STALL, ARBITRATION, QUEUEING,
                               SERIALIZATION, WIRE, PROCESSING)

#: Flight-recorder tuples (flat, like ``Telemetry.events``):
#:   ("T", ts, tid, kind, route)                 transaction begin
#:   ("F", ts, tid)                              transaction finish
#:   ("B", ts, tid, sid, parent, category, site) interval begin
#:   ("E", ts, tid, sid)                         interval end
#:   ("M", ts, tid, name, site)                  point event (grant,
#:                                               deliver)
_TXN, _FIN, _BEGIN, _END, _MARK = "T", "F", "B", "E", "M"

#: Default flight-recorder capacity (events, not transactions).
DEFAULT_CAPACITY = 1 << 18


class TraceContext:
    """What a traced packet carries: its trace id and parent span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int = 0) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"<TraceContext trace={self.trace_id} span={self.span_id}>"


class CausalRecorder:
    """Bounded flight recorder of typed causal events.

    Attach one via ``Telemetry(causal=CausalRecorder(...))``; the
    components that propagate trace contexts cache it at construction
    exactly like they cache the telemetry hub.  Old events fall off the
    front when ``capacity`` is exceeded (the analyzer simply skips
    transactions whose begin was evicted).
    """

    def __init__(self, sample: int = 1,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample = sample
        self.capacity = capacity
        self.events: Deque[Tuple] = deque(maxlen=capacity)
        #: Optional streaming consumer ``tap(record)`` called with
        #: every appended tuple (after it lands in ``events``).  None
        #: by default: the hot path pays one ``is None`` branch, the
        #: same deal as telemetry itself.  The health monitor sets
        #: this to stream records into per-window attribution without
        #: re-scanning the ring — O(events) total instead of
        #: O(events x windows).  A tap must never touch the kernel.
        self.tap = None
        self.started = 0
        self.finished = 0
        self.roots_seen = 0
        self._next_trace = 0
        self._next_span = 0

    # -- roots -----------------------------------------------------------

    def sample_root(self) -> Optional[TraceContext]:
        """A fresh context for 1-in-``sample`` root call sites.

        Returns ``None`` for the unsampled majority — the caller
        leaves ``packet.trace`` unset and the transaction costs
        nothing further.
        """
        self.roots_seen += 1
        if (self.roots_seen - 1) % self.sample:
            return None
        self._next_trace += 1
        return TraceContext(self._next_trace)

    def txn_begin(self, ctx: TraceContext, ts: float, kind: str,
                  route: str) -> None:
        self.started += 1
        record = (_TXN, ts, ctx.trace_id, kind, route)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    def txn_end(self, ctx: TraceContext, ts: float) -> None:
        self.finished += 1
        record = (_FIN, ts, ctx.trace_id)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    # -- intervals -------------------------------------------------------

    def begin(self, ctx: TraceContext, ts: float, category: str,
              site: str) -> int:
        """Open an interval; returns the span id to close it with."""
        self._next_span += 1
        sid = self._next_span
        record = (_BEGIN, ts, ctx.trace_id, sid,
                  ctx.span_id, category, site)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)
        return sid

    def end(self, ctx: TraceContext, ts: float, sid: int) -> None:
        record = (_END, ts, ctx.trace_id, sid)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    def interval(self, ctx: TraceContext, t0: float, t1: float,
                 category: str, site: str) -> None:
        """Record a closed interval retroactively (both edges known)."""
        sid = self.begin(ctx, t0, category, site)
        record = (_END, t1, ctx.trace_id, sid)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    def mark(self, ctx: TraceContext, ts: float, name: str,
             site: str) -> None:
        record = (_MARK, ts, ctx.trace_id, name, site)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    # -- waits on kernel events ------------------------------------------

    def wait(self, ctx: TraceContext, event, category: str,
             site: str) -> None:
        """Record the blocking portion of a wait on ``event``.

        Already-triggered events (a ``Container.get`` served from a
        non-empty pool, a free ``Resource`` slot) record nothing: the
        wait is zero.  For a genuinely blocked event the interval opens
        now and closes from a callback when the event is processed —
        the exact simulated instant the grant happened.
        """
        if event.triggered or event.callbacks is None:
            return
        sid = self.begin(ctx, event.env.now, category, site)
        tid = ctx.trace_id

        def _close(ev, rec=self, tid=tid, sid=sid):
            record = (_END, ev.env.now, tid, sid)
            rec.events.append(record)
            if rec.tap is not None:
                rec.tap(record)

        event.callbacks.append(_close)

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def saturated(self) -> bool:
        """Ring is at capacity: the oldest events may have dropped."""
        return len(self.events) == self.capacity
