"""Offline analysis of the causal flight recorder: where latency went.

Consumes a :class:`~repro.telemetry.causal.CausalRecorder` and
produces, per traced transaction, a *critical path* — the transaction's
[begin, end) interval cut into contiguous segments, each attributed to
exactly one category — and, across transactions, aggregate attribution
tables with t-digest percentile summaries per category and per route.

Attribution rule: at every instant of a transaction's lifetime the
highest-precedence *open* typed interval claims the time (precedence
is the :data:`~repro.telemetry.causal.CATEGORIES` order — a flit
blocked on a credit is charged to ``credit_stall`` even while it also
sits in a staging queue).  Instants covered by no interval are the
model doing modelled work: ``processing``.  The segments therefore
partition the transaction exactly — per-category nanoseconds always
sum to end − begin, with nothing double-counted.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from .causal import CATEGORIES, CausalRecorder, PROCESSING

__all__ = ["AttributionError", "TDigest", "SpanRecord",
           "TransactionTrace", "collect_transactions", "build_report",
           "validate_attribution"]

#: category -> precedence rank (lower wins)
_PRECEDENCE = {category: rank for rank, category in enumerate(CATEGORIES)}

#: timestamps closer than this are one instant (float-noise guard)
_EPS = 1e-9


class AttributionError(ValueError):
    """An attribution payload violated the schema contract."""


# --------------------------------------------------------------------------
# t-digest-style percentile sketch
# --------------------------------------------------------------------------

class TDigest:
    """A small deterministic merging-digest percentile sketch.

    The classic t-digest idea sized for this repo: centroids are kept
    sorted and merged greedily under the ``q(1-q)`` scale function, so
    resolution concentrates at the tails (p95/p99 — the numbers the
    paper's pathologies live in).  Everything is insertion-order
    independent only up to centroid granularity, so callers feed values
    in deterministic (simulation) order and results are replayable.
    """

    def __init__(self, max_centroids: int = 64) -> None:
        if max_centroids < 4:
            raise ValueError(
                f"max_centroids must be >= 4, got {max_centroids}")
        self.max_centroids = max_centroids
        self._centroids: List[Tuple[float, float]] = []  # (mean, weight)
        self._buffer: List[Tuple[float, float]] = []
        self.count = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self._buffer.append((float(value), float(weight)))
        self.count += weight
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._buffer) >= 4 * self.max_centroids:
            self._compress()

    def _compress(self) -> None:
        points = sorted(self._centroids + self._buffer)
        self._buffer = []
        if not points:
            return
        total = sum(weight for _, weight in points)
        limit_scale = 4.0 * total / self.max_centroids
        merged: List[Tuple[float, float]] = []
        cum = 0.0
        current_mean, current_weight = points[0]
        for mean, weight in points[1:]:
            q = (cum + (current_weight + weight) / 2.0) / total
            limit = limit_scale * q * (1.0 - q) + 1.0
            if current_weight + weight <= limit:
                new_weight = current_weight + weight
                current_mean += (mean - current_mean) * weight / new_weight
                current_weight = new_weight
            else:
                merged.append((current_mean, current_weight))
                cum += current_weight
                current_mean, current_weight = mean, weight
        merged.append((current_mean, current_weight))
        self._centroids = merged

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated quantile, or ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        centroids = self._centroids
        if not centroids:
            return None
        if len(centroids) == 1:
            return centroids[0][0]
        target = q * self.count
        cum = 0.0
        previous_mean, previous_cum = self.minimum, 0.0
        for mean, weight in centroids:
            center = cum + weight / 2.0
            if center >= target:
                span = center - previous_cum
                if span <= _EPS:
                    return mean
                fraction = (target - previous_cum) / span
                fraction = min(1.0, max(0.0, fraction))
                return previous_mean + (mean - previous_mean) * fraction
            previous_mean, previous_cum = mean, center
            cum += weight
        return self.maximum

    def to_dict(self) -> Dict[str, Any]:
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 3)
        return {"count": int(self.count),
                "min": _round(self.minimum),
                "max": _round(self.maximum),
                "p50": _round(self.quantile(0.50)),
                "p95": _round(self.quantile(0.95)),
                "p99": _round(self.quantile(0.99))}


# --------------------------------------------------------------------------
# transaction reconstruction
# --------------------------------------------------------------------------

@dataclasses.dataclass
class SpanRecord:
    """One typed interval inside a transaction."""

    sid: int
    parent: int
    category: str
    site: str
    t0: float
    t1: float


@dataclasses.dataclass
class TransactionTrace:
    """One reconstructed transaction: its window, intervals, marks."""

    trace_id: int
    kind: str
    route: str
    begin: float
    end: float
    spans: List[SpanRecord]
    marks: List[Tuple[float, str, str]]

    @property
    def duration(self) -> float:
        return self.end - self.begin

    def critical_path(self) -> List[Dict[str, Any]]:
        """Contiguous attributed segments covering [begin, end)."""
        if self.end - self.begin <= _EPS:
            return []
        bounds = {self.begin, self.end}
        clamped: List[SpanRecord] = []
        for span in self.spans:
            t0 = min(max(span.t0, self.begin), self.end)
            t1 = min(max(span.t1, self.begin), self.end)
            if t1 - t0 > _EPS:
                clamped.append(dataclasses.replace(span, t0=t0, t1=t1))
                bounds.add(t0)
                bounds.add(t1)
        points = sorted(bounds)
        segments: List[Dict[str, Any]] = []
        for left, right in zip(points, points[1:]):
            if right - left <= _EPS:
                continue
            active = [span for span in clamped
                      if span.t0 <= left + _EPS and span.t1 >= right - _EPS]
            if active:
                winner = min(active, key=lambda span:
                             (_PRECEDENCE[span.category], span.t0, span.sid))
                category, site = winner.category, winner.site
            else:
                category, site = PROCESSING, "model"
            if segments and segments[-1]["category"] == category \
                    and segments[-1]["site"] == site:
                segments[-1]["t1"] = right
                segments[-1]["ns"] = segments[-1]["t1"] - segments[-1]["t0"]
            else:
                segments.append({"t0": left, "t1": right,
                                 "ns": right - left,
                                 "category": category, "site": site})
        return segments

    def attribution(self) -> Dict[str, float]:
        """Per-category nanoseconds; sums exactly to :attr:`duration`."""
        totals = {category: 0.0 for category in CATEGORIES}
        for segment in self.critical_path():
            totals[segment["category"]] += segment["ns"]
        return totals

    def dag(self) -> Dict[str, Any]:
        """The transaction's event DAG (spans nested under parents)."""
        children: Dict[int, List[SpanRecord]] = {}
        for span in sorted(self.spans, key=lambda s: (s.t0, s.sid)):
            children.setdefault(span.parent, []).append(span)

        def _node(span: SpanRecord) -> Dict[str, Any]:
            return {"sid": span.sid, "category": span.category,
                    "site": span.site, "t0": span.t0, "t1": span.t1,
                    "children": [_node(child)
                                 for child in children.get(span.sid, [])]}

        return {"trace_id": self.trace_id, "kind": self.kind,
                "route": self.route, "t0": self.begin, "t1": self.end,
                "spans": [_node(span) for span in children.get(0, [])],
                "marks": [{"ts": ts, "name": name, "site": site}
                          for ts, name, site in self.marks]}


def collect_transactions(recorder: CausalRecorder
                         ) -> List[TransactionTrace]:
    """Rebuild completed transactions from the flight recorder.

    Transactions whose begin fell off the ring, or which never
    finished, are skipped; intervals missing their end (a wait still
    blocked at run end) clamp to the transaction end.
    """
    txns: Dict[int, Dict[str, Any]] = {}
    open_spans: Dict[int, SpanRecord] = {}
    for record in recorder.events:
        tag = record[0]
        if tag == "T":
            _, ts, tid, kind, route = record
            txns[tid] = {"begin": ts, "end": None, "kind": kind,
                         "route": route, "spans": [], "marks": []}
        elif tag == "F":
            _, ts, tid = record
            txn = txns.get(tid)
            if txn is not None:
                txn["end"] = ts
        elif tag == "B":
            _, ts, tid, sid, parent, category, site = record
            txn = txns.get(tid)
            if txn is not None:
                span = SpanRecord(sid=sid, parent=parent,
                                  category=category, site=site,
                                  t0=ts, t1=ts)
                open_spans[sid] = span
                txn["spans"].append(span)
        elif tag == "E":
            _, ts, tid, sid = record
            span = open_spans.pop(sid, None)
            if span is not None:
                span.t1 = ts
        elif tag == "M":
            _, ts, tid, name, site = record
            txn = txns.get(tid)
            if txn is not None:
                txn["marks"].append((ts, name, site))
    results: List[TransactionTrace] = []
    for tid in sorted(txns):
        txn = txns[tid]
        if txn["end"] is None:
            continue
        for span in txn["spans"]:
            if span.t1 < span.t0:
                span.t1 = span.t0
            if span.sid in open_spans:      # never closed: the wait was
                span.t1 = max(span.t0, txn["end"])   # still blocked at
                del open_spans[span.sid]             # transaction end
        results.append(TransactionTrace(
            trace_id=tid, kind=txn["kind"], route=txn["route"],
            begin=txn["begin"], end=txn["end"],
            spans=txn["spans"], marks=txn["marks"]))
    return results


# --------------------------------------------------------------------------
# the aggregate report (the `repro why` payload)
# --------------------------------------------------------------------------

def build_report(scenario: str, recorder: CausalRecorder,
                 summary: Optional[Dict[str, Any]] = None,
                 max_transactions: int = 32) -> Dict[str, Any]:
    """Aggregate attribution + per-transaction waterfalls as JSON."""
    transactions = collect_transactions(recorder)
    total_ns = {category: 0.0 for category in CATEGORIES}
    digests = {category: TDigest() for category in CATEGORIES}
    routes: Dict[str, Dict[str, Any]] = {}
    for txn in transactions:
        shares = txn.attribution()
        route = routes.setdefault(
            txn.route, {"transactions": 0, "latency": TDigest(),
                        "ns": {category: 0.0 for category in CATEGORIES}})
        route["transactions"] += 1
        route["latency"].add(txn.duration)
        for category, ns in shares.items():
            total_ns[category] += ns
            route["ns"][category] += ns
            if ns > 0.0:
                digests[category].add(ns)
    grand_total = sum(total_ns.values())

    def _table(ns_by_category: Dict[str, float],
               include_percentiles: bool) -> Dict[str, Any]:
        table_total = sum(ns_by_category.values())
        table: Dict[str, Any] = {}
        for category in CATEGORIES:
            ns = ns_by_category[category]
            entry: Dict[str, Any] = {
                "ns": round(ns, 3),
                "share": round(ns / table_total, 6) if table_total else 0.0,
            }
            if include_percentiles:
                entry["per_txn"] = digests[category].to_dict()
            table[category] = entry
        return table

    payload: Dict[str, Any] = {
        "schema": 1,
        "tool": "repro-why",
        "scenario": scenario,
        "trace": {
            "sample": recorder.sample,
            "roots_seen": recorder.roots_seen,
            "started": recorder.started,
            "finished": recorder.finished,
            "analyzed": len(transactions),
            "saturated": recorder.saturated,
        },
        "total_ns": round(grand_total, 3),
        "attribution": _table(total_ns, include_percentiles=True),
        "routes": {
            name: {
                "transactions": data["transactions"],
                "latency_ns": data["latency"].to_dict(),
                "attribution": {
                    category: {
                        "ns": round(data["ns"][category], 3),
                        "share": round(
                            data["ns"][category]
                            / max(sum(data["ns"].values()), _EPS), 6),
                    }
                    for category in CATEGORIES
                },
            }
            for name, data in sorted(routes.items())
        },
        "transactions": [
            {
                "trace_id": txn.trace_id,
                "kind": txn.kind,
                "route": txn.route,
                "begin_ns": round(txn.begin, 3),
                "end_ns": round(txn.end, 3),
                "duration_ns": round(txn.duration, 3),
                "critical_path": [
                    {"t0": round(seg["t0"], 3), "t1": round(seg["t1"], 3),
                     "ns": round(seg["ns"], 3),
                     "category": seg["category"], "site": seg["site"]}
                    for seg in txn.critical_path()
                ],
            }
            for txn in transactions[:max_transactions]
        ],
    }
    if summary is not None:
        payload["summary"] = summary
    return payload


# --------------------------------------------------------------------------
# schema validation (the CI gate)
# --------------------------------------------------------------------------

def validate_attribution(payload: Dict[str, Any]) -> int:
    """Validate a ``repro why --json`` payload; returns the txn count.

    Raises :class:`AttributionError` on any schema or accounting
    violation: unknown categories, shares not summing to one, or a
    waterfall that does not contiguously tile its transaction window.
    """
    def fail(message: str) -> None:
        raise AttributionError(message)

    if not isinstance(payload, dict):
        fail("payload must be a JSON object")
    if payload.get("schema") != 1 or payload.get("tool") != "repro-why":
        fail("payload is not a repro-why schema-1 document")
    for key in ("scenario", "trace", "attribution", "routes",
                "transactions"):
        if key not in payload:
            fail(f"missing top-level key {key!r}")
    trace = payload["trace"]
    for key in ("sample", "started", "finished", "analyzed"):
        if not isinstance(trace.get(key), int):
            fail(f"trace.{key} must be an integer")
    known = set(CATEGORIES)

    def check_table(table: Dict[str, Any], where: str) -> None:
        if set(table) != known:
            fail(f"{where}: categories {sorted(table)} != "
                 f"{sorted(known)}")
        shares = 0.0
        for category, entry in table.items():
            if entry["ns"] < 0:
                fail(f"{where}.{category}: negative ns")
            shares += entry["share"]
        total = sum(entry["ns"] for entry in table.values())
        if total > 0 and abs(shares - 1.0) > 1e-3:
            fail(f"{where}: shares sum to {shares}, expected 1.0")

    check_table(payload["attribution"], "attribution")
    for name, route in payload["routes"].items():
        if route["transactions"] < 1:
            fail(f"routes[{name!r}]: empty route reported")
        check_table(route["attribution"], f"routes[{name!r}]")
    count = 0
    for txn in payload["transactions"]:
        segments = txn["critical_path"]
        duration = txn["duration_ns"]
        if duration < 0:
            fail(f"transaction {txn['trace_id']}: negative duration")
        if not segments:
            if duration > 1e-3:
                fail(f"transaction {txn['trace_id']}: nonzero duration "
                     "with empty critical path")
            count += 1
            continue
        cursor = txn["begin_ns"]
        covered = 0.0
        for segment in segments:
            if segment["category"] not in known:
                fail(f"transaction {txn['trace_id']}: unknown category "
                     f"{segment['category']!r}")
            if abs(segment["t0"] - cursor) > 1e-3:
                fail(f"transaction {txn['trace_id']}: critical path has "
                     f"a gap at {segment['t0']}")
            if segment["ns"] < 0:
                fail(f"transaction {txn['trace_id']}: negative segment")
            cursor = segment["t1"]
            covered += segment["ns"]
        if abs(cursor - txn["end_ns"]) > 1e-3:
            fail(f"transaction {txn['trace_id']}: critical path ends at "
                 f"{cursor}, transaction at {txn['end_ns']}")
        if abs(covered - duration) > 1e-2:
            fail(f"transaction {txn['trace_id']}: segments cover "
                 f"{covered} ns of a {duration} ns transaction")
        count += 1
    if payload["trace"]["analyzed"] and not payload["routes"]:
        fail("transactions analyzed but no routes reported")
    return count
