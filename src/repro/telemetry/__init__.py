"""Fabric-wide observability: metrics, span tracing, Perfetto export.

The paper's section 3 claims — remote ≈10x slower, ~600 ns added
one-way under concurrent 64 B writes, CFC starvation, head-of-line
blocking — are time-series phenomena; aggregate counters cannot show
*when* a quiet flow stalled or a queue filled.  This package is the
always-available, near-zero-overhead observability layer:

* :mod:`repro.telemetry.metrics` — a :class:`MetricRegistry` of
  sim-time-keyed counters, gauges and log-bucketed histograms with
  hierarchical names (``pcie.switch0.port2.queue_depth``),
  snapshottable to JSON;
* :mod:`repro.telemetry.core` — :class:`Telemetry` (the per-
  environment hub) and :func:`span` (``with span(env, "cfc.rebalance"):
  ...``) for duration events with per-component track assignment;
* :mod:`repro.telemetry.sampler` — :class:`TimelineSampler`, a daemon
  process sampling link utilization, switch queue depths, credit
  occupancy and heap placement mix at a configurable interval;
* :mod:`repro.telemetry.perfetto` — Chrome trace-event export
  (loadable at https://ui.perfetto.dev) plus the schema validator CI
  runs on exported files;
* :mod:`repro.telemetry.scenarios` — canonical instrumented runs
  behind ``repro trace <scenario>`` and ``repro metrics <scenario>``;
* :mod:`repro.telemetry.health` — streaming windowed series, SLO
  burn-rate alerting and anomaly detection behind ``repro health``,
  with :mod:`repro.telemetry.dashboard` rendering the static HTML
  view.

Enable per environment — ``Environment(telemetry=True)`` (or pass a
:class:`Telemetry`) — and read it back as ``env.telemetry``.  Off is
the default and costs instrumented hot paths one ``is None`` branch,
the exact pattern of ``Environment(sanitize=True)``; a telemetry-on
run is scheduling-identical to a telemetry-off run.
"""

from .attribution import (
    AttributionError,
    TDigest,
    build_report,
    validate_attribution,
)
from .causal import CausalRecorder, TraceContext
from .core import Telemetry, span
from .dashboard import render_dashboard
from .health import (
    HealthError,
    HealthMonitor,
    SloSpec,
    default_slo_spec,
    run_health,
    validate_health_report,
)
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .perfetto import ChromeTraceError, to_chrome_trace, validate_chrome_trace
from .sampler import TimelineSampler

__all__ = [
    "AttributionError",
    "CausalRecorder",
    "ChromeTraceError",
    "Counter",
    "Gauge",
    "HealthError",
    "HealthMonitor",
    "Histogram",
    "MetricRegistry",
    "SloSpec",
    "TDigest",
    "Telemetry",
    "TimelineSampler",
    "TraceContext",
    "build_report",
    "default_slo_spec",
    "render_dashboard",
    "run_health",
    "span",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_attribution",
    "validate_health_report",
]
