"""Self-contained HTML dashboard for ``repro health`` reports.

:func:`render_dashboard` turns one ``repro-health`` payload into a
single static HTML file: stat tiles, SVG line charts of burn rates and
per-route attribution shares, shaded alert episodes, anomaly markers,
and a windows table — with **no external assets** (no CDN, no fonts,
no JS framework), so the file is archivable as a CI artifact and
opens anywhere.

Rendering choices follow the repo's chart conventions: one y-axis per
chart, 2 px lines, a legend whenever two or more series share a plot,
text always in ink tokens (series color only on marks), status colors
reserved for alert state and always paired with an icon + label, and a
light/dark palette via CSS custom properties keyed off
``prefers-color-scheme``.  Output is deterministic: same report, same
bytes.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard"]

# Chart geometry (SVG user units).
_W, _H = 640, 200
_ML, _MR, _MT, _MB = 58, 14, 12, 26

# Series slots 1-3 (blue / orange / aqua), light and dark steps.
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70")

_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --ink-muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --critical: #d03b3b; --warning: #fab219; --good: #0ca30c;
  --tile: #f4f4f2; --border: #e1e0d9;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --ink-muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --tile: #232322; --border: #2c2c2a;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 960px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile {
  background: var(--tile); border: 1px solid var(--border);
  border-radius: 6px; padding: 10px 14px; min-width: 128px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.tile .v .icon { font-size: 16px; vertical-align: 2px; }
.chart { margin: 6px 0 2px; }
svg { display: block; max-width: 100%; }
.legend {
  display: flex; flex-wrap: wrap; gap: 14px; margin: 2px 0 0;
  color: var(--ink-2); font-size: 12px;
}
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
.alerts { margin: 8px 0 0; padding: 0; list-style: none; }
.alerts li { margin: 3px 0; color: var(--ink-2); }
.alerts .icon { margin-right: 6px; }
.fired .icon { color: var(--critical); }
.cleared .icon { color: var(--good); }
table { border-collapse: collapse; font-size: 13px; margin-top: 8px; }
th, td {
  text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--border);
}
th { color: var(--ink-2); font-weight: 600; }
details summary { cursor: pointer; color: var(--ink-2); }
#tip {
  position: fixed; display: none; pointer-events: none;
  background: var(--tile); border: 1px solid var(--border);
  border-radius: 4px; padding: 5px 8px; font-size: 12px;
  color: var(--ink); white-space: pre; z-index: 10;
}
.grid-line { stroke: var(--grid); stroke-width: 1; }
.axis-line { stroke: var(--baseline); stroke-width: 1; }
.axis-text { fill: var(--ink-muted); font-size: 10px; }
.thresh { stroke: var(--ink-muted); stroke-width: 1;
          stroke-dasharray: 4 3; }
.episode { fill: var(--critical); fill-opacity: 0.12; }
.anom { fill: none; stroke: var(--critical); stroke-width: 2; }
.action-mark { stroke: var(--good); stroke-width: 2;
               stroke-dasharray: 2 3; }
.actions .icon { color: var(--good); }
.line { fill: none; stroke-width: 2; }
.s1 { stroke: var(--s1); } .s2 { stroke: var(--s2); }
.s3 { stroke: var(--s3); }
.sw1 { background: var(--s1); } .sw2 { background: var(--s2); }
.sw3 { background: var(--s3); }
"""

_JS = """
(function () {
  var tip = document.getElementById('tip');
  document.querySelectorAll('svg[data-points]').forEach(function (svg) {
    var pts = JSON.parse(svg.getAttribute('data-points'));
    svg.addEventListener('mousemove', function (ev) {
      var rect = svg.getBoundingClientRect();
      var sx = svg.viewBox.baseVal.width / rect.width;
      var x = (ev.clientX - rect.left) * sx;
      var best = null, bd = 1e9;
      pts.forEach(function (p) {
        var d = Math.abs(p.x - x);
        if (d < bd) { bd = d; best = p; }
      });
      if (!best || bd > 30) { tip.style.display = 'none'; return; }
      tip.textContent = best.label;
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 12) + 'px';
      tip.style.top = (ev.clientY + 12) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none';
    });
  });
})();
"""


def _fmt(value: float) -> str:
    """Compact deterministic number formatting for labels."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _scale(lo: float, hi: float, span: Tuple[float, float]):
    if hi - lo <= 0:
        hi = lo + 1.0
    s0, s1 = span
    k = (s1 - s0) / (hi - lo)
    return lambda v: s0 + (v - lo) * k


def _nice_ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi - lo <= 0:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10.0 ** int(f"{raw:e}".split("e")[1])
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if mult * mag >= raw:
            step = mult * mag
            break
    first = step * (int(lo / step) if lo >= 0 else int(lo / step) - 1)
    ticks = []
    t = first
    while t <= hi + step * 1e-6:
        if t >= lo - step * 1e-6:
            ticks.append(round(t, 9))
        t += step
    return ticks


def _line_chart(times: Sequence[float],
                series: Sequence[Tuple[str, Sequence[Optional[float]]]],
                unit: str,
                y_max: Optional[float] = None,
                threshold: Optional[float] = None,
                threshold_label: str = "",
                episodes: Sequence[Tuple[float, Optional[float]]] = (),
                anomalies: Sequence[Tuple[float, float]] = (),
                actions: Sequence[Tuple[float, str]] = ()) -> str:
    """One SVG line chart (single y-axis, 2px lines, hover points).

    ``actions`` are (sim time, rule name) actuation markers — dashed
    vertical lines at the window edges where a feedback rule fired.
    """
    x0, x1 = (times[0], times[-1]) if times else (0.0, 1.0)
    values = [v for _name, col in series for v in col if v is not None]
    if threshold is not None:
        values.append(threshold)
    values.extend(v for _t, v in anomalies)
    lo = min(0.0, min(values)) if values else 0.0
    hi = y_max if y_max is not None else (max(values) if values else 1.0)
    if hi <= lo:
        hi = lo + 1.0
    hi *= 1.05
    sx = _scale(x0, x1, (_ML, _W - _MR))
    sy = _scale(lo, hi, (_H - _MB, _MT))
    parts: List[str] = []
    for end0, end1 in episodes:
        rx0 = sx(end0)
        rx1 = sx(end1 if end1 is not None else x1)
        parts.append(f'<rect class="episode" x="{rx0:.1f}" '
                     f'y="{_MT}" width="{max(rx1 - rx0, 2.0):.1f}" '
                     f'height="{_H - _MB - _MT}"/>')
    for tick in _nice_ticks(lo, hi):
        y = sy(tick)
        parts.append(f'<line class="grid-line" x1="{_ML}" '
                     f'y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}"/>')
        parts.append(f'<text class="axis-text" x="{_ML - 6}" '
                     f'y="{y + 3:.1f}" text-anchor="end">'
                     f'{_fmt(tick)}</text>')
    parts.append(f'<line class="axis-line" x1="{_ML}" '
                 f'y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}"/>')
    for tick in _nice_ticks(x0, x1, 6):
        x = sx(tick)
        parts.append(f'<text class="axis-text" x="{x:.1f}" '
                     f'y="{_H - _MB + 14}" text-anchor="middle">'
                     f'{_fmt(tick)}</text>')
    parts.append(f'<text class="axis-text" x="{_W - _MR}" '
                 f'y="{_H - 4}" text-anchor="end">sim time (ns)</text>')
    if threshold is not None:
        y = sy(threshold)
        parts.append(f'<line class="thresh" x1="{_ML}" y1="{y:.1f}" '
                     f'x2="{_W - _MR}" y2="{y:.1f}"/>')
        if threshold_label:
            parts.append(f'<text class="axis-text" x="{_W - _MR}" '
                         f'y="{y - 4:.1f}" text-anchor="end">'
                         f'{html.escape(threshold_label)}</text>')
    hover: List[Dict[str, Any]] = []
    for slot, (name, col) in enumerate(series):
        cls = f"s{(slot % 3) + 1}"
        run: List[str] = []
        segments: List[List[str]] = []
        for t, v in zip(times, col):
            if v is None:
                if run:
                    segments.append(run)
                    run = []
                continue
            run.append(f"{sx(t):.1f},{sy(v):.1f}")
            hover.append({"x": round(sx(t), 1),
                          "label": f"{name}\nt={_fmt(t)} ns  "
                                   f"value={_fmt(v)}{unit}"})
        if run:
            segments.append(run)
        for seg in segments:
            if len(seg) == 1:
                x, y = seg[0].split(",")
                parts.append(f'<circle class="line {cls}" cx="{x}" '
                             f'cy="{y}" r="2" fill="currentColor"/>')
            else:
                parts.append(f'<polyline class="line {cls}" '
                             f'points="{" ".join(seg)}"/>')
    for t, v in anomalies:
        parts.append(f'<circle class="anom" cx="{sx(t):.1f}" '
                     f'cy="{sy(v):.1f}" r="4"/>')
    for t, rule in actions:
        x = sx(t)
        parts.append(f'<line class="action-mark" x1="{x:.1f}" '
                     f'y1="{_MT}" x2="{x:.1f}" y2="{_H - _MB}"/>')
        hover.append({"x": round(x, 1),
                      "label": f"action {rule}\nt={_fmt(t)} ns"})
    data = html.escape(json.dumps(hover, sort_keys=True), quote=True)
    return (f'<svg viewBox="0 0 {_W} {_H}" role="img" '
            f'data-points="{data}">{"".join(parts)}</svg>')


def _legend(names: Sequence[str]) -> str:
    if len(names) < 2:
        return ""
    rows = "".join(
        f'<span><span class="swatch sw{(i % 3) + 1}"></span>'
        f'{html.escape(name)}</span>'
        for i, name in enumerate(names))
    return f'<div class="legend">{rows}</div>'


def _tile(value: str, key: str) -> str:
    return (f'<div class="tile"><div class="v">{value}</div>'
            f'<div class="k">{html.escape(key)}</div></div>')


def render_dashboard(report: Dict[str, Any]) -> str:
    """The full static HTML document for one health report."""
    windows = report["windows"]
    times = [w["t1"] for w in windows]
    episodes_total = sum(len(alert["episodes"])
                         for slo in report["slos"]
                         for alert in slo["alerts"])
    active = sum(1 for slo in report["slos"]
                 for alert in slo["alerts"] if alert["active"])
    anomaly_points = sum(len(rule["points"])
                         for rule in report["anomalies"])
    control = report.get("control")
    action_marks = [(a["t"], a["rule"])
                    for a in control["actions"]] if control else []
    if active:
        alert_tile = ('<span class="icon" style="color:var(--critical)">'
                      f'&#9650;</span> {episodes_total} '
                      '<span class="k">(active)</span>')
    elif episodes_total:
        alert_tile = ('<span class="icon" style="color:var(--warning)">'
                      f'&#9650;</span> {episodes_total}')
    else:
        alert_tile = ('<span class="icon" style="color:var(--good)">'
                      '&#10003;</span> 0')
    body: List[str] = []
    body.append(f'<h1>repro health &mdash; '
                f'{html.escape(report["scenario"])}</h1>')
    body.append(f'<p class="sub">policy {html.escape(report["policy"])}'
                f' &middot; window {_fmt(report["window_ns"])} ns'
                f' &middot; sampler {_fmt(report["interval_ns"])} ns'
                f' &middot; trace sample 1/{report["trace"]["sample"]}'
                '</p>')
    tiles = (_tile(str(len(windows)), "windows")
             + _tile(alert_tile, "alert episodes")
             + _tile(str(anomaly_points), "anomaly points")
             + _tile(str(report["trace"]["analyzed"]),
                     "transactions attributed"))
    if control is not None:
        tiles += _tile(str(len(control["actions"])), "control actions")
    body.append('<div class="tiles">' + tiles + '</div>')

    # One burn-rate chart per SLO, shaded with its alert episodes.
    for slo in report["slos"]:
        body.append(f'<h2>SLO {html.escape(slo["name"])} &mdash; '
                    'error-budget burn rate</h2>')
        episodes = [(e["fired_at"], e["cleared_at"])
                    for alert in slo["alerts"]
                    for e in alert["episodes"]]
        threshold = slo["alerts"][0]["burn_rate"] if slo["alerts"] \
            else None
        body.append('<div class="chart">' + _line_chart(
            times, [("burn", slo["burn"])], "x",
            threshold=threshold,
            threshold_label=f"burn {_fmt(threshold)}x"
            if threshold is not None else "",
            episodes=episodes, actions=action_marks) + '</div>')
        items = []
        for alert in slo["alerts"]:
            for episode in alert["episodes"]:
                items.append(
                    '<li class="fired"><span class="icon">&#9650;'
                    f'</span>{html.escape(alert["rule"])} fired at '
                    f'{_fmt(episode["fired_at"])} ns</li>')
                if episode["cleared_at"] is not None:
                    items.append(
                        '<li class="cleared"><span class="icon">'
                        f'&#10003;</span>{html.escape(alert["rule"])} '
                        f'cleared at {_fmt(episode["cleared_at"])} ns'
                        '</li>')
        if not items:
            items.append('<li class="cleared"><span class="icon">'
                         '&#10003;</span>no alerts fired</li>')
        body.append('<ul class="alerts">' + "".join(items) + '</ul>')

    # Per-route stall share (the paper's §3 starvation signal).
    routes = report["attribution"]["routes"]
    if routes:
        names = sorted(routes)[:3]
        dropped = len(routes) - len(names)
        body.append('<h2>credit_stall share of route latency</h2>')
        body.append('<div class="chart">' + _line_chart(
            times,
            [(name, routes[name]["share"]["credit_stall"])
             for name in names],
            "", actions=action_marks) + '</div>')
        body.append(_legend(names))
        if dropped:
            body.append(f'<p class="sub">({dropped} more route(s) in '
                        'the JSON report)</p>')

    # Anomaly-rule source series with flagged points.
    for rule in report["anomalies"]:
        series = rule["series"]
        if series["kind"] == "counter_delta":
            name = series["metric"]
            column = report["series"]["counters"].get(name)
            if column is None:
                continue
        else:
            route = routes.get(series.get("route", ""))
            if route is None:
                continue
            name = (f'{series["route"]}.'
                    f'{series["category"]} share')
            column = route["share"][series["category"]]
        points = [(p["t"], p["value"]) for p in rule["points"]]
        body.append(f'<h2>anomaly {html.escape(rule["name"])} &mdash; '
                    f'{html.escape(name)} per window</h2>')
        body.append('<div class="chart">' + _line_chart(
            times, [(name, column)], "", anomalies=points) + '</div>')
        label = (f'{len(points)} point(s) beyond '
                 f'{_fmt(rule["factor"])}x EWMA'
                 if points else 'no anomalies')
        icon = '&#9650;' if points else '&#10003;'
        cls = 'fired' if points else 'cleared'
        body.append(f'<ul class="alerts"><li class="{cls}">'
                    f'<span class="icon">{icon}</span>{label}</li></ul>')

    # Closed-loop action log (when a feedback policy ran).
    if control is not None:
        body.append('<h2>control actions</h2>')
        items = []
        for action in control["actions"]:
            settings = html.escape(
                json.dumps(action["set"], sort_keys=True))
            items.append(
                '<li><span class="icon">&#9881;</span>'
                f'{_fmt(action["t"])} ns &middot; rule '
                f'{html.escape(str(action["rule"]))} &rarr; '
                f'{html.escape(action["actuator"])} '
                f'<code>{settings}</code></li>')
        if not items:
            items.append('<li><span class="icon">&#10003;</span>'
                         'no rules fired</li>')
        body.append('<ul class="alerts actions">' + "".join(items)
                    + '</ul>')

    # Table view: every window, plus each SLO's burn column.
    head = "".join(f'<th>{h}</th>' for h in
                   ["window", "t0 (ns)", "t1 (ns)"]
                   + [f'{html.escape(s["name"])} burn'
                      for s in report["slos"]])
    rows = []
    for i, window in enumerate(windows):
        cells = [str(window["index"]), _fmt(window["t0"]),
                 _fmt(window["t1"])]
        for slo in report["slos"]:
            burn = slo["burn"][i]
            cells.append("&mdash;" if burn is None else _fmt(burn))
        rows.append("<tr>" + "".join(f"<td>{c}</td>" for c in cells)
                    + "</tr>")
    body.append('<details><summary>windows table</summary>'
                f'<table><thead><tr>{head}</tr></thead>'
                f'<tbody>{"".join(rows)}</tbody></table></details>')

    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">\n"
            f"<title>repro health &mdash; "
            f"{html.escape(report['scenario'])}</title>\n"
            f"<style>{_CSS}</style>\n</head>\n<body>\n"
            + "\n".join(body)
            + '\n<div id="tip"></div>\n'
            f"<script>{_JS}</script>\n</body>\n</html>\n")
