"""Sim-time-keyed metrics: counters, gauges, log-bucketed histograms.

Metrics are hierarchically named with dots
(``pcie.switch0.port2.queue_depth``) and live in a
:class:`MetricRegistry`.  Updates are deliberately tiny — an attribute
bump on a pre-looked-up object — so instrumented hot paths pay one
``is None`` branch when telemetry is off and one integer add when it
is on.  Registry lookups (``registry.counter(name)``) build the name
string once, at component construction time; doing the lookup (or any
string formatting) per event is what lint rule FCC006 flags.

Timestamps are simulation time (nanoseconds by repo convention),
passed in by the caller — the registry never touches a clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


class Counter:
    """A monotonically increasing count (flits forwarded, bytes moved)."""

    __slots__ = ("name", "value", "last_time")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.last_time: Optional[float] = None

    def inc(self, n: float = 1.0, time: Optional[float] = None) -> None:
        self.value += n
        if time is not None:
            self.last_time = time

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value,
                "last_time": self.last_time}


class Gauge:
    """A point-in-time level (queue depth, credit occupancy)."""

    __slots__ = ("name", "value", "last_time", "minimum", "maximum")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.last_time: Optional[float] = None
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def set(self, value: float, time: Optional[float] = None) -> None:
        self.value = value
        if time is not None:
            self.last_time = time
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value,
                "min": self.minimum, "max": self.maximum,
                "last_time": self.last_time}


class Histogram:
    """Log-bucketed (power-of-two) distribution of non-negative values.

    Bucket ``i`` covers ``[2**(i-1), 2**i)`` for ``i >= 1``; bucket 0
    covers ``[0, 1)``.  That resolution (±2x) is the right grain for
    latencies spanning 5 ns L1 hits to 100 us stalls, and keeps
    ``observe`` allocation-free: an int ``bit_length`` and a dict bump.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_buckets", "last_time", "_window_min", "_window_max")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self.last_time: Optional[float] = None
        # Per-window extrema: reset by snapshot_delta, so consecutive
        # delta calls see exact min/max for their own window (the
        # cumulative pair above cannot recover these).
        self._window_min: Optional[float] = None
        self._window_max: Optional[float] = None

    def observe(self, value: float, time: Optional[float] = None) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed {value}")
        index = int(value).bit_length()
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if time is not None:
            self.last_time = time
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self._window_min is None or value < self._window_min:
            self._window_min = value
        if self._window_max is None or value > self._window_max:
            self._window_max = value

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError(f"no observations in histogram {self.name!r}")
        return self.total / self.count

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Sorted ``(low, high, count)`` rows for the occupied buckets."""
        rows = []
        for index in sorted(self._buckets):
            low = 0.0 if index == 0 else float(2 ** (index - 1))
            rows.append((low, float(2 ** index), self._buckets[index]))
        return rows

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q`` quantile.

        Returns ``None`` when the histogram has no observations: a
        percentile snapshot of an idle series is an absent value, not
        an error (``mean`` still raises — an average of nothing is a
        caller bug, while dashboards legitimately snapshot idle
        histograms).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for low, high, n in self.buckets():
            seen += n
            if seen >= rank:
                return high
        return float(self.maximum)

    def to_dict(self) -> Dict[str, Any]:
        # p50/p95/p99 ride along so EXPERIMENTS.md numbers come
        # straight from `repro metrics --json` (bucket upper bounds,
        # the same ±2x grain as the buckets themselves).
        return {"kind": self.kind, "count": self.count,
                "sum": self.total,
                "mean": self.total / self.count if self.count else None,
                "min": self.minimum, "max": self.maximum,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "buckets": [{"low": low, "high": high, "count": n}
                            for low, high, n in self.buckets()],
                "last_time": self.last_time}

    def snapshot_delta(self, prev: Optional[Dict[str, Any]]
                       ) -> Dict[str, Any]:
        """The window between a previous :meth:`to_dict` and now.

        ``prev=None`` means "since the beginning" (the delta is the
        full cumulative state).  The result has the :meth:`to_dict`
        shape minus ``last_time``; count/sum/quantiles are derived
        exactly from the cumulative snapshots, while ``min``/``max``
        are *true per-window extremes* tracked directly in
        :meth:`observe` and reset here — calling ``snapshot_delta``
        closes the extrema window, so consecutive calls partition
        observations exactly (a window's min is not recoverable from
        two cumulative snapshots).  An empty window (no new
        observations) reports ``count 0`` with ``None``
        mean/min/max/quantiles, matching the idle-histogram convention
        of :meth:`quantile`; the error path (a *newer* ``prev``)
        leaves the extrema window untouched.
        """
        if prev is None:
            prev_count, prev_total = 0, 0.0
            prev_buckets: Dict[int, int] = {}
        else:
            prev_count = prev["count"]
            prev_total = prev["sum"]
            prev_buckets = {row["high"]: row["count"]
                            for row in prev["buckets"]}
        count = self.count - prev_count
        total = self.total - prev_total
        if count < 0:
            raise ValueError(
                f"histogram {self.name!r}: snapshot_delta given a "
                f"*newer* snapshot ({prev_count} > {self.count} "
                "observations)")
        rows = []
        for low, high, n in self.buckets():
            delta = n - prev_buckets.get(high, 0)
            if delta:
                rows.append((low, high, delta))

        def _quantile(q: float) -> Optional[float]:
            if not count:
                return None
            rank = q * count
            seen = 0
            for _low, high, n in rows:
                seen += n
                if seen >= rank:
                    return high
            return rows[-1][1]

        window_min, window_max = self._window_min, self._window_max
        self._window_min = None
        self._window_max = None
        return {"kind": self.kind, "count": count,
                "sum": total,
                "mean": total / count if count else None,
                "min": window_min if count else None,
                "max": window_max if count else None,
                "p50": _quantile(0.50),
                "p95": _quantile(0.95),
                "p99": _quantile(0.99),
                "buckets": [{"low": low, "high": high, "count": n}
                            for low, high, n in rows]}


class MetricRegistry:
    """Hierarchically named metrics, snapshottable to JSON.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    an existing name returns the same object (so several components
    may share one series), but asking for it as a different kind is an
    error — a name means one thing.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def register(self, name: str, kind: str):
        """Strictly create a metric; duplicates are an error.

        Unlike the get-or-create accessors (which let components share
        a series on purpose), ``register`` is for callers that *own* a
        name — an SLO spec, a health series — where silently aliasing
        an existing metric would mean two meanings for one name.  The
        error lists what is already registered, the same convention
        topology descriptors use.
        """
        cls = {"counter": Counter, "gauge": Gauge,
               "histogram": Histogram}.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown metric kind {kind!r}; choose from counter, "
                f"gauge, histogram")
        if name in self._metrics:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{self._metrics[name].kind}; registered names: "
                f"{', '.join(sorted(self._metrics))}")
        metric = cls(name)
        self._metrics[name] = metric
        return metric

    def lookup(self, name: str):
        """The metric under ``name``; unknown names list the registry.

        The strict sibling of :meth:`get` (which returns None): SLO
        objectives and health series resolve their metric names through
        this so a typo'd spec fails with the full inventory instead of
        producing an empty series.
        """
        metric = self._metrics.get(name)
        if metric is None:
            known = ", ".join(sorted(self._metrics)) or "(none)"
            raise KeyError(
                f"unknown metric {name!r}; registered: {known}")
        return metric

    def get(self, name: str):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by dotted prefix."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(name for name in self._metrics
                      if name == prefix or name.startswith(dotted))

    def snapshot(self) -> Dict[str, Any]:
        """Schema-stable JSON payload of every metric."""
        return {
            "schema": 1,
            "tool": "repro-telemetry",
            "count": len(self._metrics),
            "metrics": {name: self._metrics[name].to_dict()
                        for name in sorted(self._metrics)},
        }
