"""``repro compare``: regression detection over recorded payloads.

Compares two JSON payloads produced by this repo's tooling and reports
regressions:

* **bench payloads** (``benchmarks/run_all.py`` → ``BENCH_<n>.json``):
  an experiment whose ``events_per_sec`` dropped by the threshold (10%
  by default) is a perf regression; newly failing invariants always
  are;
* **attribution payloads** (``repro why --json``): a category's share
  of total critical-path time drifting by more than the threshold
  (absolute), or a route's p95 latency growing by more than the
  threshold (relative), flags a latency-composition regression — the
  "it got slower *and here is which stage*" signal.

Both payload types self-identify (``experiments`` vs.
``tool == "repro-why"``); mixing types is an error, not a diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from .causal import CATEGORIES

__all__ = ["ComparisonError", "load_payload", "payload_kind",
           "compare_payloads"]

DEFAULT_THRESHOLD = 0.10


class ComparisonError(ValueError):
    """Inputs that cannot be compared (bad file, mismatched kinds)."""


def load_payload(path: Path) -> Dict[str, Any]:
    try:
        with Path(path).open() as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ComparisonError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ComparisonError(f"{path} is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ComparisonError(f"{path}: expected a JSON object")
    return payload


def payload_kind(payload: Dict[str, Any]) -> str:
    if payload.get("tool") == "repro-why":
        return "attribution"
    if isinstance(payload.get("experiments"), list):
        return "bench"
    raise ComparisonError(
        "unrecognized payload: neither a BENCH file (experiments list) "
        "nor a repro-why attribution document")


def compare_payloads(baseline: Dict[str, Any],
                     candidate: Dict[str, Any],
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> Tuple[List[str], List[str]]:
    """Diff two same-kind payloads; returns (regressions, notes)."""
    if not 0.0 < threshold < 1.0:
        raise ComparisonError(
            f"threshold must be in (0, 1), got {threshold}")
    kind = payload_kind(baseline)
    if payload_kind(candidate) != kind:
        raise ComparisonError(
            f"payload kinds differ: baseline is {kind}, candidate is "
            f"{payload_kind(candidate)}")
    if kind == "bench":
        return _compare_bench(baseline, candidate, threshold)
    return _compare_attribution(baseline, candidate, threshold)


def _compare_bench(baseline: Dict[str, Any], candidate: Dict[str, Any],
                   threshold: float) -> Tuple[List[str], List[str]]:
    regressions: List[str] = []
    notes: List[str] = []
    base_rates = {exp["name"]: exp.get("events_per_sec", 0.0)
                  for exp in baseline["experiments"]}
    cand_rates = {exp["name"]: exp.get("events_per_sec", 0.0)
                  for exp in candidate["experiments"]}
    for name in sorted(base_rates):
        if name not in cand_rates:
            notes.append(f"experiment {name!r} missing from candidate")
            continue
        base, cand = base_rates[name], cand_rates[name]
        if base <= 0:
            continue
        change = (cand - base) / base
        if change <= -threshold:
            regressions.append(
                f"{name}: events/sec fell {-change:.1%} "
                f"({base:,.0f} -> {cand:,.0f})")
        elif change >= threshold:
            notes.append(
                f"{name}: events/sec improved {change:.1%} "
                f"({base:,.0f} -> {cand:,.0f})")
    for name in sorted(set(cand_rates) - set(base_rates)):
        notes.append(f"experiment {name!r} new in candidate")
    base_failures = set(baseline.get("invariant_failures", []))
    for failure in candidate.get("invariant_failures", []):
        if failure not in base_failures:
            regressions.append(f"invariant newly failing: {failure}")
    return regressions, notes


def _compare_attribution(baseline: Dict[str, Any],
                         candidate: Dict[str, Any],
                         threshold: float) -> Tuple[List[str], List[str]]:
    regressions: List[str] = []
    notes: List[str] = []
    if baseline.get("scenario") != candidate.get("scenario"):
        notes.append(
            f"scenarios differ: {baseline.get('scenario')!r} vs "
            f"{candidate.get('scenario')!r}")
    base_table = baseline.get("attribution", {})
    cand_table = candidate.get("attribution", {})
    for category in CATEGORIES:
        base_share = base_table.get(category, {}).get("share", 0.0)
        cand_share = cand_table.get(category, {}).get("share", 0.0)
        drift = cand_share - base_share
        if abs(drift) > threshold:
            line = (f"{category}: share moved "
                    f"{base_share:.1%} -> {cand_share:.1%}")
            # Waiting categories growing is a regression; processing
            # growing just means overheads shrank.
            if drift > 0 and category != "processing":
                regressions.append(line)
            else:
                notes.append(line)
    base_routes = baseline.get("routes", {})
    for name, cand_route in sorted(candidate.get("routes", {}).items()):
        base_route = base_routes.get(name)
        if base_route is None:
            notes.append(f"route {name!r} new in candidate")
            continue
        base_p95 = (base_route.get("latency_ns") or {}).get("p95")
        cand_p95 = (cand_route.get("latency_ns") or {}).get("p95")
        if base_p95 and cand_p95 and base_p95 > 0:
            change = (cand_p95 - base_p95) / base_p95
            if change > threshold:
                regressions.append(
                    f"route {name!r}: p95 latency grew {change:.1%} "
                    f"({base_p95:,.1f} ns -> {cand_p95:,.1f} ns)")
    return regressions, notes
