"""Canonical telemetry scenarios behind ``repro trace`` / ``repro metrics``.

Each scenario builds a small, deterministic simulation, runs it with
telemetry (and a :class:`~repro.telemetry.sampler.TimelineSampler`)
attached, and returns a :class:`ScenarioResult` whose summary is a
plain JSON-able dict.  Scenarios also run with telemetry *off* — the
bit-identity test pins that the summary (the model-observable output)
is unchanged either way, and the benchmark harness measures the
off-path overhead on the same builds.

The three scenarios reproduce timelines the paper discusses:

* ``t2`` — the Table 2 hierarchy walk: one core touching L1 / L2 /
  local DRAM / remote FAM, one span per level;
* ``starvation`` — §3 CFC credit starvation (claim C5): under
  :class:`~repro.pcie.credits.RampUpPolicy` a steadily hot flow
  compounds its grant while a quiet flow decays to the floor, then
  stalls hard when it finally bursts;
* ``interleave`` — §3 difference #3 (claim C3): 64B reads degrade
  drastically when interleaved with 16KB posted writes through a
  credit-agnostic FIFO egress.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

from .. import params
from ..fabric import Channel, Packet, PacketKind
from ..infra import ClusterSpec, build_cluster
from ..pcie.credits import (CreditDomain, RampUpPolicy,
                            StaticEqualPolicy)
from ..sim import Environment, run_proc
from ..topo import compile_topology, load_shape
from .attribution import build_report
from .causal import SERIALIZATION, CausalRecorder
from .core import Telemetry, span
from .sampler import DEFAULT_INTERVAL_NS, TimelineSampler

__all__ = ["ScenarioResult", "TELEMETRY_SCENARIOS",
           "STARVATION_POLICIES", "run_scenario",
           "run_scenario_build", "scenario_names", "starvation_build"]


@dataclasses.dataclass
class ScenarioResult:
    """One scenario run: the environment, its telemetry, the summary."""

    name: str
    env: Environment
    telemetry: Optional[Telemetry]
    summary: Dict[str, Any]

    def chrome_trace(self) -> Dict[str, Any]:
        if self.telemetry is None:
            raise ValueError(f"scenario {self.name!r} ran without telemetry")
        return self.telemetry.to_chrome_trace()

    def metrics_snapshot(self) -> Dict[str, Any]:
        if self.telemetry is None:
            raise ValueError(f"scenario {self.name!r} ran without telemetry")
        snapshot = self.telemetry.registry.snapshot()
        snapshot["scenario"] = self.name
        snapshot["summary"] = self.summary
        return snapshot

    @property
    def causal(self) -> Optional[CausalRecorder]:
        return self.telemetry.causal if self.telemetry is not None else None

    def attribution_report(self,
                           max_transactions: int = 32) -> Dict[str, Any]:
        """The ``repro why`` payload: critical paths + latency buckets."""
        if self.causal is None:
            raise ValueError(
                f"scenario {self.name!r} ran without causal tracing; "
                f"re-run with causal=True")
        return build_report(self.name, self.causal, summary=self.summary,
                            max_transactions=max_transactions)


# --------------------------------------------------------------------------
# t2: the Table 2 hierarchy walk
# --------------------------------------------------------------------------

def _build_t2(env: Environment) -> Dict[str, Any]:
    # The fabric comes from the committed t2_star shape (which the
    # tests pin equal to the descriptor a ClusterSpec(hosts=1) derives).
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, descriptor=load_shape("t2_star")))
    host = cluster.host(0)
    remote_base = host.remote_base("fam0")
    hot_line = 1 << 20
    mean_ns: Dict[str, float] = {}

    def level(label: str, addrs, is_write: bool):
        with span(env, "t2.level", track="t2", level=label,
                  accesses=len(addrs)):
            start = env.now
            for addr in addrs:
                yield from host.mem.access(addr, is_write)
            mean_ns[label] = round((env.now - start) / len(addrs), 3)

    # A 64KB set: twice the 32KB L1, well inside the 1MB L2 — after a
    # warm pass the half evicted from L1 gives clean L2 hits.
    l2_lines = [(3 << 20) + i * 64 for i in range(1024)]

    def walk():
        yield from host.mem.access(hot_line, False)     # warm the line
        yield from level("l1", [hot_line] * 32, False)
        with span(env, "t2.warm", track="t2", lines=len(l2_lines)):
            for addr in l2_lines:
                yield from host.mem.access(addr, False)
        yield from level("l2", l2_lines[:256], False)
        yield from level("local",
                         [(2 << 20) + i * 4096 for i in range(32)], False)
        yield from level("remote",
                         [remote_base + i * 4096 for i in range(32)],
                         False)

    run_proc(env, walk())
    return {"mean_ns": mean_ns,
            "remote_vs_local":
                round(mean_ns["remote"] / mean_ns["local"], 2)}


# --------------------------------------------------------------------------
# starvation: §3 CFC quiet-flow starvation under RampUpPolicy (C5)
# --------------------------------------------------------------------------

_SERIALIZE_NS = 40.0
_WINDOW = 8
_BURST_FLITS = 64


#: Credit policies `repro health --policy` can swap into the
#: starvation scenario: the pathological default vs the fair control.
STARVATION_POLICIES: Dict[str, Callable[[], Any]] = {
    "rampup": RampUpPolicy,
    "fair": StaticEqualPolicy,
}


def starvation_build(policy: str = "rampup", plane: Any = None
                     ) -> Callable[[Environment], Dict[str, Any]]:
    """The starvation builder with its credit policy swapped.

    ``rampup`` is the registered scenario (byte-identical to the
    default build); ``fair`` is the control the health SLO must stay
    quiet on — StaticEqualPolicy grants each flow budget/flows = 16
    credits, enough for the 8-worker window, so the quiet burst never
    stalls.  ``plane`` is an optional
    :class:`~repro.control.ControlPlane`: the build then registers a
    :class:`~repro.control.CreditActuator` over the egress domain so
    feedback rules targeting ``credits.egress0`` can act.
    """
    if policy not in STARVATION_POLICIES:
        raise ValueError(
            f"unknown starvation policy {policy!r}; choose from "
            f"{', '.join(sorted(STARVATION_POLICIES))}")
    return lambda env: _build_starvation(env, policy=policy,
                                         plane=plane)


def _build_starvation(env: Environment, policy: str = "rampup",
                      plane: Any = None) -> Dict[str, Any]:
    domain = CreditDomain(env, budget=32,
                          policy=STARVATION_POLICIES[policy](),
                          rebalance_ns=2_000.0, name="egress0")
    domain.register("hot")
    domain.register("quiet")
    domain.start()
    if plane is not None:
        from ..control import CreditActuator
        plane.add_actuator(CreditActuator(domain))
    stalled: Dict[str, float] = {"hot": 0.0, "quiet": 0.0}
    tel = env.telemetry
    causal = tel.causal if tel is not None else None
    site_serialize = "egress0.serialize"

    def worker(flow: str, remaining):
        # One of _WINDOW pipelined issuers: the concurrency is what
        # makes a floor-sized grant visibly starve the flow.  On causal
        # runs each flit is a sampled transaction root: route = flow,
        # credit waits recorded by the domain, serialization by us.
        while remaining[0] > 0:
            remaining[0] -= 1
            context = causal.sample_root() if causal is not None else None
            if context is not None:
                causal.txn_begin(context, env.now, "flit", flow)
            start = env.now
            yield domain.acquire(flow, trace=context)
            stalled[flow] += env.now - start
            if context is not None:
                serialize = causal.begin(context, env.now, SERIALIZATION,
                                         site_serialize)
            yield env.timeout(_SERIALIZE_NS)
            if context is not None:
                causal.end(context, env.now, serialize)
                causal.txn_end(context, env.now)
            domain.release(flow)

    def run_flow(flow: str, flits: int):
        remaining = [flits]
        workers = [env.process(worker(flow, remaining))
                   for _ in range(_WINDOW)]
        yield env.all_of(workers)

    def hot_flow():
        with span(env, "starvation.hot_stream", track="app.hot"):
            yield from run_flow("hot", 3000)

    def quiet_flow():
        # Idle through several rebalance periods: RampUpPolicy decays
        # the grant to the floor.  Then burst.
        yield env.timeout(12_000.0)
        with span(env, "starvation.quiet_burst", track="app.quiet"):
            start = env.now
            yield from run_flow("quiet", _BURST_FLITS)
            stalled["burst_ns"] = round(env.now - start, 1)

    procs = [env.process(hot_flow()), env.process(quiet_flow())]

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    # An unstarved burst streams at the full window: the ratio is the
    # C5 pathology the exported timeline makes visible.
    ideal = _BURST_FLITS * _SERIALIZE_NS / _WINDOW
    return {"quiet_stall_ns": round(stalled["quiet"], 1),
            "quiet_burst_ns": stalled["burst_ns"],
            "hot_stall_ns": round(stalled["hot"], 1),
            "burst_vs_ideal": round(stalled["burst_ns"] / ideal, 2),
            "final_grants": {name: domain.granted(name)
                             for name in domain.flow_names()}}


# --------------------------------------------------------------------------
# interleave: 64B reads vs 16KB posted writes through a FIFO egress (C3)
# --------------------------------------------------------------------------

def _build_interleave(env: Environment) -> Dict[str, Any]:
    # The committed interleave shape: reader + writer upstream of one
    # FIFO switch, the device behind a narrow x4 link.  Compiling it
    # is byte-identical to the historical hand-wired builder (pinned).
    topo = compile_topology(load_shape("interleave"), env).topology

    def handler(request):
        yield env.timeout(params.FAM_ACCESS_NS)
        if request.kind is PacketKind.IO_WR:
            return None   # posted
        return request.make_response()

    topo.port_of("dev").serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    read_ns = []

    def reader():
        port = topo.port_of("reader")
        for _ in range(24):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            with span(env, "interleave.read64", track="app.reader"):
                start = env.now
                yield from port.request(packet)
                read_ns.append(env.now - start)
            yield env.timeout(300.0)

    def writer():
        port = topo.port_of("writer")
        for _ in range(48):
            packet = Packet(kind=PacketKind.IO_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=16 * 1024)
            with span(env, "interleave.write16k", track="app.writer"):
                yield from port.post(packet)

    procs = [env.process(reader()), env.process(writer())]

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return {"reads": len(read_ns),
            "read64_mean_ns": round(sum(read_ns) / len(read_ns), 1),
            "read64_max_ns": round(max(read_ns), 1)}


TELEMETRY_SCENARIOS: Dict[str, Callable[[Environment], Dict[str, Any]]] = {
    "t2": _build_t2,
    "starvation": _build_starvation,
    "interleave": _build_interleave,
}


def scenario_names():
    from ..experiments import registry
    return registry.names(kind="scenario")


def run_scenario_build(name: str,
                       build: Callable[[Environment], Dict[str, Any]],
                       interval_ns: float = DEFAULT_INTERVAL_NS,
                       telemetry: bool = True,
                       causal: bool = False,
                       causal_sample: int = 1) -> ScenarioResult:
    """The scenario engine: run ``build`` under the requested tracing.

    With ``telemetry=False`` the identical model runs bare — the
    bit-identity test and the overhead benchmark both lean on this.
    With ``causal=True`` a :class:`CausalRecorder` rides along (one
    transaction root per ``causal_sample`` candidates); recording never
    touches the event queue, so summaries stay bit-identical either way.
    """
    if causal and not telemetry:
        raise ValueError("causal tracing needs telemetry=True")
    instance: Any = telemetry
    if causal:
        instance = Telemetry(causal=CausalRecorder(sample=causal_sample))
    env = Environment(telemetry=instance)
    if env.telemetry is not None:
        TimelineSampler(env, interval_ns=interval_ns).start()
    summary = build(env)
    return ScenarioResult(name=name, env=env, telemetry=env.telemetry,
                          summary=summary)


def run_scenario(name: str,
                 interval_ns: float = DEFAULT_INTERVAL_NS,
                 telemetry: bool = True,
                 causal: bool = False,
                 causal_sample: int = 1) -> ScenarioResult:
    """Run one registered scenario; raises ValueError on unknown names.

    Names resolve through the experiment registry (scenario-kind
    entries), so anything registered there — including out-of-tree
    additions — is reachable from ``repro trace``/``metrics``/``why``.
    """
    from ..experiments import registry
    defn = registry.get(name, kind="scenario")
    return run_scenario_build(name, defn.scenario_build,
                              interval_ns=interval_ns,
                              telemetry=telemetry, causal=causal,
                              causal_sample=causal_sample)
