"""Streaming fabric health: windowed series, SLO burn rates, alerts.

``repro metrics`` snapshots at end-of-run and ``repro why`` attributes
latency offline; nothing watches the fabric *while it runs*.  This
module turns the existing telemetry machinery into live, windowed
signals — the layer the ROADMAP's closed-loop feedback policies
subscribe to:

* **windowed series** — tumbling sim-time windows over every metric in
  the registry: counter deltas, gauge levels, and per-window histogram
  deltas (so p50/p95/p99 are *of the window*, not cumulative), via
  :meth:`~repro.telemetry.metrics.Histogram.snapshot_delta`;
* **incremental attribution** — per-window credit_stall / arbitration /
  queueing shares per route, streamed from the causal flight recorder
  through its ``tap`` hook and finalized as windows close, reusing
  :class:`~repro.telemetry.attribution.TransactionTrace`'s precedence
  sweep — summed across windows the numbers equal the offline
  ``repro why`` report exactly (pinned by tests);
* **SLOs + burn-rate alerts** — a declarative JSON SloSpec (objective,
  target, alert rules); each window updates the error-budget burn rate
  and multi-window rules in the Google-SRE style fire/clear with exact
  sim-time stamps;
* **anomaly detection** — deterministic EWMA + threshold rules over
  any windowed series.

Determinism contract (the same one telemetry, causal and sanitize
honor): the monitor is a *pure observer*.  Windows close from a
:meth:`~repro.telemetry.core.Telemetry.add_ticker` callback inside the
TimelineSampler's existing daemon process, and the flight-recorder tap
only mirrors appends — health on/off never schedules a kernel event,
so ``events_processed`` and every scenario summary are bit-identical
either way (pinned by tests).

Subscribing a policy (PR 10+): ``monitor.subscribe(fn)`` delivers each
closed window record — ``fn(window)`` — after its SLO/anomaly pass.
A pure-observer subscriber keeps the run bit-identical; a *feedback*
policy that acts on what it sees (credit re-allocation, movement
throttling) changes the model deliberately and owns that divergence.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .attribution import SpanRecord, TransactionTrace
from .causal import CATEGORIES, CausalRecorder
from .core import Telemetry
from .metrics import Counter, Gauge, Histogram
from .sampler import DEFAULT_INTERVAL_NS, TimelineSampler

__all__ = ["HealthError", "SloSpec", "HealthMonitor", "run_health",
           "default_slo_spec", "validate_health_report",
           "DEFAULT_WINDOW_NS"]

#: Default tumbling-window width (ns): one credit rebalance period, so
#: windowed stall shares line up with the control-plane cadence they
#: will eventually drive.
DEFAULT_WINDOW_NS = 2_000.0

#: float-noise guard for window-edge comparisons
_EPS = 1e-9

_OBJECTIVE_KINDS = ("attribution_share", "counter_ratio", "latency")


class HealthError(ValueError):
    """A health spec or report violated its contract."""


# --------------------------------------------------------------------------
# the declarative SloSpec
# --------------------------------------------------------------------------

class _Objective:
    """One parsed SLI objective: what fraction of a window was good.

    ``where`` is the JSON-path location errors carry (the topology
    loader's convention), e.g. ``slos[0].objective``.
    """

    __slots__ = ("kind", "fields")

    def __init__(self, payload: Dict[str, Any],
                 where: str = "objective") -> None:
        if not isinstance(payload, dict):
            raise HealthError(
                f"{where}: expected a JSON object, got "
                f"{type(payload).__name__}")
        kind = payload.get("kind")
        if kind not in _OBJECTIVE_KINDS:
            raise HealthError(
                f"{where}.kind: unknown objective kind {kind!r}; "
                f"choose from {', '.join(_OBJECTIVE_KINDS)}")
        self.kind = kind
        required = {"attribution_share": ("route", "category"),
                    "counter_ratio": ("bad", "total"),
                    "latency": ("metric", "threshold_ns")}[kind]
        self.fields: Dict[str, Any] = {}
        for key in required:
            if key not in payload:
                raise HealthError(
                    f"{where}.{key}: required by objective kind "
                    f"{kind!r}")
            self.fields[key] = payload[key]
        if kind == "attribution_share" \
                and self.fields["category"] not in CATEGORIES:
            raise HealthError(
                f"{where}.category: unknown attribution category "
                f"{self.fields['category']!r}; choose from "
                f"{', '.join(CATEGORIES)}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.fields}

    def bad_fraction(self, window: Dict[str, Any]) -> Optional[float]:
        """The window's bad fraction in [0, 1], or None for no data."""
        if self.kind == "attribution_share":
            route = window["attribution"].get(self.fields["route"])
            if route is None:
                return None
            total = sum(route["ns"].values())
            if total <= _EPS:
                return None
            return route["ns"][self.fields["category"]] / total
        if self.kind == "counter_ratio":
            bad = _series_value(window["counters"], self.fields["bad"],
                                "counter")
            total = _series_value(window["counters"],
                                  self.fields["total"], "counter")
            if total <= 0:
                return None
            return bad / total
        # latency: share of the window's observations at or above the
        # threshold, at bucket granularity (a bucket is bad when it
        # lies entirely at/above threshold_ns).
        delta = _series_value(window["histograms"],
                              self.fields["metric"], "histogram")
        if not delta["count"]:
            return None
        threshold = self.fields["threshold_ns"]
        bad = sum(row["count"] for row in delta["buckets"]
                  if row["low"] >= threshold)
        return bad / delta["count"]


def _series_value(table: Dict[str, Any], name: str, kind: str) -> Any:
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table)) or "(none)"
        raise HealthError(
            f"unknown {kind} metric {name!r} in SLO objective; "
            f"registered: {known}") from None


class _AlertRule:
    """One multi-window burn-rate rule with its episode history."""

    __slots__ = ("name", "burn_rate", "long_windows", "short_windows",
                 "episodes", "active")

    def __init__(self, payload: Dict[str, Any],
                 where: str = "alert") -> None:
        if not isinstance(payload, dict):
            raise HealthError(
                f"{where}: expected a JSON object, got "
                f"{type(payload).__name__}")
        self.name = payload.get("name", "burn")
        try:
            self.burn_rate = float(payload["burn_rate"])
            self.long_windows = int(payload.get("long_windows", 2))
            self.short_windows = int(payload.get("short_windows", 1))
        except (KeyError, TypeError, ValueError):
            raise HealthError(
                f"{where}: alert rule {self.name!r} needs numeric "
                "burn_rate (and optional integer "
                "long_windows/short_windows)") from None
        if self.burn_rate <= 0:
            raise HealthError(
                f"{where}.burn_rate: must be > 0, got "
                f"{self.burn_rate}")
        if not 1 <= self.short_windows <= self.long_windows:
            raise HealthError(
                f"{where}: need 1 <= short_windows <= long_windows, "
                f"got {self.short_windows} / {self.long_windows}")
        self.episodes: List[Dict[str, Optional[float]]] = []
        self.active = False

    def update(self, burns: List[Optional[float]], t: float) -> None:
        """Re-evaluate after a window close at sim time ``t``.

        Lookback means skip no-data windows (an idle route neither
        burns budget nor clears an alert); a lookback with no data at
        all reads as zero burn.
        """
        def mean(lookback: int) -> float:
            values = [b for b in burns[-lookback:] if b is not None]
            return sum(values) / len(values) if values else 0.0

        long_mean = mean(self.long_windows)
        short_mean = mean(self.short_windows)
        if not self.active and long_mean >= self.burn_rate \
                and short_mean >= self.burn_rate:
            self.active = True
            self.episodes.append({"fired_at": t, "cleared_at": None})
        elif self.active and short_mean < self.burn_rate:
            self.active = False
            self.episodes[-1]["cleared_at"] = t

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.name, "burn_rate": self.burn_rate,
                "long_windows": self.long_windows,
                "short_windows": self.short_windows,
                "active": self.active,
                "episodes": [dict(e) for e in self.episodes]}


class _Slo:
    """One SLO: objective + target + its alert rules and burn series."""

    __slots__ = ("name", "objective", "target", "budget", "rules",
                 "sli", "burn")

    def __init__(self, payload: Dict[str, Any],
                 where: str = "slo") -> None:
        if not isinstance(payload, dict):
            raise HealthError(
                f"{where}: expected a JSON object, got "
                f"{type(payload).__name__}")
        name = payload.get("name")
        if not name or not isinstance(name, str):
            raise HealthError(
                f"{where}.name: every slo needs a non-empty string "
                "name")
        self.name = name
        self.objective = _Objective(payload.get("objective", {}),
                                    where=f"{where}.objective")
        try:
            self.target = float(payload["target"])
        except (KeyError, TypeError, ValueError):
            raise HealthError(
                f"{where}.target: slo {name!r} needs a numeric "
                "'target'") from None
        if not 0.0 < self.target < 1.0:
            raise HealthError(
                f"{where}.target: must be in (0, 1), got "
                f"{self.target}")
        self.budget = 1.0 - self.target
        self.rules = [_AlertRule(rule, where=f"{where}.alerts[{i}]")
                      for i, rule in
                      enumerate(payload.get("alerts", []))]
        self.sli: List[Optional[float]] = []
        self.burn: List[Optional[float]] = []

    def observe(self, window: Dict[str, Any], t: float) -> None:
        bad = self.objective.bad_fraction(window)
        if bad is None:
            self.sli.append(None)
            self.burn.append(None)
        else:
            self.sli.append(1.0 - bad)
            self.burn.append(bad / self.budget)
        for rule in self.rules:
            rule.update(self.burn, t)


class _AnomalyRule:
    """Deterministic EWMA + threshold detector over one window series."""

    __slots__ = ("name", "series", "alpha", "factor", "warmup", "floor",
                 "_ewma", "_seen", "points")

    def __init__(self, payload: Dict[str, Any],
                 where: str = "anomaly") -> None:
        if not isinstance(payload, dict):
            raise HealthError(
                f"{where}: expected a JSON object, got "
                f"{type(payload).__name__}")
        name = payload.get("name")
        if not name or not isinstance(name, str):
            raise HealthError(
                f"{where}.name: every anomaly rule needs a non-empty "
                "string name")
        self.name = name
        series = payload.get("series")
        if not isinstance(series, dict) or "kind" not in series:
            raise HealthError(
                f"{where}.series: anomaly rule {name!r} needs a "
                "series object with a 'kind'")
        if series["kind"] not in ("counter_delta", "attribution_share"):
            raise HealthError(
                f"{where}.series.kind: unknown series kind "
                f"{series['kind']!r}; choose from counter_delta, "
                "attribution_share")
        self.series = dict(series)
        self.alpha = float(payload.get("alpha", 0.3))
        self.factor = float(payload.get("factor", 3.0))
        self.warmup = int(payload.get("warmup", 2))
        self.floor = float(payload.get("floor", 0.0))
        if not 0.0 < self.alpha <= 1.0:
            raise HealthError(
                f"{where}.alpha: must be in (0, 1], got {self.alpha}")
        self._ewma: Optional[float] = None
        self._seen = 0
        self.points: List[Dict[str, float]] = []

    def _value(self, window: Dict[str, Any]) -> Optional[float]:
        if self.series["kind"] == "counter_delta":
            return _series_value(window["counters"],
                                 self.series.get("metric", ""),
                                 "counter")
        route = window["attribution"].get(self.series.get("route", ""))
        if route is None:
            return None
        total = sum(route["ns"].values())
        if total <= _EPS:
            return None
        return route["ns"][self.series.get("category", "")] / total

    def observe(self, window: Dict[str, Any], index: int,
                t: float) -> None:
        value = self._value(window)
        if value is None:
            return
        if self._seen >= self.warmup and value > self.floor \
                and self._ewma is not None \
                and value > self.factor * self._ewma:
            self.points.append({"window": index, "t": t,
                                "value": round(value, 6),
                                "ewma": round(self._ewma, 6)})
        self._ewma = value if self._ewma is None else \
            self.alpha * value + (1.0 - self.alpha) * self._ewma
        self._seen += 1


class SloSpec:
    """A parsed health spec: SLOs with alert rules + anomaly rules.

    The JSON shape::

        {"schema": 1,
         "slos": [{"name": ..., "objective": {"kind": ...},
                   "target": 0.9, "alerts": [{"name": ...,
                   "burn_rate": 4.0, "long_windows": 2,
                   "short_windows": 1}]}],
         "anomaly": [{"name": ..., "series": {"kind": ...}, ...}]}

    Objective kinds: ``attribution_share`` (route + category),
    ``counter_ratio`` (bad / total counter deltas) and ``latency``
    (histogram metric + threshold_ns, bucket-granular).
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        if not isinstance(payload, dict):
            raise HealthError("slo spec must be a JSON object")
        if payload.get("schema", 1) != 1:
            raise HealthError(
                f"unsupported slo spec schema {payload.get('schema')!r}")
        self.slos = [_Slo(item, where=f"slos[{i}]")
                     for i, item in enumerate(payload.get("slos", []))]
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise HealthError(f"duplicate slo names in spec: {names}")
        self.anomalies = [
            _AnomalyRule(item, where=f"anomaly[{i}]")
            for i, item in enumerate(payload.get("anomaly", []))]

    @classmethod
    def load(cls, path) -> "SloSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise HealthError(f"cannot read slo spec {path}: {exc}") \
                from exc
        except json.JSONDecodeError as exc:
            raise HealthError(f"slo spec {path} is not JSON: {exc}") \
                from exc
        return cls(payload)


def default_slo_spec(scenario: str) -> Dict[str, Any]:
    """The built-in spec ``repro health`` uses when none is given.

    The starvation scenario gets the canonical pair: a quiet-route
    credit-stall SLO whose fast-burn rule is the §3 C5 pager (fires
    under RampUpPolicy, stays quiet under fair StaticEqualPolicy —
    golden-pinned), plus an EWMA spike detector on the egress stall
    counter.  The other scenarios default to windows-only reports
    (pass ``--slo`` for custom objectives).
    """
    if scenario == "starvation":
        return {
            "schema": 1,
            "slos": [
                {"name": "quiet_route_stall",
                 "objective": {"kind": "attribution_share",
                               "route": "quiet",
                               "category": "credit_stall"},
                 "target": 0.90,
                 "alerts": [{"name": "fast_burn", "burn_rate": 4.0,
                             "long_windows": 2, "short_windows": 1}]},
            ],
            "anomaly": [
                {"name": "stall_spike",
                 "series": {"kind": "counter_delta",
                            "metric": "credits.egress0.stalls"},
                 "alpha": 0.3, "factor": 3.0, "warmup": 2,
                 "floor": 4.0},
            ],
        }
    return {"schema": 1, "slos": [], "anomaly": []}


# --------------------------------------------------------------------------
# the monitor
# --------------------------------------------------------------------------

class HealthMonitor:
    """Closes tumbling windows over one telemetry-instrumented run.

    Construct against a :class:`Telemetry` (with a causal recorder)
    *before* the model is built, so the recorder tap sees every causal
    record.  Windows close from the TimelineSampler's ticker hook;
    ``window_ns`` must be a multiple of the sampler interval so window
    edges land exactly on tick times.  Call :meth:`finalize` after the
    run to flush the trailing partial window.
    """

    def __init__(self, telemetry: Telemetry, scenario: str,
                 window_ns: float = DEFAULT_WINDOW_NS,
                 spec: Optional[SloSpec] = None) -> None:
        if window_ns <= 0:
            raise ValueError(
                f"window_ns must be > 0, got {window_ns}")
        if telemetry.causal is None:
            raise ValueError(
                "HealthMonitor needs a causal recorder; construct "
                "Telemetry(causal=CausalRecorder(...))")
        self.telemetry = telemetry
        self.scenario = scenario
        self.window_ns = window_ns
        self.spec = spec if spec is not None \
            else SloSpec(default_slo_spec(scenario))
        self.windows: List[Dict[str, Any]] = []
        self.analyzed = 0
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._boundary = window_ns
        self._prev_counters: Dict[str, float] = {}
        self._prev_hists: Dict[str, Dict[str, Any]] = {}
        # Incremental flight-recorder state: mirrors
        # attribution.collect_transactions, fed by the tap instead of
        # an end-of-run ring scan.
        self._txns: Dict[int, Dict[str, Any]] = {}
        self._open_spans: Dict[int, SpanRecord] = {}
        self._pending: List[Tuple] = []
        telemetry.causal.tap = self._pending.append
        telemetry.add_ticker(self._tick)
        self._finalized = False

    def subscribe(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Deliver every closed window record to ``fn(window)``.

        This is the feedback-policy hook: the record carries the
        window's counter deltas, gauge levels, histogram deltas and
        per-route attribution.  Subscribers run after the SLO/anomaly
        pass, inside the sampler tick (sim time == the window edge).
        """
        self._subscribers.append(fn)

    # -- streaming ---------------------------------------------------------

    def _tick(self, now: float) -> None:
        while now >= self._boundary - _EPS:
            self._close_window(self._boundary)
            self._boundary += self.window_ns

    def finalize(self, now: float) -> None:
        """Flush the trailing partial window at the end of the run."""
        if self._finalized:
            return
        self._tick(now)
        if now > self._boundary - self.window_ns + _EPS:
            self._close_window(now, final=True)
        self._finalized = True

    def _drain_pending(self) -> None:
        txns, open_spans = self._txns, self._open_spans
        for record in self._pending:
            tag = record[0]
            if tag == "B":
                _, ts, tid, sid, parent, category, site = record
                txn = txns.get(tid)
                if txn is not None:
                    span = SpanRecord(sid=sid, parent=parent,
                                      category=category, site=site,
                                      t0=ts, t1=ts)
                    open_spans[sid] = span
                    txn["spans"].append(span)
            elif tag == "E":
                _, ts, tid, sid = record
                span = open_spans.pop(sid, None)
                if span is not None:
                    span.t1 = ts
            elif tag == "T":
                _, ts, tid, kind, route = record
                txns[tid] = {"begin": ts, "end": None, "kind": kind,
                             "route": route, "spans": []}
            elif tag == "F":
                _, ts, tid = record
                txn = txns.get(tid)
                if txn is not None:
                    txn["end"] = ts
        self._pending.clear()

    def _close_window(self, t1: float, final: bool = False) -> None:
        index = len(self.windows)
        t0 = index * self.window_ns
        registry = self.telemetry.registry
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                counters[name] = metric.value \
                    - self._prev_counters.get(name, 0.0)
                self._prev_counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[name] = metric.snapshot_delta(
                    self._prev_hists.get(name))
                self._prev_hists[name] = metric.to_dict()
        self._drain_pending()
        attribution: Dict[str, Dict[str, Any]] = {}
        done = [tid for tid in sorted(self._txns)
                if self._txns[tid]["end"] is not None
                and self._txns[tid]["end"] <= t1 + _EPS]
        for tid in done:
            txn = self._txns.pop(tid)
            for span in txn["spans"]:
                if span.t1 < span.t0:
                    span.t1 = span.t0
                if span.sid in self._open_spans:   # wait still blocked
                    span.t1 = max(span.t0, txn["end"])   # at txn end:
                    del self._open_spans[span.sid]       # clamp, like
            trace = TransactionTrace(                    # offline
                trace_id=tid, kind=txn["kind"], route=txn["route"],
                begin=txn["begin"], end=txn["end"],
                spans=txn["spans"], marks=[])
            route = attribution.setdefault(
                txn["route"],
                {"txns": 0,
                 "ns": {category: 0.0 for category in CATEGORIES}})
            route["txns"] += 1
            for category, ns in trace.attribution().items():
                route["ns"][category] += ns
            self.analyzed += 1
        window = {"index": index, "t0": t0, "t1": t1, "final": final,
                  "counters": counters, "gauges": gauges,
                  "histograms": histograms, "attribution": attribution}
        self.windows.append(window)
        for slo in self.spec.slos:
            slo.observe(window, t1)
        for rule in self.spec.anomalies:
            rule.observe(window, index, t1)
        for fn in self._subscribers:
            fn(window)

    # -- the report --------------------------------------------------------

    def build_report(self, policy: str = "rampup",
                     interval_ns: float = DEFAULT_INTERVAL_NS,
                     summary: Optional[Dict[str, Any]] = None,
                     control: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """The schema-stable ``repro health --json`` payload."""
        recorder = self.telemetry.causal
        windows = [{"index": w["index"], "t0": round(w["t0"], 3),
                    "t1": round(w["t1"], 3), "final": w["final"]}
                   for w in self.windows]
        counter_names = sorted({name for w in self.windows
                                for name in w["counters"]})
        gauge_names = sorted({name for w in self.windows
                              for name in w["gauges"]})
        hist_names = sorted({name for w in self.windows
                             for name in w["histograms"]})

        def column(kind: str, name: str) -> List[Any]:
            return [w[kind].get(name) for w in self.windows]

        route_names = sorted({route for w in self.windows
                              for route in w["attribution"]})
        routes: Dict[str, Any] = {}
        for route in route_names:
            txns = []
            ns: Dict[str, List[float]] = {c: [] for c in CATEGORIES}
            share: Dict[str, List[float]] = {c: [] for c in CATEGORIES}
            for w in self.windows:
                entry = w["attribution"].get(route)
                txns.append(entry["txns"] if entry else 0)
                total = sum(entry["ns"].values()) if entry else 0.0
                for category in CATEGORIES:
                    value = entry["ns"][category] if entry else 0.0
                    ns[category].append(round(value, 3))
                    share[category].append(
                        round(value / total, 6) if total > _EPS else 0.0)
            routes[route] = {"txns": txns, "ns": ns, "share": share}

        payload: Dict[str, Any] = {
            "schema": 1,
            "tool": "repro-health",
            "scenario": self.scenario,
            "policy": policy,
            "window_ns": self.window_ns,
            "interval_ns": interval_ns,
            "windows": windows,
            "series": {
                "counters": {name: column("counters", name)
                             for name in counter_names},
                "gauges": {name: column("gauges", name)
                           for name in gauge_names},
                "histograms": {name: column("histograms", name)
                               for name in hist_names},
            },
            "attribution": {"routes": routes},
            "slos": [
                {"name": slo.name,
                 "objective": slo.objective.to_dict(),
                 "target": slo.target,
                 "budget": round(slo.budget, 6),
                 "sli": [None if v is None else round(v, 6)
                         for v in slo.sli],
                 "burn": [None if v is None else round(v, 4)
                          for v in slo.burn],
                 "alerts": [rule.to_dict() for rule in slo.rules]}
                for slo in self.spec.slos
            ],
            "anomalies": [
                {"name": rule.name, "series": dict(rule.series),
                 "alpha": rule.alpha, "factor": rule.factor,
                 "warmup": rule.warmup, "floor": rule.floor,
                 "points": [dict(p) for p in rule.points]}
                for rule in self.spec.anomalies
            ],
            "trace": {
                "sample": recorder.sample,
                "roots_seen": recorder.roots_seen,
                "started": recorder.started,
                "finished": recorder.finished,
                "analyzed": self.analyzed,
                "pending": len(self._txns),
            },
        }
        if control is not None:
            payload["control"] = control
        if summary is not None:
            payload["summary"] = summary
        return payload


# --------------------------------------------------------------------------
# the runner behind `repro health`
# --------------------------------------------------------------------------

def run_health(scenario: str, policy: str = "rampup",
               window_ns: float = DEFAULT_WINDOW_NS,
               interval_ns: float = DEFAULT_INTERVAL_NS,
               spec: Optional[SloSpec] = None,
               causal_sample: int = 1,
               feedback=None):
    """Run one scenario under the health monitor.

    Returns ``(ScenarioResult, report)``.  ``policy`` selects the
    starvation scenario's credit policy (``rampup`` — the pathological
    default — or ``fair``); other scenarios accept only ``rampup``.

    ``feedback`` is an optional
    :class:`~repro.control.FeedbackPolicy`: a
    :class:`~repro.control.ControlPlane` then rides the monitor's
    window stream and applies matching rules through the scenario's
    registered actuators (currently the starvation scenario's
    ``credits.egress0``), and the report gains a ``control`` section
    with the sim-time-stamped action log.
    """
    remainder = window_ns % interval_ns
    if min(remainder, abs(interval_ns - remainder)) > _EPS \
            or window_ns < interval_ns:
        raise HealthError(
            f"window_ns ({window_ns}) must be a positive multiple of "
            f"interval_ns ({interval_ns}) so window edges land on "
            "sampler ticks")
    from ..experiments import registry as _registry
    from .scenarios import ScenarioResult, starvation_build
    defn = _registry.get(scenario, kind="scenario")
    plane = None
    if feedback is not None:
        if scenario != "starvation":
            raise HealthError(
                "feedback policies are wired for the starvation "
                f"scenario only; {scenario!r} registers no actuators")
        from ..control import ControlPlane
        plane = ControlPlane(feedback)
    if scenario == "starvation":
        build = starvation_build(policy, plane=plane)
    elif policy != "rampup":
        raise HealthError(
            "policy applies to the starvation scenario only; "
            f"{scenario!r} has no credit-policy knob")
    else:
        build = defn.scenario_build
    telemetry = Telemetry(causal=CausalRecorder(sample=causal_sample))
    monitor = HealthMonitor(telemetry, scenario=scenario,
                            window_ns=window_ns, spec=spec)
    if plane is not None:
        plane.attach(monitor)
    from ..sim import Environment
    env = Environment(telemetry=telemetry)
    TimelineSampler(env, interval_ns=interval_ns).start()
    summary = build(env)
    monitor.finalize(env.now)
    result = ScenarioResult(name=scenario, env=env, telemetry=telemetry,
                            summary=summary)
    report = monitor.build_report(policy=policy,
                                  interval_ns=interval_ns,
                                  summary=summary,
                                  control=plane.report()
                                  if plane is not None else None)
    return result, report


# --------------------------------------------------------------------------
# schema validation (the CI gate)
# --------------------------------------------------------------------------

def validate_health_report(payload: Dict[str, Any]) -> int:
    """Validate a ``repro health --json`` payload; returns the window
    count.  Raises :class:`HealthError` on schema or accounting
    violations: misaligned series lengths, non-contiguous windows,
    alert episodes outside window edges, or route shares that do not
    sum to one.
    """
    def fail(message: str) -> None:
        raise HealthError(message)

    if not isinstance(payload, dict):
        fail("payload must be a JSON object")
    if payload.get("schema") != 1 or payload.get("tool") != "repro-health":
        fail("payload is not a repro-health schema-1 document")
    for key in ("scenario", "policy", "window_ns", "windows", "series",
                "attribution", "slos", "anomalies", "trace"):
        if key not in payload:
            fail(f"missing top-level key {key!r}")
    windows = payload["windows"]
    count = len(windows)
    width = payload["window_ns"]
    edges = set()
    for i, window in enumerate(windows):
        if window["index"] != i:
            fail(f"window {i}: index {window['index']} out of order")
        if abs(window["t0"] - i * width) > 1e-3:
            fail(f"window {i}: t0 {window['t0']} != {i * width}")
        if window["t1"] <= window["t0"]:
            fail(f"window {i}: empty interval "
                 f"[{window['t0']}, {window['t1']}]")
        if not window["final"] and abs(window["t1"] - (i + 1) * width) \
                > 1e-3:
            fail(f"window {i}: non-final t1 {window['t1']} off-grid")
        if window["final"] and i != count - 1:
            fail(f"window {i}: final window before the last")
        edges.add(window["t1"])
    series = payload["series"]
    for kind in ("counters", "gauges", "histograms"):
        for name, column in series.get(kind, {}).items():
            if len(column) != count:
                fail(f"series.{kind}[{name!r}]: {len(column)} points "
                     f"for {count} windows")
    for route, data in payload["attribution"]["routes"].items():
        for key in ("txns", "ns", "share"):
            if key not in data:
                fail(f"route {route!r}: missing {key!r}")
        if len(data["txns"]) != count:
            fail(f"route {route!r}: txns length {len(data['txns'])}")
        if set(data["ns"]) != set(CATEGORIES):
            fail(f"route {route!r}: categories {sorted(data['ns'])}")
        for i in range(count):
            total_share = sum(data["share"][c][i] for c in CATEGORIES)
            total_ns = sum(data["ns"][c][i] for c in CATEGORIES)
            if total_ns > 1e-3 and abs(total_share - 1.0) > 1e-3:
                fail(f"route {route!r} window {i}: shares sum to "
                     f"{total_share}")
            if total_ns <= 1e-3 and data["txns"][i] \
                    and total_share != 0.0:
                fail(f"route {route!r} window {i}: share without ns")
    for slo in payload["slos"]:
        for key in ("name", "objective", "target", "budget", "sli",
                    "burn", "alerts"):
            if key not in slo:
                fail(f"slo missing key {key!r}")
        if len(slo["sli"]) != count or len(slo["burn"]) != count:
            fail(f"slo {slo['name']!r}: series length mismatch")
        for alert in slo["alerts"]:
            previous = -1.0
            for episode in alert["episodes"]:
                fired = episode["fired_at"]
                cleared = episode["cleared_at"]
                if fired not in edges:
                    fail(f"slo {slo['name']!r} alert "
                         f"{alert['rule']!r}: fired_at {fired} is not "
                         "a window edge")
                if fired <= previous:
                    fail(f"slo {slo['name']!r} alert "
                         f"{alert['rule']!r}: episodes out of order")
                if cleared is not None:
                    if cleared not in edges or cleared <= fired:
                        fail(f"slo {slo['name']!r} alert "
                             f"{alert['rule']!r}: bad cleared_at "
                             f"{cleared}")
                    previous = cleared
                else:
                    previous = fired
            open_episodes = [e for e in alert["episodes"]
                             if e["cleared_at"] is None]
            if len(open_episodes) > 1 or \
                    (open_episodes and not alert["active"]):
                fail(f"slo {slo['name']!r} alert {alert['rule']!r}: "
                     "inconsistent open episodes vs active flag")
    for rule in payload["anomalies"]:
        for point in rule["points"]:
            if not 0 <= point["window"] < count:
                fail(f"anomaly {rule['name']!r}: point outside "
                     "windows")
            if point["t"] not in edges:
                fail(f"anomaly {rule['name']!r}: t {point['t']} is "
                     "not a window edge")
    control = payload.get("control")
    if control is not None:
        for key in ("policy", "actuators", "actions"):
            if key not in control:
                fail(f"control: missing key {key!r}")
        final_edges = {w["t1"] for w in windows if w["final"]}
        previous_t = float("-inf")
        for i, action in enumerate(control["actions"]):
            for key in ("t", "actuator", "rule", "set", "before",
                        "after", "window"):
                if key not in action:
                    fail(f"control.actions[{i}]: missing key {key!r}")
            if action["t"] not in edges:
                fail(f"control.actions[{i}]: t {action['t']} is not "
                     "a window edge")
            if action["t"] in final_edges:
                fail(f"control.actions[{i}]: acted on the final "
                     "(post-run) window")
            if action["t"] < previous_t:
                fail(f"control.actions[{i}]: actions out of order")
            previous_t = action["t"]
            if not 0 <= action["window"] < count:
                fail(f"control.actions[{i}]: window "
                     f"{action['window']} outside report")
    trace = payload["trace"]
    for key in ("sample", "started", "finished", "analyzed", "pending"):
        if not isinstance(trace.get(key), int):
            fail(f"trace.{key} must be an integer")
    if trace["analyzed"] + trace["pending"] > trace["started"]:
        fail("trace accounting: analyzed + pending > started")
    return count
