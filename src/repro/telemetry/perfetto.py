"""Chrome trace-event export (the JSON Perfetto and about:tracing load).

The format is the *JSON Array/Object Format* documented by the Chrome
tracing project: a top-level object with a ``traceEvents`` list whose
entries carry ``ph`` (phase), ``ts`` (microseconds), ``pid``/``tid``,
``name``, ``cat`` and ``args``.  We emit:

* ``M`` metadata events naming the process and one thread per
  telemetry *track* (per-component track assignment);
* ``B``/``E`` duration events for spans;
* ``i`` instant events (thread scope);
* ``C`` counter events for sampled probe timelines, one counter track
  per probe name.

Sim time is nanoseconds; Chrome ``ts`` is microseconds, so exported
timestamps are ``ns / 1000`` (floats are allowed by the format and
render fine in Perfetto).

:func:`validate_chrome_trace` is the schema check CI runs against the
exported file — deliberately strict about the invariants a viewer
relies on (phase-specific required keys, per-track B/E nesting,
non-negative timestamps).
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["to_chrome_trace", "validate_chrome_trace",
           "ChromeTraceError", "PID"]

#: The whole simulation exports as one Perfetto "process".
PID = 1

_NS_PER_US = 1000.0


class ChromeTraceError(ValueError):
    """The payload is not a valid Chrome trace-event file."""


def to_chrome_trace(telemetry) -> Dict[str, Any]:
    """Build the Chrome trace-event payload from a Telemetry's events."""
    trace_events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": PID, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]
    for track_name, tid in sorted(telemetry.track_names().items(),
                                  key=lambda item: item[1]):
        trace_events.append({
            "ph": "M", "pid": PID, "tid": tid, "name": "thread_name",
            "args": {"name": track_name},
        })

    for event in telemetry.events:
        phase = event[0]
        if phase == "B":
            _, ts, tid, name, args = event
            record = {"ph": "B", "ts": ts / _NS_PER_US, "pid": PID,
                      "tid": tid, "name": name, "cat": "sim"}
            if args:
                record["args"] = args
        elif phase == "E":
            _, ts, tid = event
            record = {"ph": "E", "ts": ts / _NS_PER_US, "pid": PID,
                      "tid": tid}
        elif phase == "i":
            _, ts, tid, name, args = event
            record = {"ph": "i", "ts": ts / _NS_PER_US, "pid": PID,
                      "tid": tid, "name": name, "cat": "sim", "s": "t"}
            if args:
                record["args"] = args
        elif phase == "C":
            _, ts, name, value = event
            record = {"ph": "C", "ts": ts / _NS_PER_US, "pid": PID,
                      "name": name, "cat": "sim",
                      "args": {"value": value}}
        else:  # pragma: no cover - new phases must extend the exporter
            raise ChromeTraceError(f"unknown internal phase {phase!r}")
        trace_events.append(record)

    return {
        "displayTimeUnit": "ns",
        "otherData": {"tool": "repro-telemetry", "schema": 1},
        "traceEvents": trace_events,
    }


def validate_chrome_trace(payload: Any) -> int:
    """Assert ``payload`` is a loadable trace; returns the event count.

    Raises :class:`ChromeTraceError` describing the first problem.
    This is the check the CI telemetry smoke runs on the exported
    file, and what the schema tests call.
    """
    if not isinstance(payload, dict):
        raise ChromeTraceError("top level must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ChromeTraceError("traceEvents must be a non-empty list")

    open_spans: Dict[Any, List[str]] = {}
    last_ts: Dict[Any, float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ChromeTraceError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in ("M", "B", "E", "i", "C", "X"):
            raise ChromeTraceError(f"{where}: unknown phase {phase!r}")
        if "pid" not in event:
            raise ChromeTraceError(f"{where}: missing pid")
        if phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                raise ChromeTraceError(
                    f"{where}: metadata name must be process_name or "
                    f"thread_name, got {event.get('name')!r}")
            if "name" not in event.get("args", {}):
                raise ChromeTraceError(f"{where}: metadata missing "
                                       "args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ChromeTraceError(f"{where}: bad ts {ts!r}")
        if phase in ("B", "i", "C", "X") and not event.get("name"):
            raise ChromeTraceError(f"{where}: missing name")
        if phase in ("B", "E", "i") and "tid" not in event:
            raise ChromeTraceError(f"{where}: missing tid")
        if phase == "C" and "args" not in event:
            raise ChromeTraceError(f"{where}: counter missing args")
        key = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(key, 0.0) - 1e-9:
            raise ChromeTraceError(
                f"{where}: ts went backwards on track {key}")
        last_ts[key] = ts
        if phase == "B":
            open_spans.setdefault(key, []).append(event["name"])
        elif phase == "E":
            stack = open_spans.get(key)
            if not stack:
                raise ChromeTraceError(
                    f"{where}: E without a matching B on track {key}")
            stack.pop()

    unclosed = {key: stack for key, stack in open_spans.items() if stack}
    if unclosed:
        raise ChromeTraceError(f"unclosed spans at end of trace: "
                               f"{unclosed}")
    return len(events)
