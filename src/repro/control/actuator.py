"""The uniform actuation surface the control plane drives.

An :class:`Actuator` wraps one runtime-reconfigurable mechanism — a
credit domain's allocation policy, the heap runtime's thresholds, the
movement service's pacing — behind the same three verbs:

* :meth:`Actuator.describe` — the knob schema plus current settings,
  so ``repro health --feedback`` can print what a policy may touch;
* :meth:`Actuator.current` — the live settings (captured before and
  after every apply, so the action log doubles as an audit trail);
* :meth:`Actuator.apply` — validate a settings object against the
  declared :class:`Knob` bounds, mutate the mechanism, and append a
  sim-time-stamped entry to the actuator's history.

Validation is strict and path-precise (``credits.egress0.weights.bad``
style locations, mirroring the topology loader): an actuation request
either applies exactly as validated or raises :class:`ControlError`
without touching the mechanism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Actuator", "ControlError", "Knob"]


class ControlError(ValueError):
    """A feedback policy or actuation request that cannot be honoured."""


class Knob:
    """One validated setting an actuator exposes.

    ``kind`` is ``float``, ``int`` or ``map`` (a non-empty object of
    flow/host name to number — per-entry bounds apply to the values).
    Bounds are inclusive; ``positive=True`` additionally requires
    strictly positive values (the common "rate must be > 0" shape).
    """

    __slots__ = ("name", "kind", "doc", "minimum", "maximum", "positive")

    def __init__(self, name: str, kind: str, doc: str,
                 minimum: Optional[float] = None,
                 maximum: Optional[float] = None,
                 positive: bool = False) -> None:
        if kind not in ("float", "int", "map"):
            raise ValueError(f"unknown knob kind {kind!r}")
        self.name = name
        self.kind = kind
        self.doc = doc
        self.minimum = minimum
        self.maximum = maximum
        self.positive = positive

    def validate(self, where: str, value: Any) -> Any:
        if self.kind == "map":
            if not isinstance(value, dict) or not value:
                raise ControlError(
                    f"{where}: expected a non-empty object, got "
                    f"{value!r}")
            return {str(key): self._scalar(f"{where}.{key}", item)
                    for key, item in value.items()}
        return self._scalar(where, value)

    def _scalar(self, where: str, value: Any) -> Any:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ControlError(
                f"{where}: expected a number, got {value!r}")
        number = float(value)
        if self.positive and number <= 0:
            raise ControlError(f"{where}: must be > 0, got {number:g}")
        if self.minimum is not None and number < self.minimum:
            raise ControlError(
                f"{where}: must be >= {self.minimum:g}, got {number:g}")
        if self.maximum is not None and number > self.maximum:
            raise ControlError(
                f"{where}: must be <= {self.maximum:g}, got {number:g}")
        if self.kind == "int":
            if number != int(number):
                raise ControlError(
                    f"{where}: expected an integer, got {value!r}")
            return int(number)
        return number

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "doc": self.doc}
        if self.positive:
            out["positive"] = True
        if self.minimum is not None:
            out["min"] = self.minimum
        if self.maximum is not None:
            out["max"] = self.maximum
        return out


class Actuator:
    """describe/current/apply over one mechanism's runtime knobs.

    Subclasses set :attr:`name` (the dotted identity feedback rules
    target, e.g. ``credits.egress0``), implement :meth:`knobs`,
    :meth:`current` and :meth:`_apply`, and may override
    :meth:`_validate` for cross-field invariants (e.g. the heap's
    promote threshold must stay above demote).
    """

    #: dotted identity, e.g. ``credits.egress0``
    name = "actuator"

    def __init__(self) -> None:
        #: Applied action entries, in apply order (shared tail of the
        #: control plane's chronological log).
        self.history: List[Dict[str, Any]] = []

    # -- the schema --------------------------------------------------------

    def knobs(self) -> Dict[str, Knob]:
        raise NotImplementedError

    def current(self) -> Dict[str, Any]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {"actuator": self.name,
                "knobs": {name: knob.describe()
                          for name, knob in sorted(self.knobs().items())},
                "current": self.current()}

    # -- actuation ---------------------------------------------------------

    def apply(self, settings: Dict[str, Any], time: float,
              rule: Optional[str] = None) -> Dict[str, Any]:
        """Validate ``settings`` and apply them at sim time ``time``.

        Returns the action-log entry: the validated settings plus the
        mechanism's state before and after.  Raises
        :class:`ControlError` (leaving the mechanism untouched) on any
        unknown knob, type mismatch, bound or cross-field violation.
        """
        knobs = self.knobs()
        if not isinstance(settings, dict) or not settings:
            raise ControlError(
                f"{self.name}: apply() needs a non-empty settings "
                f"object, got {settings!r}")
        for key in settings:
            if key not in knobs:
                raise ControlError(
                    f"{self.name}: unknown knob {key!r}; knobs: "
                    f"{', '.join(sorted(knobs))}")
        validated = {key: knobs[key].validate(f"{self.name}.{key}",
                                              settings[key])
                     for key in sorted(settings)}
        self._validate(validated)
        before = self.current()
        self._apply(validated)
        entry = {"t": time, "actuator": self.name, "rule": rule,
                 "set": validated, "before": before,
                 "after": self.current()}
        self.history.append(entry)
        return entry

    def _validate(self, settings: Dict[str, Any]) -> None:
        """Cross-field hook; runs after per-knob validation."""

    def _apply(self, settings: Dict[str, Any]) -> None:
        raise NotImplementedError
