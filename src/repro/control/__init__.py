"""Closed-loop control plane: health-driven, validated actuation.

The observe→decide→act loop over a running fabric simulation:

* **observe** — :class:`~repro.telemetry.health.HealthMonitor` closes
  tumbling sim-time windows of counters, gauges and per-route latency
  attribution (PR 9's streaming layer);
* **decide** — a declarative :class:`FeedbackPolicy` (JSON rules:
  *when* a windowed signal crosses a threshold, *then* apply settings
  to an actuator);
* **act** — the :class:`ControlPlane` applies validated settings
  through uniform :class:`Actuator`\\ s wrapping the paper's
  mechanisms: credit QoS (:class:`CreditActuator`), link credit
  allocation (:class:`LinkActuator`), heap placement
  (:class:`HeapActuator`) and movement pacing
  (:class:`MovementActuator`), each action stamped with the window's
  closing sim time and logged.

Everything stays deterministic: actions apply at window-close edges
inside the sampler tick, so closed-loop runs are bit-identical across
reruns and sweep worker counts, and a plane with no policy leaves
``events_processed`` untouched.
"""

from __future__ import annotations

from .actuator import Actuator, ControlError, Knob
from .actuators import (CreditActuator, HeapActuator, LinkActuator,
                        MovementActuator)
from .plane import ControlPlane
from .policy import (FeedbackPolicy, FeedbackRule,
                     default_feedback_policy)

__all__ = [
    "Actuator",
    "ControlError",
    "ControlPlane",
    "CreditActuator",
    "FeedbackPolicy",
    "FeedbackRule",
    "HeapActuator",
    "Knob",
    "LinkActuator",
    "MovementActuator",
    "default_feedback_policy",
]
