"""The control plane: health windows in, validated actuations out.

A :class:`ControlPlane` closes the observe→decide→act loop the ROADMAP
promised: it subscribes to a
:class:`~repro.telemetry.health.HealthMonitor`'s closed windows,
evaluates its :class:`~repro.control.policy.FeedbackPolicy` rules in
declared order, and applies matching actions through registered
:class:`~repro.control.actuator.Actuator`\\ s — all inside the sampler
tick that closed the window, so every action lands at a deterministic
sim time (the window's ``t1`` edge) and reruns are bit-identical.

Two determinism notes the tests pin:

* the trailing *final* (partial) window closes after the run via
  ``monitor.finalize``; acting there would mutate a finished model,
  so final windows are observed but never acted on;
* a plane with no policy (or no matching rule) applies nothing and
  schedules nothing — ``events_processed`` equals the plain health
  run exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .actuator import Actuator, ControlError
from .policy import FeedbackPolicy

__all__ = ["ControlPlane"]


class ControlPlane:
    """Evaluates one feedback policy against streaming health windows."""

    def __init__(self, policy: Optional[FeedbackPolicy] = None) -> None:
        self.policy = policy
        self._actuators: Dict[str, Actuator] = {}
        #: Chronological applied-action entries (each also lives in
        #: its actuator's ``history``).
        self.actions: List[Dict[str, Any]] = []
        self.windows_seen = 0

    # -- wiring ------------------------------------------------------------

    def add_actuator(self, actuator: Actuator) -> Actuator:
        if actuator.name in self._actuators:
            raise ControlError(
                f"actuator {actuator.name!r} already registered")
        self._actuators[actuator.name] = actuator
        return actuator

    def actuator(self, name: str) -> Actuator:
        try:
            return self._actuators[name]
        except KeyError:
            known = ", ".join(sorted(self._actuators)) or "(none)"
            raise ControlError(
                f"unknown actuator {name!r}; registered: {known}") \
                from None

    def actuator_names(self) -> List[str]:
        return sorted(self._actuators)

    def attach(self, monitor) -> "ControlPlane":
        """Subscribe to ``monitor``'s closed windows; returns self."""
        monitor.subscribe(self.on_window)
        return self

    # -- the loop ----------------------------------------------------------

    def on_window(self, window: Dict[str, Any]) -> None:
        """Evaluate every rule against one closed window record."""
        self.windows_seen += 1
        if self.policy is None or window["final"]:
            return
        for rule in self.policy.rules:
            if not rule.ready(window["index"]):
                continue
            value = rule.when.observe(window)
            if value is None or not rule.when.fires(value):
                continue
            actuator = self.actuator(rule.actuator)
            entry = actuator.apply(rule.settings, time=window["t1"],
                                   rule=rule.name)
            entry["window"] = window["index"]
            entry["observed"] = round(value, 6)
            self.actions.append(entry)
            rule.firings += 1
            rule.last_window = window["index"]

    # -- the report --------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """The schema-stable ``control`` section of a health report."""
        return {
            "policy": self.policy.describe()
            if self.policy is not None else None,
            "actuators": [self._actuators[name].describe()
                          for name in sorted(self._actuators)],
            "actions": [dict(entry) for entry in self.actions],
        }
