"""Declarative feedback policies: when a window looks bad, act.

A :class:`FeedbackPolicy` is a small JSON document the control plane
evaluates once per closed health window, in rule order::

    {"schema": 1,
     "rules": [
       {"name": "rescue-quiet",
        "when": {"kind": "attribution_share", "route": "quiet",
                 "category": "credit_stall", "above": 0.5},
        "then": {"actuator": "credits.egress0",
                 "set": {"weights": {"hot": 1.0, "quiet": 1.0}}},
        "cooldown_windows": 0,
        "max_firings": 1}]}

Condition kinds mirror the health monitor's windowed signals:

* ``attribution_share`` — the window's share of ``category`` time in
  ``route``'s attributed total (``route``, ``category``, ``above``);
* ``counter_delta`` — the window's delta of one counter
  (``counter``, ``above``);
* ``gauge_level`` — the gauge's level at window close
  (``gauge``, ``above``).

A rule fires when its observed value strictly exceeds ``above`` — or,
with ``below`` instead, strictly undershoots it (credit pools pinned
at zero are a *low* signal); exactly one comparator is required, and a
window with no data never fires.  ``cooldown_windows`` suppresses
re-firing for that many subsequent windows; ``max_firings`` caps the
rule's lifetime firings (the one-shot ``1`` is the usual shape for a
policy swap).  Parse errors are path-precise
(``rules[0].when.above: ...``), matching the topology loader's style.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..telemetry.causal import CATEGORIES
from .actuator import ControlError

__all__ = ["FeedbackPolicy", "FeedbackRule", "default_feedback_policy"]

_CONDITION_KINDS = {
    "attribution_share": ("route", "category"),
    "counter_delta": ("counter",),
    "gauge_level": ("gauge",),
}


def _require(payload: Dict[str, Any], where: str, key: str) -> Any:
    if key not in payload:
        raise ControlError(f"{where}: missing required key {key!r}")
    return payload[key]


def _string(payload: Dict[str, Any], where: str, key: str) -> str:
    value = _require(payload, where, key)
    if not isinstance(value, str) or not value:
        raise ControlError(
            f"{where}.{key}: expected a non-empty string, got "
            f"{value!r}")
    return value


def _object(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ControlError(
            f"{where}: expected a JSON object, got "
            f"{type(value).__name__}")
    return value


def _number(payload: Dict[str, Any], where: str, key: str,
            default: Optional[float] = None,
            minimum: Optional[float] = None) -> float:
    if key not in payload:
        if default is None:
            raise ControlError(
                f"{where}: missing required key {key!r}")
        return default
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ControlError(
            f"{where}.{key}: expected a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ControlError(
            f"{where}.{key}: must be >= {minimum:g}, got {value!r}")
    return float(value)


class _Condition:
    """One parsed ``when`` clause."""

    __slots__ = ("kind", "fields", "above", "below")

    def __init__(self, payload: Any, where: str) -> None:
        payload = _object(payload, where)
        kind = _require(payload, where, "kind")
        if kind not in _CONDITION_KINDS:
            raise ControlError(
                f"{where}.kind: unknown condition kind {kind!r}; "
                f"choose from {', '.join(sorted(_CONDITION_KINDS))}")
        self.kind = kind
        self.fields = {key: _string(payload, where, key)
                       for key in _CONDITION_KINDS[kind]}
        if kind == "attribution_share":
            if self.fields["category"] not in CATEGORIES:
                raise ControlError(
                    f"{where}.category: unknown attribution category "
                    f"{self.fields['category']!r}; choose from "
                    f"{', '.join(CATEGORIES)}")
        if ("above" in payload) == ("below" in payload):
            raise ControlError(
                f"{where}: need exactly one of 'above' (fire when the "
                "value exceeds it) or 'below' (fire when it "
                "undershoots)")
        self.above: Optional[float] = None
        self.below: Optional[float] = None
        if "above" in payload:
            self.above = _number(payload, where, "above", minimum=0.0)
        else:
            self.below = _number(payload, where, "below", minimum=0.0)
        known = {"kind", "above", "below", *_CONDITION_KINDS[kind]}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ControlError(
                f"{where}: unknown key(s) {', '.join(unknown)}; "
                f"expected {', '.join(sorted(known))}")

    def fires(self, value: float) -> bool:
        if self.above is not None:
            return value > self.above
        return value < self.below

    def observe(self, window: Dict[str, Any]) -> Optional[float]:
        """The condition's value in ``window``, or None for no data."""
        if self.kind == "attribution_share":
            route = window["attribution"].get(self.fields["route"])
            if route is None:
                return None
            total = sum(route["ns"].values())
            if total <= 1e-9:
                return None
            return route["ns"][self.fields["category"]] / total
        if self.kind == "counter_delta":
            return window["counters"].get(self.fields["counter"])
        return window["gauges"].get(self.fields["gauge"])

    def to_dict(self) -> Dict[str, Any]:
        payload = {"kind": self.kind, **self.fields}
        if self.above is not None:
            payload["above"] = self.above
        else:
            payload["below"] = self.below
        return payload


class FeedbackRule:
    """One parsed when/then rule with its firing bookkeeping."""

    __slots__ = ("name", "when", "actuator", "settings",
                 "cooldown_windows", "max_firings", "firings",
                 "last_window")

    def __init__(self, payload: Any, where: str) -> None:
        payload = _object(payload, where)
        self.name = _string(payload, where, "name")
        self.when = _Condition(_require(payload, where, "when"),
                               f"{where}.when")
        then = _object(_require(payload, where, "then"),
                       f"{where}.then")
        self.actuator = _string(then, f"{where}.then", "actuator")
        self.settings = _object(_require(then, f"{where}.then", "set"),
                                f"{where}.then.set")
        if not self.settings:
            raise ControlError(
                f"{where}.then.set: expected a non-empty settings "
                "object")
        unknown = sorted(set(then) - {"actuator", "set"})
        if unknown:
            raise ControlError(
                f"{where}.then: unknown key(s) {', '.join(unknown)}; "
                "expected actuator, set")
        cooldown = _number(payload, where, "cooldown_windows",
                           default=0.0, minimum=0.0)
        if cooldown != int(cooldown):
            raise ControlError(
                f"{where}.cooldown_windows: expected an integer, got "
                f"{cooldown!r}")
        self.cooldown_windows = int(cooldown)
        if "max_firings" in payload:
            firings = _number(payload, where, "max_firings",
                              minimum=1.0)
            if firings != int(firings):
                raise ControlError(
                    f"{where}.max_firings: expected an integer, got "
                    f"{payload['max_firings']!r}")
            self.max_firings: Optional[int] = int(firings)
        else:
            self.max_firings = None
        unknown = sorted(set(payload) - {"name", "when", "then",
                                         "cooldown_windows",
                                         "max_firings"})
        if unknown:
            raise ControlError(
                f"{where}: unknown key(s) {', '.join(unknown)}")
        self.firings = 0
        self.last_window: Optional[int] = None

    def ready(self, index: int) -> bool:
        """May this rule fire on window ``index``?"""
        if self.max_firings is not None \
                and self.firings >= self.max_firings:
            return False
        if self.last_window is not None \
                and index - self.last_window <= self.cooldown_windows:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "when": self.when.to_dict(),
                "then": {"actuator": self.actuator,
                         "set": dict(self.settings)},
                "cooldown_windows": self.cooldown_windows,
                "max_firings": self.max_firings,
                "firings": self.firings}


class FeedbackPolicy:
    """A parsed feedback policy: ordered rules over health windows."""

    def __init__(self, payload: Any, source: str = "<inline>") -> None:
        payload = _object(payload, "policy")
        if payload.get("schema", 1) != 1:
            raise ControlError(
                f"policy.schema: unsupported feedback policy schema "
                f"{payload.get('schema')!r}")
        rules = payload.get("rules", [])
        if not isinstance(rules, list) or not rules:
            raise ControlError(
                "policy.rules: expected a non-empty list of rules")
        self.source = source
        self.rules: List[FeedbackRule] = [
            FeedbackRule(item, f"rules[{i}]")
            for i, item in enumerate(rules)]
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ControlError(
                f"policy.rules: duplicate rule names: {names}")
        unknown = sorted(set(payload) - {"schema", "rules"})
        if unknown:
            raise ControlError(
                f"policy: unknown key(s) {', '.join(unknown)}; "
                "expected schema, rules")

    @classmethod
    def load(cls, path) -> "FeedbackPolicy":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ControlError(
                f"cannot read feedback policy {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ControlError(
                f"feedback policy {path} is not JSON: {exc}") from exc
        return cls(payload, source=str(path))

    def describe(self) -> Dict[str, Any]:
        return {"schema": 1, "source": self.source,
                "rules": [rule.to_dict() for rule in self.rules]}


def default_feedback_policy(scenario: str) -> Dict[str, Any]:
    """The built-in policy ``--feedback default`` resolves to.

    For the starvation scenario: the moment a window shows the quiet
    route spending more than half its attributed time in
    ``credit_stall`` (exactly what the fast-burn SLO pages on at
    14,000 ns under RampUpPolicy), install equal hot/quiet weights on
    the egress credit domain — once.  The hot flow keeps half the
    budget (16 credits covers its 8-worker window), so the rescue does
    not starve it in turn.
    """
    if scenario == "starvation":
        return {
            "schema": 1,
            "rules": [
                {"name": "rescue-quiet",
                 "when": {"kind": "attribution_share",
                          "route": "quiet",
                          "category": "credit_stall",
                          "above": 0.5},
                 "then": {"actuator": "credits.egress0",
                          "set": {"weights": {"hot": 1.0,
                                              "quiet": 1.0}}},
                 "cooldown_windows": 0,
                 "max_firings": 1},
            ],
        }
    raise ControlError(
        f"no default feedback policy for scenario {scenario!r}; "
        "pass a policy file")
