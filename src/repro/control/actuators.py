"""The shipped actuators: credits, links, heap placement, movement.

Each wraps one mechanism's runtime-reconfiguration surface (added for
this control plane) behind the :class:`~repro.control.actuator.Actuator`
protocol.  None of them schedules kernel events of its own: applying a
setting mutates attributes the mechanism's loops re-read, or performs
the same immediate pool puts/gets a periodic rebalance would — so a
closed-loop run stays deterministic across reruns.
"""

from __future__ import annotations

from typing import Any, Dict

from ..pcie.credits import CreditDomain, WeightedSharePolicy
from .actuator import Actuator, ControlError, Knob

__all__ = ["CreditActuator", "HeapActuator", "LinkActuator",
           "MovementActuator"]


class CreditActuator(Actuator):
    """Reallocates one :class:`CreditDomain`'s budget between flows.

    ``weights`` installs a :class:`WeightedSharePolicy` with the given
    per-flow weights and applies its targets immediately (grown pools
    serve blocked acquires at the same sim time); ``rebalance_ns``
    retunes the periodic rebalance cadence.
    """

    def __init__(self, domain: CreditDomain) -> None:
        super().__init__()
        self.domain = domain
        self.name = f"credits.{domain.name}"

    def knobs(self) -> Dict[str, Knob]:
        return {
            "weights": Knob(
                "weights", "map",
                "per-flow share weights (> 0); installs a "
                "WeightedSharePolicy and applies it immediately",
                positive=True),
            "rebalance_ns": Knob(
                "rebalance_ns", "float",
                "periodic rebalance cadence (sim ns)", positive=True),
        }

    def current(self) -> Dict[str, Any]:
        return {"policy": type(self.domain.policy).__name__,
                "rebalance_ns": self.domain.rebalance_ns,
                "granted": {flow: self.domain.granted(flow)
                            for flow in self.domain.flow_names()}}

    def _validate(self, settings: Dict[str, Any]) -> None:
        weights = settings.get("weights")
        if weights is not None:
            known = self.domain.flow_names()
            for flow in weights:
                if flow not in known:
                    raise ControlError(
                        f"{self.name}.weights.{flow}: unknown flow; "
                        f"registered: {', '.join(known)}")

    def _apply(self, settings: Dict[str, Any]) -> None:
        if "rebalance_ns" in settings:
            self.domain.set_rebalance_ns(settings["rebalance_ns"])
        if "weights" in settings:
            self.domain.set_policy(
                WeightedSharePolicy(settings["weights"]))


class LinkActuator(Actuator):
    """Resizes one link VC's sender credit allocation (allocator API).

    ``granted`` is the target number of credits the sender holds on
    the wrapped VC: raising it calls
    :meth:`~repro.fabric.link.LinkLayer.grant_credits` for the delta
    (blocked senders resume at the same sim time), lowering it calls
    :meth:`~repro.fabric.link.LinkLayer.revoke_credits` (the reclaim
    completes as in-flight credits return).  Revoking down to a
    trickle at an aggressor's injection port is the fabric-manager
    admission-control move the §3 cross-switch story calls for.
    """

    def __init__(self, link, vc: int = 0, name: str = "link") -> None:
        super().__init__()
        if not 0 <= vc < link.vcs:
            raise ControlError(
                f"{name}: vc {vc} out of range for link "
                f"{link.name!r} with {link.vcs} VC(s)")
        self.link = link
        self.vc = vc
        self.name = name

    def knobs(self) -> Dict[str, Knob]:
        return {
            "granted": Knob(
                "granted", "int",
                f"target sender credits on vc{self.vc} (grant or "
                "revoke the delta)", minimum=1),
        }

    def current(self) -> Dict[str, Any]:
        return {"granted": self.link.credits_granted(self.vc),
                "available": self.link.credits_available(self.vc)}

    def _apply(self, settings: Dict[str, Any]) -> None:
        delta = settings["granted"] - self.link.credits_granted(self.vc)
        if delta > 0:
            self.link.grant_credits(self.vc, delta)
        elif delta < 0:
            self.link.revoke_credits(self.vc, -delta)


class HeapActuator(Actuator):
    """Retunes a :class:`~repro.core.heap.HeapRuntime` policy loop."""

    def __init__(self, runtime, name: str = "heap") -> None:
        super().__init__()
        self.runtime = runtime
        self.name = name

    def knobs(self) -> Dict[str, Knob]:
        return {
            "interval_ns": Knob(
                "interval_ns", "float",
                "promote/demote pass cadence (sim ns)", positive=True),
            "promote_threshold": Knob(
                "promote_threshold", "float",
                "temperature at/above which a remote object promotes",
                positive=True),
            "demote_threshold": Knob(
                "demote_threshold", "float",
                "temperature at/below which a local object may demote",
                minimum=0.0),
        }

    def current(self) -> Dict[str, Any]:
        return {"interval_ns": self.runtime.interval_ns,
                "promote_threshold": self.runtime.promote_threshold,
                "demote_threshold": self.runtime.demote_threshold}

    def _validate(self, settings: Dict[str, Any]) -> None:
        promote = settings.get("promote_threshold",
                               self.runtime.promote_threshold)
        demote = settings.get("demote_threshold",
                              self.runtime.demote_threshold)
        if promote <= demote:
            raise ControlError(
                f"{self.name}: promote_threshold ({promote:g}) must "
                f"exceed demote_threshold ({demote:g})")

    def _apply(self, settings: Dict[str, Any]) -> None:
        self.runtime.reconfigure(
            interval_ns=settings.get("interval_ns"),
            promote_threshold=settings.get("promote_threshold"),
            demote_threshold=settings.get("demote_threshold"))


class MovementActuator(Actuator):
    """Throttles a :class:`~repro.core.movement.MovementOrchestrator`.

    ``pacing_ns`` inserts a per-transaction delay in every migration
    agent (0 removes it); ``remote_bw_bytes_per_us`` retunes the
    token-bucket refill rate (only on orchestrators built with a
    bandwidth budget); ``burst_bytes`` caps the per-chunk token spend.
    """

    def __init__(self, orchestrator, name: str = "movement") -> None:
        super().__init__()
        self.orchestrator = orchestrator
        self.name = name

    def knobs(self) -> Dict[str, Knob]:
        return {
            "pacing_ns": Knob(
                "pacing_ns", "float",
                "per-transaction pacing delay across all agents "
                "(0 removes pacing)", minimum=0.0),
            "remote_bw_bytes_per_us": Knob(
                "remote_bw_bytes_per_us", "float",
                "token-bucket refill rate", positive=True),
            "burst_bytes": Knob(
                "burst_bytes", "int",
                "maximum tokens one chunk may spend", minimum=1),
        }

    def current(self) -> Dict[str, Any]:
        return {"pacing_ns": self.orchestrator.pacing_ns,
                "remote_bw_bytes_per_us":
                    self.orchestrator.remote_bw_bytes_per_us,
                "burst_bytes": self.orchestrator.burst_bytes}

    def _validate(self, settings: Dict[str, Any]) -> None:
        if "remote_bw_bytes_per_us" in settings \
                and not self.orchestrator._buckets:
            raise ControlError(
                f"{self.name}.remote_bw_bytes_per_us: the "
                "orchestrator was built without a bandwidth budget; "
                "construct it with remote_bw_bytes_per_us= to "
                "throttle")

    def _apply(self, settings: Dict[str, Any]) -> None:
        if "remote_bw_bytes_per_us" in settings:
            self.orchestrator.set_remote_bw(
                settings["remote_bw_bytes_per_us"])
        if "burst_bytes" in settings:
            self.orchestrator.burst_bytes = settings["burst_bytes"]
        if "pacing_ns" in settings:
            self.orchestrator.set_pacing(settings["pacing_ns"])
