"""Idempotent tasks surviving passive failure domains.

Run:  python examples/fault_tolerant_pipeline.py

Builds a data pipeline in the task IR (read inputs -> compute -> write
outputs, per stage), lets the DP#3 compiler cut it into idempotent
regions, then executes it under increasingly hostile failure injection
— once with region replay and once with whole-task restart — and
prints the wasted-work comparison.
"""

from repro import (
    ClusterSpec,
    Environment,
    FailureInjector,
    IdempotentTask,
    Task,
    build_cluster,
)
from repro.core import TaskRuntime
from repro.sim import SimRng

STAGES = 20
READS_PER_STAGE = 6


def build_pipeline() -> Task:
    task = Task("etl-pipeline")
    for stage in range(STAGES):
        base = stage * 0x4000
        for i in range(READS_PER_STAGE):
            task.read(base + i * 64)
        task.compute(300.0)
        task.write(base)     # in-place update: clobbers stage input
    return task


def main() -> None:
    task = build_pipeline()
    idem = IdempotentTask(task)
    print(f"pipeline: {len(task)} ops")
    print(f"compiler cut {idem.region_count} idempotent regions "
          f"(largest replays {idem.max_replay_ops} ops)")
    print()
    header = (f"{'fail rate':>10} {'recovery':>12} {'time us':>10} "
              f"{'replayed':>9} {'waste':>7}")
    print(header)
    print("-" * len(header))

    for rate in (0.0, 0.01, 0.03, 0.06):
        for recovery in ("idempotent", "restart"):
            env = Environment()
            cluster = build_cluster(env, ClusterSpec(hosts=1))
            runtime = TaskRuntime(
                env, cluster.host(0),
                injector=FailureInjector(rate=rate, rng=SimRng(42)),
                recovery=recovery)

            def go():
                return (yield from runtime.execute(task))

            proc = env.process(go())
            env.run(until=1_000_000_000_000, until_event=proc)
            result = proc.value
            print(f"{rate:>10.2f} {recovery:>12} "
                  f"{result.completion_ns / 1e3:>10.1f} "
                  f"{result.replayed_ops:>9} "
                  f"{result.waste_fraction:>6.1%}")
    print("\nidempotent regions bound the damage of every failure to "
          "one region's worth of work;")
    print("restart recovery pays the whole task again and can livelock "
          "at high failure rates.")


if __name__ == "__main__":
    main()
