"""The section 5 case study: MIMO baseband processing over UniFabric.

Run:  python examples/mimo_baseband.py

Follows the paper's porting steps for the Agora-style engine:

1. *move data objects into the unified heap* — received frames and the
   channel-state matrix become heap objects;
2. *choose backend engines and encapsulate kernels* — the five uplink
   kernels (FFT, channel estimation, equalization, demodulation,
   decoding) become cooperative scalable functions on an FAA;
3. *replace async communication with elastic transactions* — each
   frame is staged host->FAM and results travel back with ownership
   handled by the transaction.

The DSP itself is real: numpy FFT/ZF/QPSK, verified bit-exact, with
the simulated clock charged from per-kernel FLOP counts.
"""

import numpy as np

from repro import ClusterSpec, Environment, ETrans, UniFabric, build_cluster
from repro.core import FunctionChassis, HandlerResult, ScalableFunction
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import PortRole
from repro.workloads.mimo import (
    KERNEL_ORDER,
    MimoChannel,
    MimoConfig,
    UplinkPipeline,
    flops_to_ns,
    make_frame,
)

FRAMES = 4
FAA_SPEEDUP = 4.0


def main() -> None:
    config = MimoConfig(antennas=16, users=4, subcarriers=64,
                        data_symbols=4, snr_db=25.0)
    channel = MimoChannel(config)
    pipeline = UplinkPipeline(config)

    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    uni = UniFabric(env, cluster)
    host = cluster.host(0)
    heap = uni.heap("host0")
    engine = uni.engine("host0")

    # Step 2: kernels as cooperative scalable functions on an FAA.
    topo = cluster.topology
    topo.add_endpoint("dsp-faa")
    faa_port = topo.connect_endpoint("sw0", "dsp-faa",
                                     role=PortRole.DOWNSTREAM)
    cluster.manager.configure()

    def kernel_fn(name):
        def handler(state, msg):
            compute = flops_to_ns(msg.payload, FAA_SPEEDUP)
            return HandlerResult(compute_ns=compute, value=name)
        return handler

    functions = [ScalableFunction(k).on("run", kernel_fn(k))
                 for k in KERNEL_ORDER]
    FunctionChassis(env, faa_port, functions, name="dsp-faa")
    faa_id = topo.endpoints["dsp-faa"].global_id

    # Step 1: frames live in the unified heap (remote tier: the radios
    # DMA into fabric-attached memory), CSI matrix pinned locally.
    frame_objects = [heap.allocate(config.frame_bytes,
                                   prefer_tier="cpuless-numa")
                     for _ in range(FRAMES)]
    csi = heap.allocate(config.subcarriers * config.antennas
                        * config.users * 16, pinned=True)

    rng = np.random.default_rng(0)
    payloads = [rng.integers(0, 2, size=config.bits_per_frame // 3)
                .astype(np.int8) for _ in range(FRAMES)]
    frame_times = []
    bit_errors = 0

    def uplink():
        nonlocal bit_errors
        for index in range(FRAMES):
            start = env.now
            # The real DSP (numpy) runs here; the fabric costs are
            # charged on the simulated clock around it.
            time_samples = make_frame(config, channel, payloads[index],
                                      pipeline.pilot)
            obj = frame_objects[index]
            record = heap.object_of(obj)

            # Step 3: stage the frame local with an elastic transaction.
            staging = 4 << 20
            trans = ETrans(src_list=[(record.addr, config.frame_bytes)],
                           dst_list=[(staging, config.frame_bytes)],
                           attributes={"priority": 0})
            handle = engine.submit(trans)
            yield handle.wait()

            decoded, flops = pipeline.process(time_samples)
            bit_errors += int(np.sum(
                decoded[:payloads[index].size] != payloads[index]))

            # Charge each kernel on its FAA function.
            for kernel in KERNEL_ORDER:
                packet = Packet(kind=PacketKind.IO_WR,
                                channel=Channel.CXL_IO,
                                src=host.port.port_id, dst=faa_id,
                                nbytes=64,
                                meta={"function": kernel,
                                      "msg_type": "run",
                                      "payload": flops[kernel]})
                yield from host.port.request(packet)
            yield from csi.write(0)      # refresh the CSI matrix
            frame_times.append(env.now - start)

    proc = env.process(uplink())
    env.run(until=10_000_000_000, until_event=proc)

    print(f"MIMO uplink over UniFabric — {config.antennas} antennas, "
          f"{config.users} users, {config.subcarriers} subcarriers")
    print(f"  frames processed : {FRAMES}")
    print(f"  bit errors       : {bit_errors} "
          f"(of {sum(p.size for p in payloads)} payload bits)")
    for index, t in enumerate(frame_times):
        print(f"  frame {index}: {t / 1e3:8.1f} us")
    mean_us = sum(frame_times) / len(frame_times) / 1e3
    print(f"  mean             : {mean_us:8.1f} us/frame")
    print(f"  throughput       : {config.bits_per_frame / 3 / mean_us:8.1f}"
          " payload bits/us")


if __name__ == "__main__":
    main()
